// Package parallel provides a minimal bounded fork-join helper for the
// CPU-bound hot paths of this repository (Miller loops in pairing
// products, blinded sums in BLS batch verification). It deliberately has
// no dependencies and no configuration beyond GOMAXPROCS: callers hand
// it an index space and an independent per-index function, and combine
// the results themselves in deterministic index order.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(0) … fn(n-1) across a worker pool bounded by
// runtime.GOMAXPROCS(0). Each index is executed exactly once; indices
// are claimed dynamically so uneven work is balanced. For returns after
// every call has completed. When n ≤ 1 or only one processor is
// available it degenerates to a plain loop on the calling goroutine, so
// sequential behaviour (and determinism of anything fn does) is
// preserved exactly.
//
// fn must be safe to call concurrently for distinct indices; writes
// should go to per-index slots (e.g. out[i]) so no further
// synchronisation is needed.
func For(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Package parallel provides a minimal bounded fork-join helper for the
// CPU-bound hot paths of this repository (Miller loops in pairing
// products, blinded sums in BLS batch verification). It deliberately has
// no dependencies and no configuration beyond GOMAXPROCS: callers hand
// it an index space and an independent per-index function, and combine
// the results themselves in deterministic index order.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"timedrelease/internal/obs"
)

// Pool-wide instrumentation. The atomics are always maintained (a few
// adds per For call, negligible against a Miller loop); Instrument
// additionally mirrors them into an obs.Registry so they appear in the
// /metrics snapshot alongside the serving-path metrics.
var (
	statBatches atomic.Int64 // For calls that spawned workers
	statInline  atomic.Int64 // For calls that ran on the caller
	statTasks   atomic.Int64 // indices executed (either way)
	statPending atomic.Int64 // indices dispatched but not yet finished
	statActive  atomic.Int64 // workers currently running
)

// Stats is a point-in-time copy of the pool counters.
type Stats struct {
	Batches       int64 // fork-join batches that used workers
	Inline        int64 // batches degenerate to the calling goroutine
	Tasks         int64 // total indices executed
	PendingTasks  int64 // queue depth right now
	ActiveWorkers int64 // workers running right now
}

// ReadStats returns the current pool counters.
func ReadStats() Stats {
	return Stats{
		Batches:       statBatches.Load(),
		Inline:        statInline.Load(),
		Tasks:         statTasks.Load(),
		PendingTasks:  statPending.Load(),
		ActiveWorkers: statActive.Load(),
	}
}

// Instrument registers the pool counters on r as polled gauges under
// parallel.* (worker utilisation = parallel.active_workers against
// GOMAXPROCS; queue depth = parallel.pending_tasks). Multiple
// registries may be instrumented; the pool is process-global.
func Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("parallel.batches", func() int64 { return statBatches.Load() })
	r.GaugeFunc("parallel.inline_batches", func() int64 { return statInline.Load() })
	r.GaugeFunc("parallel.tasks", func() int64 { return statTasks.Load() })
	r.GaugeFunc("parallel.pending_tasks", func() int64 { return statPending.Load() })
	r.GaugeFunc("parallel.active_workers", func() int64 { return statActive.Load() })
	r.GaugeFunc("parallel.max_workers", func() int64 { return int64(runtime.GOMAXPROCS(0)) })
}

// For runs fn(0) … fn(n-1) across a worker pool bounded by
// runtime.GOMAXPROCS(0). Each index is executed exactly once; indices
// are claimed dynamically so uneven work is balanced. For returns after
// every call has completed. When n ≤ 1 or only one processor is
// available it degenerates to a plain loop on the calling goroutine, so
// sequential behaviour (and determinism of anything fn does) is
// preserved exactly.
//
// fn must be safe to call concurrently for distinct indices; writes
// should go to per-index slots (e.g. out[i]) so no further
// synchronisation is needed.
func For(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	statPending.Add(int64(n))
	defer statTasks.Add(int64(n))
	if workers <= 1 {
		statInline.Add(1)
		for i := 0; i < n; i++ {
			fn(i)
			statPending.Add(-1)
		}
		return
	}
	statBatches.Add(1)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			statActive.Add(1)
			defer statActive.Add(-1)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
				statPending.Add(-1)
			}
		}()
	}
	wg.Wait()
}

package threshold

import (
	"encoding/binary"
	"errors"
	"fmt"

	"timedrelease/internal/backend"
	"timedrelease/internal/params"
)

// Wire encoding for partial updates (index ‖ label-len ‖ label ‖ point),
// used when shard operators exchange partials out of band (e.g. the
// trethreshold CLI). Strict: truncation, trailing bytes and non-subgroup
// points are rejected.

// MarshalPartial encodes a partial update.
func MarshalPartial(set *params.Set, pu PartialUpdate) []byte {
	out := binary.BigEndian.AppendUint16(nil, uint16(pu.Index))
	out = binary.BigEndian.AppendUint16(out, uint16(len(pu.Label)))
	out = append(out, pu.Label...)
	return set.B.AppendPoint(out, backend.G2, pu.Point)
}

// UnmarshalPartial decodes a partial update. Verification against the
// shard's public key is separate (VerifyPartial).
func UnmarshalPartial(set *params.Set, data []byte) (PartialUpdate, error) {
	if len(data) < 4 {
		return PartialUpdate{}, errors.New("threshold: truncated partial update")
	}
	idx := int(binary.BigEndian.Uint16(data[:2]))
	if idx == 0 {
		return PartialUpdate{}, errors.New("threshold: partial index must be >= 1")
	}
	lblLen := int(binary.BigEndian.Uint16(data[2:4]))
	rest := data[4:]
	if len(rest) < lblLen {
		return PartialUpdate{}, errors.New("threshold: truncated partial label")
	}
	label := string(rest[:lblLen])
	rest = rest[lblLen:]
	if len(rest) != set.B.PointLen(backend.G2) {
		return PartialUpdate{}, fmt.Errorf("threshold: partial point is %d bytes, want %d", len(rest), set.B.PointLen(backend.G2))
	}
	pt, err := set.B.ParsePoint(backend.G2, rest)
	if err != nil {
		return PartialUpdate{}, fmt.Errorf("threshold: partial point: %w", err)
	}
	return PartialUpdate{Index: idx, Label: label, Point: pt}, nil
}

package threshold

import (
	"context"
	"fmt"
	"time"

	"timedrelease/internal/backend"
	"timedrelease/internal/core"
	"timedrelease/internal/obs"
	"timedrelease/internal/params"
	"timedrelease/internal/timeserver"
)

// Deployment note: a threshold shard IS an ordinary passive time server.
// Server i runs internal/timeserver with the key pair (sᵢ, (G, sᵢG)) —
// its published "updates" are exactly the partial updates sᵢ·H1(T), and
// the standard client verifies them against the shard's public key. No
// new server code or protocol is needed; only the receiver-side quorum
// logic below is threshold-aware.

// ShardServerKey converts a dealt share into the key pair its time
// server process runs with.
func ShardServerKey(set *params.Set, share Share) *core.ServerKeyPair {
	sg2 := share.Pub
	if set.Asymmetric() {
		sg2 = set.B.ScalarMult(backend.G2, share.S, set.G2)
	}
	return &core.ServerKeyPair{
		S:   share.S,
		Pub: core.ServerPublicKey{G: set.G, SG: share.Pub, SG2: sg2},
	}
}

// Shard pairs a share index with a verifying client pinned to that
// shard's public key.
type Shard struct {
	Index  int
	Client *timeserver.Client
}

// QuorumClient fetches partial updates from all shards concurrently and
// combines the first k that verify into the group update.
type QuorumClient struct {
	Set      *params.Set
	GroupPub core.ServerPublicKey
	K        int
	Shards   []Shard
	// Metrics, when non-nil, records quorum.* counters and the
	// combine latency histogram (see docs/OBSERVABILITY.md).
	Metrics *obs.Registry
}

// Update returns the group's key update for label, succeeding as soon
// as any K shards have delivered verified partials. Slow, crashed, or
// Byzantine shards (whose responses fail the pinned-key check inside
// each client) simply don't count toward the quorum; outstanding
// requests are cancelled once the quorum is met.
func (qc *QuorumClient) Update(ctx context.Context, label string) (core.KeyUpdate, error) {
	if qc.K < 1 || len(qc.Shards) < qc.K {
		return core.KeyUpdate{}, fmt.Errorf("threshold: %d shards cannot meet quorum %d", len(qc.Shards), qc.K)
	}
	start := time.Now()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		index int
		upd   core.KeyUpdate
		err   error
	}
	// Buffered to shard count so late responders never block and no
	// goroutine outlives the buffered send.
	results := make(chan result, len(qc.Shards))
	for _, sh := range qc.Shards {
		go func(sh Shard) {
			u, err := sh.Client.Update(ctx, label)
			results <- result{index: sh.Index, upd: u, err: err}
		}(sh)
	}

	var (
		partials []PartialUpdate
		failures []error
	)
	for range qc.Shards {
		r := <-results
		if r.err != nil {
			qc.Metrics.Counter("quorum.partials_failed").Inc()
			failures = append(failures, fmt.Errorf("shard %d: %w", r.index, r.err))
			continue
		}
		qc.Metrics.Counter("quorum.partials_ok").Inc()
		partials = append(partials, PartialUpdate{Index: r.index, Label: r.upd.Label, Point: r.upd.Point})
		if len(partials) == qc.K {
			upd, err := Combine(qc.Set, qc.GroupPub, partials, qc.K)
			if err != nil {
				qc.Metrics.Counter("quorum.failures").Inc()
				return core.KeyUpdate{}, err
			}
			qc.Metrics.Counter("quorum.combines").Inc()
			qc.Metrics.Histogram("quorum.combine_ns").Since(start)
			return upd, nil
		}
	}
	qc.Metrics.Counter("quorum.failures").Inc()
	return core.KeyUpdate{}, &QuorumError{Need: qc.K, Have: len(partials), Causes: failures}
}

// WaitForRelease polls Update until the label's quorum combines or the
// context expires. EVERY failure is treated as transient — a shard that
// is down, partitioned, or behind may recover and tip the quorum on a
// later attempt — which is exactly the availability contract the
// k-of-n deployment exists for.
func (qc *QuorumClient) WaitForRelease(ctx context.Context, label string, poll time.Duration) (core.KeyUpdate, error) {
	if poll <= 0 {
		poll = time.Second
	}
	for {
		upd, err := qc.Update(ctx, label)
		if err == nil {
			return upd, nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return core.KeyUpdate{}, fmt.Errorf("threshold: wait for %q: %w (last: %v)", label, ctxErr, err)
		}
		select {
		case <-ctx.Done():
			return core.KeyUpdate{}, fmt.Errorf("threshold: wait for %q: %w (last: %v)", label, ctx.Err(), err)
		case <-time.After(poll):
		}
	}
}

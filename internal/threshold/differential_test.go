package threshold

// Differential tests pinning the threshold scheme against the
// single-server core.Scheme: the same label must yield the byte-
// identical update (and hence the identical decapsulated GT), and every
// failure mode must surface a typed error.

import (
	"bytes"
	"errors"
	"testing"

	"timedrelease/internal/core"
)

// A quorum combine and a single server holding the recovered group
// secret must produce the SAME update, byte for byte — the threshold
// network is indistinguishable from one server to every receiver.
func TestCombineMatchesSingleServerScheme(t *testing.T) {
	set, setup := deal(t, 3, 5)
	sc := core.NewScheme(set)

	s, err := RecoverSecret(set, []Share{setup.Shares[1], setup.Shares[3], setup.Shares[4]}, setup.K)
	if err != nil {
		t.Fatalf("RecoverSecret: %v", err)
	}
	single := &core.ServerKeyPair{S: s, Pub: setup.GroupPub}
	ref := sc.IssueUpdate(single, label)
	if !sc.VerifyUpdate(setup.GroupPub, ref) {
		t.Fatal("recovered secret does not reproduce the group key")
	}

	partials := []PartialUpdate{
		IssuePartial(set, setup.Shares[0], label),
		IssuePartial(set, setup.Shares[2], label),
		IssuePartial(set, setup.Shares[4], label),
	}
	combined, err := Combine(set, setup.GroupPub, partials, setup.K)
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}

	if combined.Label != ref.Label {
		t.Fatalf("labels differ: %q vs %q", combined.Label, ref.Label)
	}
	if !bytes.Equal(set.Curve.Marshal(combined.Point), set.Curve.Marshal(ref.Point)) {
		t.Fatal("combined update differs from the single-server update for the same label")
	}

	// Same label ⇒ same decapsulated GT: a ciphertext decrypts
	// identically with either update.
	user, err := sc.UserKeyGen(setup.GroupPub, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("differential: threshold vs single server")
	ct, err := sc.EncryptCCA(nil, setup.GroupPub, user.Pub, label, msg)
	if err != nil {
		t.Fatal(err)
	}
	viaCombined, err := sc.DecryptCCA(setup.GroupPub, user, combined, ct)
	if err != nil {
		t.Fatalf("decrypt via combined update: %v", err)
	}
	viaSingle, err := sc.DecryptCCA(setup.GroupPub, user, ref, ct)
	if err != nil {
		t.Fatalf("decrypt via single-server update: %v", err)
	}
	if !bytes.Equal(viaCombined, msg) || !bytes.Equal(viaCombined, viaSingle) {
		t.Fatal("decryptions disagree")
	}
}

func TestRecoverSecretSubsetsAgree(t *testing.T) {
	set, setup := deal(t, 3, 5)
	ref, err := RecoverSecret(set, setup.Shares[:3], 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range [][]int{{0, 1, 3}, {2, 3, 4}, {0, 2, 4}, {1, 2, 4}} {
		sub := []Share{setup.Shares[idx[0]], setup.Shares[idx[1]], setup.Shares[idx[2]]}
		got, err := RecoverSecret(set, sub, 3)
		if err != nil {
			t.Fatalf("RecoverSecret(%v): %v", idx, err)
		}
		if got.Cmp(ref) != 0 {
			t.Fatalf("subset %v recovered a different secret", idx)
		}
	}
	// Sanity: no individual share IS the secret.
	for _, sh := range setup.Shares {
		if sh.S.Cmp(ref) == 0 {
			t.Fatal("a single share equals the group secret")
		}
	}
}

func TestWrongQuorumReturnsTypedError(t *testing.T) {
	set, setup := deal(t, 3, 5)

	partials := []PartialUpdate{
		IssuePartial(set, setup.Shares[0], label),
		IssuePartial(set, setup.Shares[1], label),
	}
	var qe *QuorumError
	if _, err := Combine(set, setup.GroupPub, partials, 3); !errors.As(err, &qe) {
		t.Fatalf("Combine below quorum: got %v, want *QuorumError", err)
	} else if qe.Need != 3 || qe.Have != 2 {
		t.Fatalf("QuorumError = need %d have %d, want need 3 have 2", qe.Need, qe.Have)
	}

	// Duplicate indices don't count toward the quorum.
	dup := []PartialUpdate{partials[0], partials[0], partials[1]}
	qe = nil
	if _, err := Combine(set, setup.GroupPub, dup, 3); !errors.As(err, &qe) {
		t.Fatalf("Combine with duplicates: got %v, want *QuorumError", err)
	} else if qe.Have != 2 {
		t.Fatalf("duplicates counted: have = %d, want 2", qe.Have)
	}

	qe = nil
	if _, err := RecoverSecret(set, setup.Shares[:2], 3); !errors.As(err, &qe) {
		t.Fatalf("RecoverSecret below quorum: got %v, want *QuorumError", err)
	}
}

func TestMixedDealingsReturnTypedError(t *testing.T) {
	set, setupA := deal(t, 2, 3)
	setupB, err := Deal(set, nil, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// One partial from each dealing: individually well-formed points,
	// but they interpolate to garbage under either group key.
	mixed := []PartialUpdate{
		IssuePartial(set, setupA.Shares[0], label),
		IssuePartial(set, setupB.Shares[1], label),
	}
	if _, err := Combine(set, setupA.GroupPub, mixed, 2); !errors.Is(err, ErrBadCombination) {
		t.Fatalf("mixed dealings under key A: got %v, want ErrBadCombination", err)
	}
	if _, err := Combine(set, setupB.GroupPub, mixed, 2); !errors.Is(err, ErrBadCombination) {
		t.Fatalf("mixed dealings under key B: got %v, want ErrBadCombination", err)
	}
}

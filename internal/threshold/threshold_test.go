package threshold

import (
	"bytes"
	"errors"
	"testing"

	"timedrelease/internal/core"
	"timedrelease/internal/params"
)

const label = "2026-07-05T12:00:00Z"

func deal(t *testing.T, k, n int) (*params.Set, *Setup) {
	t.Helper()
	set := params.MustPreset("Test160")
	setup, err := Deal(set, nil, k, n)
	if err != nil {
		t.Fatalf("Deal: %v", err)
	}
	return set, setup
}

func TestAnyKOfNSubsetsCombine(t *testing.T) {
	set, setup := deal(t, 3, 5)
	sc := core.NewScheme(set)

	partials := make([]PartialUpdate, setup.N)
	for i, sh := range setup.Shares {
		partials[i] = IssuePartial(set, sh, label)
		if !VerifyPartial(set, sh.Pub, partials[i]) {
			t.Fatalf("partial %d failed verification", sh.Index)
		}
	}

	// Every 3-subset of the 5 servers must reconstruct the same update.
	var reference core.KeyUpdate
	first := true
	subsets := [][]int{{0, 1, 2}, {0, 1, 3}, {0, 1, 4}, {2, 3, 4}, {1, 3, 4}, {0, 2, 4}}
	for _, idx := range subsets {
		sub := []PartialUpdate{partials[idx[0]], partials[idx[1]], partials[idx[2]]}
		upd, err := Combine(set, setup.GroupPub, sub, setup.K)
		if err != nil {
			t.Fatalf("Combine(%v): %v", idx, err)
		}
		if !sc.VerifyUpdate(setup.GroupPub, upd) {
			t.Fatalf("combined update from %v does not verify", idx)
		}
		if first {
			reference = upd
			first = false
			continue
		}
		if !set.Curve.Equal(upd.Point, reference.Point) {
			t.Fatalf("subset %v produced a different update", idx)
		}
	}
}

func TestCombinedUpdateDecryptsTRE(t *testing.T) {
	// The combined update must be a drop-in replacement in the ordinary
	// scheme: encrypt to the GROUP public key, decrypt with the
	// threshold-combined update.
	set, setup := deal(t, 2, 3)
	sc := core.NewScheme(set)
	user, err := sc.UserKeyGen(setup.GroupPub, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("opened by any 2 of 3 time servers")
	ct, err := sc.Encrypt(nil, setup.GroupPub, user.Pub, label, msg)
	if err != nil {
		t.Fatal(err)
	}
	partials := []PartialUpdate{
		IssuePartial(set, setup.Shares[0], label),
		IssuePartial(set, setup.Shares[2], label),
	}
	upd, err := Combine(set, setup.GroupPub, partials, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.Decrypt(user, upd, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("threshold round trip mismatch")
	}
}

func TestFewerThanKFails(t *testing.T) {
	set, setup := deal(t, 3, 5)
	partials := []PartialUpdate{
		IssuePartial(set, setup.Shares[0], label),
		IssuePartial(set, setup.Shares[1], label),
	}
	if _, err := Combine(set, setup.GroupPub, partials, setup.K); err == nil {
		t.Fatal("k-1 partials must not combine")
	}
}

func TestDuplicateIndicesRejected(t *testing.T) {
	set, setup := deal(t, 2, 3)
	p := IssuePartial(set, setup.Shares[0], label)
	if _, err := Combine(set, setup.GroupPub, []PartialUpdate{p, p}, 2); err == nil {
		t.Fatal("duplicated partial must not count twice")
	}
}

func TestCorruptPartialDetected(t *testing.T) {
	set, setup := deal(t, 2, 3)
	good := IssuePartial(set, setup.Shares[0], label)
	bad := IssuePartial(set, setup.Shares[1], label)
	bad.Point = set.Curve.Add(bad.Point, set.G)

	if VerifyPartial(set, setup.Shares[1].Pub, bad) {
		t.Fatal("corrupt partial must fail individual verification")
	}
	// Even if the caller skips per-partial verification, Combine's final
	// self-authentication check catches the bad subset.
	if _, err := Combine(set, setup.GroupPub, []PartialUpdate{good, bad}, 2); !errors.Is(err, ErrBadCombination) {
		t.Fatalf("Combine with corrupt partial: err=%v, want ErrBadCombination", err)
	}
}

func TestMixedLabelsRejected(t *testing.T) {
	set, setup := deal(t, 2, 3)
	a := IssuePartial(set, setup.Shares[0], label)
	b := IssuePartial(set, setup.Shares[1], "another label")
	if _, err := Combine(set, setup.GroupPub, []PartialUpdate{a, b}, 2); !errors.Is(err, core.ErrLabelMismatch) {
		t.Fatalf("mixed labels: err=%v, want ErrLabelMismatch", err)
	}
}

func TestPartialsAloneDoNotVerifyAsGroupUpdate(t *testing.T) {
	// k−1 colluding servers hold partials, but a partial is not the
	// update: it fails the group self-authentication check.
	set, setup := deal(t, 2, 3)
	sc := core.NewScheme(set)
	p := IssuePartial(set, setup.Shares[0], label)
	if sc.VerifyUpdate(setup.GroupPub, core.KeyUpdate{Label: label, Point: p.Point}) {
		t.Fatal("a partial must not verify as the group update")
	}
}

func TestDealValidation(t *testing.T) {
	set := params.MustPreset("Test160")
	for _, kn := range [][2]int{{0, 3}, {4, 3}, {-1, 2}} {
		if _, err := Deal(set, nil, kn[0], kn[1]); err == nil {
			t.Errorf("Deal(k=%d,n=%d) must fail", kn[0], kn[1])
		}
	}
	// k = n = 1 degenerates to a single server and must still work.
	setup, err := Deal(set, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := IssuePartial(set, setup.Shares[0], label)
	upd, err := Combine(set, setup.GroupPub, []PartialUpdate{p}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !core.NewScheme(set).VerifyUpdate(setup.GroupPub, upd) {
		t.Fatal("1-of-1 combine must verify")
	}
}

func TestPartialEncodingRoundTrip(t *testing.T) {
	set, setup := deal(t, 2, 3)
	pu := IssuePartial(set, setup.Shares[1], label)
	enc := MarshalPartial(set, pu)
	back, err := UnmarshalPartial(set, enc)
	if err != nil {
		t.Fatalf("UnmarshalPartial: %v", err)
	}
	if back.Index != pu.Index || back.Label != pu.Label || !set.Curve.Equal(back.Point, pu.Point) {
		t.Fatal("round trip mismatch")
	}
	if !VerifyPartial(set, setup.Shares[1].Pub, back) {
		t.Fatal("decoded partial must verify")
	}
	// Malformed inputs.
	for name, data := range map[string][]byte{
		"empty":      {},
		"zero index": append([]byte{0, 0}, enc[2:]...),
		"short":      enc[:len(enc)-1],
		"trailing":   append(append([]byte{}, enc...), 0),
	} {
		if _, err := UnmarshalPartial(set, data); err == nil {
			t.Errorf("%s: must fail", name)
		}
	}
}

package threshold

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"timedrelease/internal/core"
	"timedrelease/internal/params"
	"timedrelease/internal/timefmt"
	"timedrelease/internal/timeserver"
)

type clock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// netEnv spins up one httptest time server per shard.
type netEnv struct {
	set    *params.Set
	setup  *Setup
	label  string
	shards []Shard
	stops  []func()
}

func newNetEnv(t *testing.T, k, n int, publish []bool) *netEnv {
	t.Helper()
	set := params.MustPreset("Test160")
	setup, err := Deal(set, nil, k, n)
	if err != nil {
		t.Fatal(err)
	}
	sched := timefmt.MustSchedule(time.Minute)
	now := time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)
	ck := &clock{t: now}
	env := &netEnv{set: set, setup: setup, label: sched.Label(now)}
	for i, sh := range setup.Shares {
		srv := timeserver.NewServer(set, ShardServerKey(set, sh), sched, timeserver.WithClock(ck.Now))
		if publish == nil || publish[i] {
			if _, err := srv.PublishUpTo(now); err != nil {
				t.Fatal(err)
			}
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		client := timeserver.NewClient(ts.URL, set, ShardServerKey(set, sh).Pub, timeserver.WithHTTPClient(ts.Client()))
		env.shards = append(env.shards, Shard{Index: sh.Index, Client: client})
	}
	return env
}

func TestQuorumUpdateAllAlive(t *testing.T) {
	e := newNetEnv(t, 3, 5, nil)
	qc := &QuorumClient{Set: e.set, GroupPub: e.setup.GroupPub, K: 3, Shards: e.shards}
	upd, err := qc.Update(context.Background(), e.label)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if !core.NewScheme(e.set).VerifyUpdate(e.setup.GroupPub, upd) {
		t.Fatal("quorum update must verify against the group key")
	}

	// And it decrypts ordinary TRE traffic addressed to the group key.
	sc := core.NewScheme(e.set)
	user, err := sc.UserKeyGen(e.setup.GroupPub, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("via the quorum")
	ct, err := sc.Encrypt(nil, e.setup.GroupPub, user.Pub, e.label, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.Decrypt(user, upd, ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("decrypt: %q %v", got, err)
	}
}

func TestQuorumSurvivesCrashedShards(t *testing.T) {
	// Shards 1 and 3 never published (simulating downtime): quorum of 3
	// must still be met by the other three.
	e := newNetEnv(t, 3, 5, []bool{true, false, true, false, true})
	qc := &QuorumClient{Set: e.set, GroupPub: e.setup.GroupPub, K: 3, Shards: e.shards}
	upd, err := qc.Update(context.Background(), e.label)
	if err != nil {
		t.Fatalf("Update with 2 crashed shards: %v", err)
	}
	if !core.NewScheme(e.set).VerifyUpdate(e.setup.GroupPub, upd) {
		t.Fatal("update must verify")
	}
}

func TestQuorumFailsBelowThreshold(t *testing.T) {
	// Only 2 of 5 shards are up; quorum 3 must fail with a useful error.
	e := newNetEnv(t, 3, 5, []bool{true, false, true, false, false})
	qc := &QuorumClient{Set: e.set, GroupPub: e.setup.GroupPub, K: 3, Shards: e.shards}
	if _, err := qc.Update(context.Background(), e.label); err == nil {
		t.Fatal("quorum below threshold must fail")
	}
}

func TestQuorumRejectsByzantineShard(t *testing.T) {
	// One shard serves updates under a DIFFERENT key (a compromised or
	// impersonated server). Its client rejects them, so it contributes
	// nothing; the honest majority still meets quorum.
	e := newNetEnv(t, 3, 5, nil)
	set := e.set
	sched := timefmt.MustSchedule(time.Minute)
	now := time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)

	evilKey, err := core.NewScheme(set).ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	evil := timeserver.NewServer(set, evilKey, sched, timeserver.WithClock(func() time.Time { return now }))
	if _, err := evil.PublishUpTo(now); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(evil.Handler())
	t.Cleanup(ts.Close)
	// The shard-2 slot now points at the evil server but still pins the
	// honest shard-2 key.
	honestPub := ShardServerKey(set, e.setup.Shares[1]).Pub
	e.shards[1] = Shard{
		Index:  e.setup.Shares[1].Index,
		Client: timeserver.NewClient(ts.URL, set, honestPub, timeserver.WithHTTPClient(ts.Client())),
	}

	qc := &QuorumClient{Set: set, GroupPub: e.setup.GroupPub, K: 3, Shards: e.shards}
	upd, err := qc.Update(context.Background(), e.label)
	if err != nil {
		t.Fatalf("Update with 1 Byzantine shard: %v", err)
	}
	if !core.NewScheme(set).VerifyUpdate(e.setup.GroupPub, upd) {
		t.Fatal("update must verify")
	}
}

func TestQuorumValidation(t *testing.T) {
	e := newNetEnv(t, 2, 3, nil)
	qc := &QuorumClient{Set: e.set, GroupPub: e.setup.GroupPub, K: 4, Shards: e.shards}
	if _, err := qc.Update(context.Background(), e.label); err == nil {
		t.Fatal("K > #shards must fail fast")
	}
}

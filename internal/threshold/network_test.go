package threshold

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"timedrelease/internal/core"
	"timedrelease/internal/obs"
	"timedrelease/internal/params"
	"timedrelease/internal/timefmt"
	"timedrelease/internal/timeserver"
)

type clock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// netEnv spins up one httptest time server per shard.
type netEnv struct {
	set    *params.Set
	setup  *Setup
	label  string
	shards []Shard
	stops  []func()
}

func newNetEnv(t *testing.T, k, n int, publish []bool) *netEnv {
	t.Helper()
	set := params.MustPreset("Test160")
	setup, err := Deal(set, nil, k, n)
	if err != nil {
		t.Fatal(err)
	}
	sched := timefmt.MustSchedule(time.Minute)
	now := time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)
	ck := &clock{t: now}
	env := &netEnv{set: set, setup: setup, label: sched.Label(now)}
	for i, sh := range setup.Shares {
		srv := timeserver.NewServer(set, ShardServerKey(set, sh), sched, timeserver.WithClock(ck.Now))
		if publish == nil || publish[i] {
			if _, err := srv.PublishUpTo(now); err != nil {
				t.Fatal(err)
			}
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		client := timeserver.NewClient(ts.URL, set, ShardServerKey(set, sh).Pub, timeserver.WithHTTPClient(ts.Client()))
		env.shards = append(env.shards, Shard{Index: sh.Index, Client: client})
	}
	return env
}

func TestQuorumUpdateAllAlive(t *testing.T) {
	e := newNetEnv(t, 3, 5, nil)
	qc := &QuorumClient{Set: e.set, GroupPub: e.setup.GroupPub, K: 3, Shards: e.shards}
	upd, err := qc.Update(context.Background(), e.label)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if !core.NewScheme(e.set).VerifyUpdate(e.setup.GroupPub, upd) {
		t.Fatal("quorum update must verify against the group key")
	}

	// And it decrypts ordinary TRE traffic addressed to the group key.
	sc := core.NewScheme(e.set)
	user, err := sc.UserKeyGen(e.setup.GroupPub, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("via the quorum")
	ct, err := sc.Encrypt(nil, e.setup.GroupPub, user.Pub, e.label, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.Decrypt(user, upd, ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("decrypt: %q %v", got, err)
	}
}

func TestQuorumSurvivesCrashedShards(t *testing.T) {
	// Shards 1 and 3 never published (simulating downtime): quorum of 3
	// must still be met by the other three.
	e := newNetEnv(t, 3, 5, []bool{true, false, true, false, true})
	qc := &QuorumClient{Set: e.set, GroupPub: e.setup.GroupPub, K: 3, Shards: e.shards}
	upd, err := qc.Update(context.Background(), e.label)
	if err != nil {
		t.Fatalf("Update with 2 crashed shards: %v", err)
	}
	if !core.NewScheme(e.set).VerifyUpdate(e.setup.GroupPub, upd) {
		t.Fatal("update must verify")
	}
}

func TestQuorumFailsBelowThreshold(t *testing.T) {
	// Only 2 of 5 shards are up; quorum 3 must fail with a useful error.
	e := newNetEnv(t, 3, 5, []bool{true, false, true, false, false})
	qc := &QuorumClient{Set: e.set, GroupPub: e.setup.GroupPub, K: 3, Shards: e.shards}
	if _, err := qc.Update(context.Background(), e.label); err == nil {
		t.Fatal("quorum below threshold must fail")
	}
}

func TestQuorumRejectsByzantineShard(t *testing.T) {
	// One shard serves updates under a DIFFERENT key (a compromised or
	// impersonated server). Its client rejects them, so it contributes
	// nothing; the honest majority still meets quorum.
	e := newNetEnv(t, 3, 5, nil)
	set := e.set
	sched := timefmt.MustSchedule(time.Minute)
	now := time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)

	evilKey, err := core.NewScheme(set).ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	evil := timeserver.NewServer(set, evilKey, sched, timeserver.WithClock(func() time.Time { return now }))
	if _, err := evil.PublishUpTo(now); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(evil.Handler())
	t.Cleanup(ts.Close)
	// The shard-2 slot now points at the evil server but still pins the
	// honest shard-2 key.
	honestPub := ShardServerKey(set, e.setup.Shares[1]).Pub
	e.shards[1] = Shard{
		Index:  e.setup.Shares[1].Index,
		Client: timeserver.NewClient(ts.URL, set, honestPub, timeserver.WithHTTPClient(ts.Client())),
	}

	qc := &QuorumClient{Set: set, GroupPub: e.setup.GroupPub, K: 3, Shards: e.shards}
	upd, err := qc.Update(context.Background(), e.label)
	if err != nil {
		t.Fatalf("Update with 1 Byzantine shard: %v", err)
	}
	if !core.NewScheme(set).VerifyUpdate(e.setup.GroupPub, upd) {
		t.Fatal("update must verify")
	}
}

func TestQuorumValidation(t *testing.T) {
	e := newNetEnv(t, 2, 3, nil)
	qc := &QuorumClient{Set: e.set, GroupPub: e.setup.GroupPub, K: 4, Shards: e.shards}
	if _, err := qc.Update(context.Background(), e.label); err == nil {
		t.Fatal("K > #shards must fail fast")
	}
}

func TestQuorumFailureIsTypedWithCauses(t *testing.T) {
	e := newNetEnv(t, 3, 5, []bool{true, false, true, false, false})
	qc := &QuorumClient{Set: e.set, GroupPub: e.setup.GroupPub, K: 3, Shards: e.shards}
	_, err := qc.Update(context.Background(), e.label)
	var qe *QuorumError
	if !errors.As(err, &qe) {
		t.Fatalf("got %v, want *QuorumError", err)
	}
	if qe.Need != 3 || qe.Have != 2 {
		t.Fatalf("QuorumError need %d have %d, want need 3 have 2", qe.Need, qe.Have)
	}
	if len(qe.Causes) != 3 {
		t.Fatalf("%d causes recorded, want 3 (one per dead shard)", len(qe.Causes))
	}
	// The per-shard causes unwrap to the client's sentinel.
	if !errors.Is(err, timeserver.ErrNotYetPublished) {
		t.Fatalf("causes must unwrap to ErrNotYetPublished, got %v", err)
	}
}

func TestQuorumMetrics(t *testing.T) {
	e := newNetEnv(t, 3, 5, []bool{true, false, true, true, true})
	reg := obs.NewRegistry()
	qc := &QuorumClient{Set: e.set, GroupPub: e.setup.GroupPub, K: 3, Shards: e.shards, Metrics: reg}
	if _, err := qc.Update(context.Background(), e.label); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if s.Counters["quorum.combines"] != 1 {
		t.Fatalf("quorum.combines = %d, want 1", s.Counters["quorum.combines"])
	}
	if ok := s.Counters["quorum.partials_ok"]; ok < 3 {
		t.Fatalf("quorum.partials_ok = %d, want >= 3", ok)
	}
	if _, have := s.Histograms["quorum.combine_ns"]; !have {
		t.Fatal("quorum.combine_ns histogram not recorded")
	}
}

// WaitForRelease treats shard failures as transient: a quorum that is
// short one member succeeds on a later poll once the member publishes.
func TestQuorumWaitForReleaseRecovers(t *testing.T) {
	set := params.MustPreset("Test160")
	setup, err := Deal(set, nil, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	sched := timefmt.MustSchedule(time.Minute)
	now := time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)
	label := sched.Label(now)

	var shards []Shard
	var late *timeserver.Server
	for i, sh := range setup.Shares {
		srv := timeserver.NewServer(set, ShardServerKey(set, sh), sched, timeserver.WithClock(func() time.Time { return now }))
		if i == 0 {
			late = srv // publishes only after the first poll fails
		} else if i == 1 {
			// Never publishes: with one shard late and one dead, quorum 2
			// depends on the late shard recovering.
			_ = srv
		} else {
			if _, err := srv.PublishUpTo(now); err != nil {
				t.Fatal(err)
			}
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		shards = append(shards, Shard{
			Index: sh.Index,
			Client: timeserver.NewClient(ts.URL, set, ShardServerKey(set, sh).Pub,
				timeserver.WithHTTPClient(ts.Client()), timeserver.WithRetry(timeserver.NoRetry)),
		})
	}
	qc := &QuorumClient{Set: set, GroupPub: setup.GroupPub, K: 2, Shards: shards}

	// Not released yet.
	if _, err := qc.Update(context.Background(), label); err == nil {
		t.Fatal("quorum met before the late shard published")
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Publish the late shard's update after a poll interval has
		// certainly begun.
		time.Sleep(30 * time.Millisecond)
		if _, err := late.PublishUpTo(now); err != nil {
			t.Error(err)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	upd, err := qc.WaitForRelease(ctx, label, 10*time.Millisecond)
	<-done
	if err != nil {
		t.Fatalf("WaitForRelease: %v", err)
	}
	if !core.NewScheme(set).VerifyUpdate(setup.GroupPub, upd) {
		t.Fatal("recovered quorum update must verify")
	}
}

func TestQuorumWaitForReleaseHonorsContext(t *testing.T) {
	e := newNetEnv(t, 3, 5, []bool{true, false, false, false, false})
	qc := &QuorumClient{Set: e.set, GroupPub: e.setup.GroupPub, K: 3, Shards: e.shards}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := qc.WaitForRelease(ctx, e.label, 10*time.Millisecond); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

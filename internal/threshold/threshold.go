// Package threshold implements k-of-n threshold time servers.
//
// The paper's §5.3.5 multi-server construction hardens CONFIDENTIALITY
// (all N servers must collude to release early) but weakens AVAILABILITY
// (one crashed server and nothing ever opens). This package provides the
// natural dual, built from threshold BLS over the same pairing: the
// server secret s is Shamir-shared among n servers, each publishes a
// PARTIAL update sᵢ·H1(T) at time T, and ANY k of them combine — via
// Lagrange interpolation in the exponent — into the ordinary update
// s·H1(T):
//
//	Σ_{i∈S} λᵢ·sᵢ·H1(T) = (Σ λᵢ·f(i))·H1(T) = f(0)·H1(T) = s·H1(T)
//
// The combined update is byte-identical to a single-server update, so
// every TRE/ID-TRE/policy-lock ciphertext and all receiver code work
// unchanged. Fewer than k servers learn nothing about s·H1(T).
//
// The dealer is a trusted one-time ceremony (it sees s and must erase
// it); a distributed key generation protocol would remove the dealer and
// is noted as future work in DESIGN.md.
package threshold

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"timedrelease/internal/backend"
	"timedrelease/internal/core"
	"timedrelease/internal/curve"
	"timedrelease/internal/params"
)

// Share is one server's slice of the group key.
type Share struct {
	Index int         // 1-based evaluation point
	S     *big.Int    // f(Index), the server's signing share
	Pub   curve.Point // sᵢ·G, for partial verification
}

// Setup is the result of the dealing ceremony.
type Setup struct {
	K, N     int
	GroupPub core.ServerPublicKey // (G, sG): what senders and receivers use
	Shares   []Share              // one per server; distribute and erase
}

// Deal runs the trusted dealing ceremony: sample a degree-(k−1)
// polynomial f with random f(0)=s, hand server i the share f(i), and
// publish (G, sG). The polynomial (and s) are discarded on return.
func Deal(set *params.Set, rng io.Reader, k, n int) (*Setup, error) {
	if k < 1 || n < k {
		return nil, fmt.Errorf("threshold: need 1 ≤ k ≤ n, got k=%d n=%d", k, n)
	}
	coeffs := make([]*big.Int, k)
	for i := range coeffs {
		c, err := set.B.RandScalar(rng)
		if err != nil {
			return nil, err
		}
		coeffs[i] = c
	}
	qf, err := fieldOfOrder(set)
	if err != nil {
		return nil, err
	}
	eval := func(x int64) *big.Int {
		// Horner's rule over Z_q.
		acc := new(big.Int)
		xv := big.NewInt(x)
		for i := len(coeffs) - 1; i >= 0; i-- {
			acc = qf.Add(qf.Mul(acc, xv), coeffs[i])
		}
		return acc
	}

	sg := set.B.ScalarMult(backend.G1, coeffs[0], set.G)
	sg2 := sg
	if set.Asymmetric() {
		sg2 = set.B.ScalarMult(backend.G2, coeffs[0], set.G2)
	}
	setup := &Setup{
		K: k, N: n,
		GroupPub: core.ServerPublicKey{G: set.G, SG: sg, SG2: sg2},
	}
	for i := 1; i <= n; i++ {
		si := eval(int64(i))
		if si.Sign() == 0 {
			// Astronomically unlikely; re-deal rather than hand out a zero
			// share.
			return Deal(set, rng, k, n)
		}
		setup.Shares = append(setup.Shares, Share{
			Index: i,
			S:     si,
			Pub:   set.B.ScalarMult(backend.G1, si, set.G),
		})
	}
	return setup, nil
}

// PartialUpdate is one server's contribution for a label.
type PartialUpdate struct {
	Index int
	Label string
	Point curve.Point // sᵢ·H1(label)
}

// IssuePartial produces server i's partial update for a label.
func IssuePartial(set *params.Set, share Share, label string) PartialUpdate {
	h := set.B.HashToG2(core.TimeDomain, []byte(label))
	return PartialUpdate{
		Index: share.Index,
		Label: label,
		Point: set.B.ScalarMult(backend.G2, share.S, h),
	}
}

// VerifyPartial checks a partial against the issuing server's public
// share point: ê(G, σᵢ) = ê(sᵢG, H1(T)). Run this before Combine so a
// single Byzantine server cannot spoil reconstruction.
func VerifyPartial(set *params.Set, sharePub curve.Point, pu PartialUpdate) bool {
	if pu.Point.IsInfinity() || !set.B.InSubgroup(backend.G2, pu.Point) {
		return false
	}
	h := set.B.HashToG2(core.TimeDomain, []byte(pu.Label))
	return set.B.SamePairing(set.G, pu.Point, sharePub, h)
}

// Combine interpolates any k distinct verified partials into the
// ordinary time-bound key update s·H1(T), then checks it against the
// group public key (so a bad subset is reported, never returned).
func Combine(set *params.Set, groupPub core.ServerPublicKey, partials []PartialUpdate, k int) (core.KeyUpdate, error) {
	if len(partials) < k {
		return core.KeyUpdate{}, &QuorumError{Need: k, Have: len(partials)}
	}
	// Take the first k distinct indices with a consistent label.
	label := partials[0].Label
	chosen := make([]PartialUpdate, 0, k)
	seen := map[int]bool{}
	for _, p := range partials {
		if p.Label != label {
			return core.KeyUpdate{}, core.ErrLabelMismatch
		}
		if p.Index < 1 || seen[p.Index] {
			continue
		}
		seen[p.Index] = true
		chosen = append(chosen, p)
		if len(chosen) == k {
			break
		}
	}
	if len(chosen) < k {
		return core.KeyUpdate{}, &QuorumError{Need: k, Have: len(chosen)}
	}

	qf, err := fieldOfOrder(set)
	if err != nil {
		return core.KeyUpdate{}, err
	}
	indices := make([]int, k)
	for i, p := range chosen {
		indices[i] = p.Index
	}
	lambdas := lagrangeAtZero(qf, indices)

	acc := set.B.Infinity(backend.G2)
	for i, p := range chosen {
		acc = set.B.Add(backend.G2, acc, set.B.ScalarMult(backend.G2, lambdas[i], p.Point))
	}
	upd := core.KeyUpdate{Label: label, Point: acc}
	if !core.NewScheme(set).VerifyUpdate(groupPub, upd) {
		return core.KeyUpdate{}, ErrBadCombination
	}
	return upd, nil
}

// ErrBadCombination reports that the interpolated update failed the
// self-authentication check — at least one partial was invalid or the
// subset mixed shares of different dealings.
var ErrBadCombination = errors.New("threshold: combined update failed verification (bad partial in subset?)")

// QuorumError reports a combination or fan-out that could not gather k
// usable partials: Have distinct verified partials against a quorum of
// Need, with the per-shard failure causes (when known) unwrappable via
// errors.Is/As.
type QuorumError struct {
	Need, Have int
	Causes     []error
}

// Error renders the quorum shortfall with its causes.
func (e *QuorumError) Error() string {
	msg := fmt.Sprintf("threshold: quorum not reached (%d of %d needed)", e.Have, e.Need)
	if len(e.Causes) > 0 {
		msg += ": " + errors.Join(e.Causes...).Error()
	}
	return msg
}

// Unwrap exposes the per-shard causes to errors.Is/As.
func (e *QuorumError) Unwrap() []error { return e.Causes }

// RecoverSecret reconstructs the group secret s = f(0) from any k
// distinct shares. This exists for dealing ceremonies (migrating a
// group to a new quorum layout) and for differential tests that pin the
// threshold scheme against the single-server one — production shards
// must never pool their shares.
func RecoverSecret(set *params.Set, shares []Share, k int) (*big.Int, error) {
	if k < 1 || len(shares) < k {
		return nil, &QuorumError{Need: k, Have: len(shares)}
	}
	chosen := make([]Share, 0, k)
	seen := map[int]bool{}
	for _, sh := range shares {
		if sh.Index < 1 || seen[sh.Index] {
			continue
		}
		seen[sh.Index] = true
		chosen = append(chosen, sh)
		if len(chosen) == k {
			break
		}
	}
	if len(chosen) < k {
		return nil, &QuorumError{Need: k, Have: len(chosen)}
	}
	qf, err := fieldOfOrder(set)
	if err != nil {
		return nil, err
	}
	indices := make([]int, k)
	for i, sh := range chosen {
		indices[i] = sh.Index
	}
	lambdas := lagrangeAtZero(qf, indices)
	s := new(big.Int)
	for i, sh := range chosen {
		s = qf.Add(s, qf.Mul(lambdas[i], sh.S))
	}
	return s, nil
}

// lagrangeAtZero returns the Lagrange coefficients λᵢ = Π_{j≠i}
// xⱼ/(xⱼ−xᵢ) mod q for evaluation at zero.
func lagrangeAtZero(qf *scalarField, indices []int) []*big.Int {
	out := make([]*big.Int, len(indices))
	for i, xi := range indices {
		num := big.NewInt(1)
		den := big.NewInt(1)
		for j, xj := range indices {
			if i == j {
				continue
			}
			num = qf.Mul(num, big.NewInt(int64(xj)))
			den = qf.Mul(den, qf.Sub(big.NewInt(int64(xj)), big.NewInt(int64(xi))))
		}
		out[i] = qf.Mul(num, qf.Inv(den))
	}
	return out
}

// scalarField is minimal mod-q arithmetic for interpolation.
type scalarField struct {
	q *big.Int
}

func fieldOfOrder(set *params.Set) (*scalarField, error) {
	if set.Q.Sign() <= 0 {
		return nil, errors.New("threshold: bad group order")
	}
	return &scalarField{q: set.Q}, nil
}

func (f *scalarField) Add(a, b *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Add(a, b), f.q)
}

func (f *scalarField) Sub(a, b *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Sub(a, b), f.q)
}

func (f *scalarField) Mul(a, b *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Mul(a, b), f.q)
}

func (f *scalarField) Inv(a *big.Int) *big.Int {
	r := new(big.Int).ModInverse(new(big.Int).Mod(a, f.q), f.q)
	if r == nil {
		panic("threshold: inverse of zero")
	}
	return r
}

package resilient

import (
	"bytes"
	"errors"
	"math/big"
	"testing"

	"timedrelease/internal/hibe"
	"timedrelease/internal/params"
)

func setup(t *testing.T, depth int) (*Scheme, *hibe.RootKey) {
	t.Helper()
	sc, err := NewScheme(params.MustPreset("Test160"), depth)
	if err != nil {
		t.Fatal(err)
	}
	root, err := sc.H.RootKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	return sc, root
}

func TestPathOf(t *testing.T) {
	sc, _ := setup(t, 4)
	tests := map[uint64]string{
		0:  "0000",
		1:  "0001",
		5:  "0101",
		15: "1111",
	}
	for epoch, want := range tests {
		path, err := sc.PathOf(epoch)
		if err != nil {
			t.Fatal(err)
		}
		got := ""
		for _, b := range path {
			got += b
		}
		if got != want {
			t.Errorf("PathOf(%d) = %s, want %s", epoch, got, want)
		}
	}
	if _, err := sc.PathOf(16); err == nil {
		t.Fatal("out-of-range epoch must be rejected")
	}
}

func TestCoverStructure(t *testing.T) {
	sc, _ := setup(t, 4)
	// Cover of [0,5] (0101): sibling-left nodes are "0" at each 1-bit:
	// path 0101 → 1-bits at positions 1 and 3 → nodes "00"?? no:
	// prefix before pos1 = "0", node = "00"; prefix before pos3 = "010",
	// node = "0100"; plus leaf "0101".
	cover, err := sc.Cover(5)
	if err != nil {
		t.Fatal(err)
	}
	join := func(p []string) string {
		s := ""
		for _, x := range p {
			s += x
		}
		return s
	}
	want := map[string]bool{"00": true, "0100": true, "0101": true}
	if len(cover) != len(want) {
		t.Fatalf("cover size %d, want %d (%v)", len(cover), len(want), cover)
	}
	for _, p := range cover {
		if !want[join(p)] {
			t.Fatalf("unexpected cover node %s", join(p))
		}
	}
	// Full range.
	coverMax, err := sc.Cover(15)
	if err != nil {
		t.Fatal(err)
	}
	if len(coverMax) != 5 { // "0", "10", "110", "1110", leaf "1111"
		t.Fatalf("cover(15) size = %d", len(coverMax))
	}
	// Epoch 0: just the leaf.
	cover0, err := sc.Cover(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover0) != 1 || join(cover0[0]) != "0000" {
		t.Fatalf("cover(0) = %v", cover0)
	}
}

func TestCoverCoversExactlyPast(t *testing.T) {
	// Exhaustive ground truth on a small tree: the cover of [0,t] must
	// dominate every epoch ≤ t and no epoch > t.
	sc, root := setup(t, 3)
	for tt := uint64(0); tt < 8; tt++ {
		cover, err := sc.PublishCover(root, tt)
		if err != nil {
			t.Fatal(err)
		}
		for e := uint64(0); e < 8; e++ {
			_, err := sc.LeafKey(cover, e)
			if e <= tt && err != nil {
				t.Fatalf("t=%d: epoch %d should be covered: %v", tt, e, err)
			}
			if e > tt && !errors.Is(err, ErrNotCovered) {
				t.Fatalf("t=%d: epoch %d must NOT be covered (err=%v)", tt, e, err)
			}
		}
	}
}

func TestEndToEndWithMissedUpdates(t *testing.T) {
	// A receiver misses every publication between epochs 2 and 11, then
	// downloads only the cover at 11 and decrypts a message released at
	// epoch 7.
	sc, root := setup(t, 4)
	msg := []byte("released at epoch 7, recovered at epoch 11")
	ct, err := sc.Encrypt(nil, root.Pub, 7, msg)
	if err != nil {
		t.Fatal(err)
	}

	cover, err := sc.PublishCover(root, 11)
	if err != nil {
		t.Fatal(err)
	}
	// The download is small: ≤ Depth+1 bundles, not 10 updates.
	if len(cover) > sc.Depth+1 {
		t.Fatalf("cover size %d exceeds depth+1", len(cover))
	}
	got, err := sc.Decrypt(cover, 7, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip mismatch")
	}
}

func TestFutureEpochStaysLocked(t *testing.T) {
	sc, root := setup(t, 4)
	msg := []byte("not until epoch 12")
	ct, err := sc.Encrypt(nil, root.Pub, 12, msg)
	if err != nil {
		t.Fatal(err)
	}
	cover, err := sc.PublishCover(root, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Decrypt(cover, 12, ct); !errors.Is(err, ErrNotCovered) {
		t.Fatalf("future epoch: err=%v, want ErrNotCovered", err)
	}
}

func TestCoverSizeLogarithmic(t *testing.T) {
	sc, _ := setup(t, 16) // 65536 epochs
	worst := 0
	for _, tt := range []uint64{0, 1, 1000, 32767, 65534, 65535} {
		n, err := sc.CoverSize(tt)
		if err != nil {
			t.Fatal(err)
		}
		if n > worst {
			worst = n
		}
	}
	if worst > sc.Depth+1 {
		t.Fatalf("cover size %d exceeds depth+1 = %d", worst, sc.Depth+1)
	}
}

func TestNewSchemeValidation(t *testing.T) {
	set := params.MustPreset("Test160")
	for _, d := range []int{0, -1, 63, 100} {
		if _, err := NewScheme(set, d); err == nil {
			t.Errorf("depth %d must be rejected", d)
		}
	}
}

func TestCoverSerialisationAndVerification(t *testing.T) {
	sc, root := setup(t, 6)
	cover, err := sc.PublishCover(root, 37)
	if err != nil {
		t.Fatal(err)
	}
	// Round trip.
	enc := sc.MarshalCover(cover)
	back, err := sc.UnmarshalCover(enc)
	if err != nil {
		t.Fatalf("UnmarshalCover: %v", err)
	}
	if len(back) != len(cover) {
		t.Fatalf("cover size changed: %d vs %d", len(back), len(cover))
	}
	// Verification against the root public key.
	if !sc.VerifyCover(root.Pub, back) {
		t.Fatal("genuine cover must verify")
	}
	// The decoded cover must actually work.
	msg := []byte("decoded cover decrypts")
	ct, err := sc.Encrypt(nil, root.Pub, 20, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.Decrypt(back, 20, ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("decrypt with decoded cover: %q %v", got, err)
	}

	// Tampering: corrupt one bundle's S point → verification fails.
	tampered := make([]hibe.NodeKey, len(back))
	copy(tampered, back)
	tampered[0].S = sc.H.Set.Curve.Add(tampered[0].S, sc.H.Set.G)
	if sc.VerifyCover(root.Pub, tampered) {
		t.Fatal("tampered cover must not verify")
	}
	// A cover from a different root must not verify.
	otherRoot, err := sc.H.RootKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	alien, err := sc.PublishCover(otherRoot, 37)
	if err != nil {
		t.Fatal(err)
	}
	if sc.VerifyCover(root.Pub, alien) {
		t.Fatal("cover from another root must not verify")
	}

	// Malformed encodings.
	for name, data := range map[string][]byte{
		"empty":     {},
		"truncated": enc[:len(enc)-3],
		"trailing":  append(append([]byte{}, enc...), 1),
		"zero size": {0, 0},
	} {
		if _, err := sc.UnmarshalCover(data); err == nil {
			t.Errorf("%s: must fail", name)
		}
	}
}

func TestDelegationScalarIsNotTrustBearing(t *testing.T) {
	// The delegation scalar is NOT what verification anchors — and it
	// doesn't have to be. A mirror that substitutes a different (known)
	// delegation scalar produces children that are still self-consistent
	// and still decrypt correctly, because decryption cancels every
	// Q-dependent term: the security anchor is the unforgeable s·P₁
	// component pinned by Q₀ = sG. Assert both halves of that invariant.
	sc, root := setup(t, 4)
	k, err := sc.H.NodeFor(root, []string{"0", "1"})
	if err != nil {
		t.Fatal(err)
	}
	if !sc.H.VerifyNodeKey(root.Pub, k) {
		t.Fatal("genuine bundle must verify")
	}

	rerandomised := k
	rerandomised.Delegation = new(big.Int).Add(k.Delegation, big.NewInt(1))
	if rerandomised.Delegation.Cmp(sc.H.Set.Q) >= 0 {
		rerandomised.Delegation = big.NewInt(1)
	}
	child := sc.H.Child(rerandomised, "0")
	if !sc.H.VerifyNodeKey(root.Pub, child) {
		t.Fatal("self-consistent re-randomised child must verify")
	}
	// ...and it is a WORKING key for its path (epoch 0b0100 = 4).
	msg := []byte("re-randomised delegation still decrypts")
	ct, err := sc.Encrypt(nil, root.Pub, 4, msg)
	if err != nil {
		t.Fatal(err)
	}
	leaf := sc.H.Child(child, "0")
	got, err := sc.H.Decrypt(leaf, ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("decrypt via re-randomised chain: %q %v", got, err)
	}

	// What CANNOT pass: a forged S (the anchored component).
	forged := k
	forged.S = sc.H.Set.Curve.Add(k.S, sc.H.Set.G)
	if sc.H.VerifyNodeKey(root.Pub, forged) {
		t.Fatal("forged S must not verify")
	}
}

// Package resilient implements the paper's future-work proposal (§6):
// timed-release encryption that tolerates missing updates, built from a
// HIBE time tree "in a way similar to forward secure encryption" (CHK).
//
// Epochs 0 … 2^Depth−1 are the leaves of a binary tree; each epoch's
// decryption capability is the HIBE key of its leaf. When epoch t
// arrives, the server publishes the key bundles of the COVER SET of
// [0, t] — the ≤ Depth+1 subtree roots whose leaves are exactly
// 0 … t. Anyone holding the cover can derive the leaf key of ANY past
// epoch, so a receiver who was offline for a month needs one small
// download, not one update per missed epoch. Epochs > t live in
// subtrees whose keys remain with the server.
//
// The trade-offs against the flat scheme (measured in experiment E10):
// ciphertexts grow to Depth group elements and decryption needs a
// Depth-factor pairing product, in exchange for O(log N) recovery
// instead of O(missed).
package resilient

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"timedrelease/internal/hibe"
	"timedrelease/internal/params"
)

// Scheme is a missing-update-resilient timed-release scheme over a
// binary time tree of the given depth (covering 2^Depth epochs).
type Scheme struct {
	H     *hibe.Scheme
	Depth int
}

// NewScheme returns a time-tree scheme. Depth must be in [1, 62].
func NewScheme(set *params.Set, depth int) (*Scheme, error) {
	if depth < 1 || depth > 62 {
		return nil, errors.New("resilient: depth must be in [1, 62]")
	}
	return &Scheme{
		H:     hibe.NewScheme(set, fmt.Sprintf("timetree-%d", depth)),
		Depth: depth,
	}, nil
}

// Epochs returns the number of addressable epochs, 2^Depth.
func (sc *Scheme) Epochs() uint64 { return 1 << sc.Depth }

// PathOf returns the leaf path of an epoch: its Depth bits, most
// significant first, as "0"/"1" labels.
func (sc *Scheme) PathOf(epoch uint64) ([]string, error) {
	if epoch >= sc.Epochs() {
		return nil, fmt.Errorf("resilient: epoch %d out of range [0, %d)", epoch, sc.Epochs())
	}
	path := make([]string, sc.Depth)
	for i := 0; i < sc.Depth; i++ {
		bit := (epoch >> (sc.Depth - 1 - i)) & 1
		path[i] = string('0' + byte(bit))
	}
	return path, nil
}

// Cover returns the node paths of the minimal cover of [0, t]: for each
// 1-bit of the leaf path, the sibling 0-subtree to its left, plus the
// leaf t itself. |Cover| ≤ Depth+1.
func (sc *Scheme) Cover(t uint64) ([][]string, error) {
	leaf, err := sc.PathOf(t)
	if err != nil {
		return nil, err
	}
	var cover [][]string
	for i, bit := range leaf {
		if bit == "1" {
			node := append(append([]string(nil), leaf[:i]...), "0")
			cover = append(cover, node)
		}
	}
	cover = append(cover, leaf)
	return cover, nil
}

// PublishCover computes the key bundles for the cover of [0, t] — what
// the server publishes when epoch t arrives. The server derives each
// bundle statelessly from its root key.
func (sc *Scheme) PublishCover(root *hibe.RootKey, t uint64) ([]hibe.NodeKey, error) {
	paths, err := sc.Cover(t)
	if err != nil {
		return nil, err
	}
	keys := make([]hibe.NodeKey, len(paths))
	for i, p := range paths {
		k, err := sc.H.NodeFor(root, p)
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	return keys, nil
}

// Encrypt seals msg so it opens at the given epoch (combine with the
// receiver-bound layer of the flat scheme as needed; this package
// focuses on the time capability).
func (sc *Scheme) Encrypt(rng io.Reader, pub hibe.RootPublicKey, epoch uint64, msg []byte) (*hibe.Ciphertext, error) {
	path, err := sc.PathOf(epoch)
	if err != nil {
		return nil, err
	}
	return sc.H.Encrypt(rng, pub, path, msg)
}

// LeafKey finds a cover bundle that dominates the epoch and derives the
// leaf key from it. ErrNotCovered means every bundle is for a disjoint
// range — i.e. the epoch is still in the future relative to the cover.
func (sc *Scheme) LeafKey(cover []hibe.NodeKey, epoch uint64) (hibe.NodeKey, error) {
	leaf, err := sc.PathOf(epoch)
	if err != nil {
		return hibe.NodeKey{}, err
	}
	for _, nk := range cover {
		if !isPrefix(nk.Path, leaf) {
			continue
		}
		k := nk
		for _, label := range leaf[len(nk.Path):] {
			k = sc.H.Child(k, label)
		}
		return k, nil
	}
	return hibe.NodeKey{}, ErrNotCovered
}

// Decrypt derives the epoch's leaf key from the cover and decrypts.
func (sc *Scheme) Decrypt(cover []hibe.NodeKey, epoch uint64, ct *hibe.Ciphertext) ([]byte, error) {
	k, err := sc.LeafKey(cover, epoch)
	if err != nil {
		return nil, err
	}
	return sc.H.Decrypt(k, ct)
}

// ErrNotCovered reports that the supplied cover does not reach the
// requested epoch (it has not been released yet).
var ErrNotCovered = errors.New("resilient: epoch not covered by the published key set")

// CoverSize returns |Cover([0,t])| without deriving keys — used by the
// E10 size accounting.
func (sc *Scheme) CoverSize(t uint64) (int, error) {
	paths, err := sc.Cover(t)
	if err != nil {
		return 0, err
	}
	return len(paths), nil
}

func isPrefix(prefix, full []string) bool {
	if len(prefix) > len(full) {
		return false
	}
	for i := range prefix {
		if prefix[i] != full[i] {
			return false
		}
	}
	return true
}

// MarshalCover serialises a cover publication: u16 count, then each
// bundle length-prefixed (u32). This is what a resilient time authority
// publishes per epoch — static bytes servable from any dumb channel,
// verifiable by VerifyCover at the receiver.
func (sc *Scheme) MarshalCover(cover []hibe.NodeKey) []byte {
	out := binary.BigEndian.AppendUint16(nil, uint16(len(cover)))
	for _, k := range cover {
		b := sc.H.MarshalNodeKey(k)
		out = binary.BigEndian.AppendUint32(out, uint32(len(b)))
		out = append(out, b...)
	}
	return out
}

// UnmarshalCover decodes a cover publication.
func (sc *Scheme) UnmarshalCover(data []byte) ([]hibe.NodeKey, error) {
	if len(data) < 2 {
		return nil, errors.New("resilient: truncated cover")
	}
	n := int(binary.BigEndian.Uint16(data[:2]))
	rest := data[2:]
	if n == 0 || n > sc.Depth+1 {
		return nil, fmt.Errorf("resilient: implausible cover size %d", n)
	}
	out := make([]hibe.NodeKey, 0, n)
	for i := 0; i < n; i++ {
		if len(rest) < 4 {
			return nil, errors.New("resilient: truncated cover entry")
		}
		l := int(binary.BigEndian.Uint32(rest[:4]))
		rest = rest[4:]
		if l < 0 || len(rest) < l {
			return nil, errors.New("resilient: truncated cover entry body")
		}
		k, err := sc.H.UnmarshalNodeKey(rest[:l])
		if err != nil {
			return nil, fmt.Errorf("resilient: cover entry %d: %w", i, err)
		}
		out = append(out, k)
		rest = rest[l:]
	}
	if len(rest) != 0 {
		return nil, errors.New("resilient: trailing bytes after cover")
	}
	return out, nil
}

// VerifyCover checks every bundle of a received cover against the root
// public key; receivers run this before trusting covers from an
// untrusted mirror, exactly as flat clients verify key updates.
func (sc *Scheme) VerifyCover(pub hibe.RootPublicKey, cover []hibe.NodeKey) bool {
	if len(cover) == 0 {
		return false
	}
	for _, k := range cover {
		if len(k.Path) > sc.Depth {
			return false
		}
		if !sc.H.VerifyNodeKey(pub, k) {
			return false
		}
	}
	return true
}

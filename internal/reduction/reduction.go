// Package reduction is an executable rendering of the paper's APPENDIX:
// the random-oracle simulator 𝒜₂ that turns any adversary 𝒜₃ — one who
// uses other key updates to decrypt a ciphertext before its release
// time — into a solver for the (BDH-style) pairing problem
//
//	given xG, yG, Q ∈ G1, find ê(G, Q)^{xy}.
//
// 𝒜₂ plays 𝒜₃'s entire environment:
//
//   - H1 queries: for a fresh label it flips a δ-biased coin and answers
//     bᵢ·Q (probability δ, "planted") or bᵢ·G (probability 1−δ,
//     "answerable"), remembering (label, bᵢ, kind). 𝒜₃ cannot
//     distinguish either from a random point.
//   - Update queries: for an answerable label the simulator returns
//     bᵢ·(yG) = y·H1(label) computed WITHOUT knowing y; for a planted
//     label it must abort — it cannot sign those.
//   - The challenge: for a label the adversary chose, the simulator
//     hands out C = ⟨xG, X⟩ with X random. If the challenge label is
//     answerable the run aborts (nothing to extract); if planted,
//     whatever H2 query a successful 𝒜₃ makes to unmask X must contain
//     W = ê(G, Q)^{xyb}, from which 𝒜₂ recovers ê(G, Q)^{xy} = W^{1/b}.
//
// A run survives with probability δ(1−δ)^{q_u} for q_u update queries —
// the exact bookkeeping of the appendix — which the package's tests
// check empirically, along with end-to-end extraction soundness against
// a maximally successful adversary.
package reduction

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"timedrelease/internal/backend"
	"timedrelease/internal/core"
	"timedrelease/internal/curve"
	"timedrelease/internal/pairing"
	"timedrelease/internal/params"
	"timedrelease/internal/rohash"
)

// ErrAbort is returned when the simulation cannot continue (an update
// query for a planted label, or a challenge on an answerable one). In
// the proof this is the δ(1−δ)^{q_u} failure branch.
var ErrAbort = errors.New("reduction: simulation aborted (coin pattern does not fit this run)")

// kind tags how a label's H1 value was programmed.
type kind int

const (
	answerable kind = iota // H1(T) = b·G — update queries can be served
	planted                // H1(T) = b·Q — the challenge can be embedded
)

// h1Entry is one programmed oracle point.
type h1Entry struct {
	b    *big.Int
	kind kind
	pt   curve.Point
}

// Simulator is 𝒜₂: it holds the problem instance and the full
// random-oracle state. Not safe for concurrent use (an adversary is a
// single interactive party).
type Simulator struct {
	set   *params.Set
	delta int // planted-coin probability in 1/256ths

	xG, yG, q curve.Point // the problem instance (x, y unknown to 𝒜₂)

	rng io.Reader
	h1  map[string]h1Entry
	h2  []pairing.GT // inputs of every H2 query the adversary made
}

// NewSimulator creates 𝒜₂ for the instance (xG, yG, Q) with planting
// probability delta256/256.
func NewSimulator(set *params.Set, xG, yG, q curve.Point, delta256 int, rng io.Reader) (*Simulator, error) {
	if set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	if delta256 < 1 || delta256 > 255 {
		return nil, fmt.Errorf("reduction: delta256 must be in [1,255], got %d", delta256)
	}
	if rng == nil {
		rng = rand.Reader
	}
	return &Simulator{
		set:   set,
		delta: delta256,
		xG:    xG,
		yG:    yG,
		q:     q,
		rng:   rng,
		h1:    make(map[string]h1Entry),
	}, nil
}

// H1 answers (and records) a random-oracle query for a label. Repeated
// queries return the same point, as a real oracle would.
func (s *Simulator) H1(label string) (curve.Point, error) {
	if e, ok := s.h1[label]; ok {
		return e.pt, nil
	}
	b, err := s.set.Curve.RandScalar(s.rng)
	if err != nil {
		return curve.Point{}, err
	}
	var coin [1]byte
	if _, err := io.ReadFull(s.rng, coin[:]); err != nil {
		return curve.Point{}, err
	}
	e := h1Entry{b: b}
	if int(coin[0]) < s.delta {
		e.kind = planted
		e.pt = s.set.Curve.ScalarMult(b, s.q)
	} else {
		e.kind = answerable
		e.pt = s.set.Curve.ScalarMult(b, s.set.G)
	}
	s.h1[label] = e
	return e.pt, nil
}

// Update serves 𝒜₃'s key-update query for a label: y·H1(label), which
// the simulator can produce exactly when the label is answerable
// (b·yG); planted labels abort the run.
func (s *Simulator) Update(label string) (core.KeyUpdate, error) {
	if _, err := s.H1(label); err != nil {
		return core.KeyUpdate{}, err
	}
	e := s.h1[label]
	if e.kind == planted {
		return core.KeyUpdate{}, fmt.Errorf("%w: update query on planted label %q", ErrAbort, label)
	}
	return core.KeyUpdate{Label: label, Point: s.set.Curve.ScalarMult(e.b, s.yG)}, nil
}

// Challenge embeds the problem instance into a ciphertext for the
// adversary's chosen label: C = ⟨xG, X⟩ with X uniformly random (the
// simulator does not know — and never needs — the "plaintext"). Aborts
// unless the label was planted.
func (s *Simulator) Challenge(label string, msgLen int) (*core.Ciphertext, error) {
	if _, err := s.H1(label); err != nil {
		return nil, err
	}
	e := s.h1[label]
	if e.kind != planted {
		return nil, fmt.Errorf("%w: challenge label %q is not planted", ErrAbort, label)
	}
	x := make([]byte, msgLen)
	if _, err := io.ReadFull(s.rng, x); err != nil {
		return nil, err
	}
	return &core.Ciphertext{U: s.xG.Clone(), V: x}, nil
}

// H2 answers (and records) the adversary's H2 queries. Consistency with
// the scheme's real H2 lets an adversary that genuinely computes the
// pairing value unmask the challenge — and hands its input to 𝒜₂.
func (s *Simulator) H2(k pairing.GT, n int) []byte {
	s.h2 = append(s.h2, k)
	return rohash.Expand("TRE-H2", s.set.Pairing.E2.Bytes(k), n)
}

// H2Queries reports how many H2 queries were recorded.
func (s *Simulator) H2Queries() int { return len(s.h2) }

// ExtractCandidates turns the recorded H2 inputs into BDH candidates
// for the challenge label: each query W yields W^{1/b}, and if 𝒜₃
// succeeded, one of them equals ê(G, Q)^{xy}. (The paper picks one at
// random; returning all candidates loses nothing and simplifies the
// caller, which can test each against its verification relation.)
func (s *Simulator) ExtractCandidates(label string) ([]pairing.GT, error) {
	e, ok := s.h1[label]
	if !ok || e.kind != planted {
		return nil, fmt.Errorf("%w: no planted challenge for %q", ErrAbort, label)
	}
	bInv := new(big.Int).ModInverse(e.b, s.set.Q)
	if bInv == nil {
		return nil, errors.New("reduction: non-invertible b (impossible for b in [1,q-1])")
	}
	out := make([]pairing.GT, len(s.h2))
	for i, w := range s.h2 {
		out[i] = s.set.Pairing.E2.Exp(w, bInv)
	}
	return out, nil
}

// Kind reports how a label was programmed (tests and diagnostics).
func (s *Simulator) Kind(label string) (isPlanted, known bool) {
	e, ok := s.h1[label]
	if !ok {
		return false, false
	}
	return e.kind == planted, true
}

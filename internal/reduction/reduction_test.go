package reduction

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"timedrelease/internal/params"
	"timedrelease/internal/rohash"
)

// smallSet generates (once) a small parameter set so the Monte-Carlo
// tests run thousands of simulator rounds quickly.
var smallSet = sync.OnceValue(func() *params.Set {
	set, err := params.Generate(nil, 96, 48)
	if err != nil {
		panic(err)
	}
	return set
})

func TestH1ConsistentAndIndistinguishable(t *testing.T) {
	set := smallSet()
	x, _ := set.Curve.RandScalar(nil)
	y, _ := set.Curve.RandScalar(nil)
	z, _ := set.Curve.RandScalar(nil)
	sim, err := NewSimulator(set,
		set.Curve.ScalarMult(x, set.G),
		set.Curve.ScalarMult(y, set.G),
		set.Curve.ScalarMult(z, set.G),
		64, nil) // δ = 0.25
	if err != nil {
		t.Fatal(err)
	}

	plantedCount := 0
	const n = 400
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("label-%d", i)
		p1, err := sim.H1(label)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := sim.H1(label)
		if err != nil {
			t.Fatal(err)
		}
		if !set.Curve.Equal(p1, p2) {
			t.Fatal("oracle must be consistent")
		}
		if !set.Curve.InSubgroup(p1) || p1.IsInfinity() {
			t.Fatal("oracle outputs must be valid subgroup points")
		}
		if isPlanted, _ := sim.Kind(label); isPlanted {
			plantedCount++
		}
	}
	// δ = 1/4: expect ~100 of 400, stddev ≈ 8.7; allow ±5σ.
	if plantedCount < 56 || plantedCount > 144 {
		t.Fatalf("planted count %d of %d wildly off δ=0.25", plantedCount, n)
	}
}

func TestUpdatesForAnswerableLabelsAreCorrectSignatures(t *testing.T) {
	// What 𝒜₂ serves must be indistinguishable from real updates:
	// y·H1(label) exactly, verifiable with the real pairing equation.
	set := smallSet()
	x, _ := set.Curve.RandScalar(nil)
	y, _ := set.Curve.RandScalar(nil)
	z, _ := set.Curve.RandScalar(nil)
	yG := set.Curve.ScalarMult(y, set.G)
	sim, err := NewSimulator(set, set.Curve.ScalarMult(x, set.G), yG, set.Curve.ScalarMult(z, set.G), 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for i := 0; served < 10 && i < 200; i++ {
		label := fmt.Sprintf("u-%d", i)
		upd, err := sim.Update(label)
		if errors.Is(err, ErrAbort) {
			continue // planted label; a fresh run would be used in the proof
		}
		if err != nil {
			t.Fatal(err)
		}
		served++
		h, err := sim.H1(label)
		if err != nil {
			t.Fatal(err)
		}
		// ê(G, upd) == ê(yG, H1(label)) — the self-authentication equation
		// against the simulated oracle.
		if !set.Pairing.SamePairing(set.G, upd.Point, yG, h) {
			t.Fatal("simulated update failed the real verification equation")
		}
		// And it literally equals y·H1(label).
		if !set.Curve.Equal(upd.Point, set.Curve.ScalarMult(y, h)) {
			t.Fatal("simulated update != y·H1(label)")
		}
	}
	if served < 10 {
		t.Fatal("too few answerable labels (δ miscalibrated?)")
	}
}

func TestReductionExtractsBDHFromSuccessfulAdversary(t *testing.T) {
	// End-to-end soundness: a maximally successful 𝒜₃ (simulated here
	// with the ground-truth exponents the simulator never sees) decrypts
	// the challenge; 𝒜₂'s extraction must then contain ê(G, Q)^{xy}.
	set := smallSet()
	x, _ := set.Curve.RandScalar(nil)
	y, _ := set.Curve.RandScalar(nil)
	z, _ := set.Curve.RandScalar(nil)
	xG := set.Curve.ScalarMult(x, set.G)
	yG := set.Curve.ScalarMult(y, set.G)
	q := set.Curve.ScalarMult(z, set.G)

	// High δ so a planted challenge label is found quickly.
	sim, err := NewSimulator(set, xG, yG, q, 128, nil)
	if err != nil {
		t.Fatal(err)
	}

	// 𝒜₃ makes some update queries first (only answerable ones succeed —
	// the adversary in the proof may hold arbitrarily many of these).
	for i := 0; i < 6; i++ {
		_, _ = sim.Update(fmt.Sprintf("past-%d", i))
	}

	// 𝒜₃ picks a challenge label; retry until the coin pattern fits
	// (in the proof this is the non-abort branch).
	var challengeLabel string
	for i := 0; ; i++ {
		label := fmt.Sprintf("challenge-%d", i)
		if _, err := sim.H1(label); err != nil {
			t.Fatal(err)
		}
		if isPlanted, _ := sim.Kind(label); isPlanted {
			challengeLabel = label
			break
		}
		if i > 100 {
			t.Fatal("no planted label in 100 tries at δ=1/2")
		}
	}
	ct, err := sim.Challenge(challengeLabel, 32)
	if err != nil {
		t.Fatal(err)
	}

	// The "successful adversary": with ground truth it computes the real
	// update y·H1(T) and decrypts like an honest receiver with a = 1,
	// calling the simulator's H2 oracle to unmask — exactly the query the
	// reduction fishes for.
	h, err := sim.H1(challengeLabel)
	if err != nil {
		t.Fatal(err)
	}
	magicUpdate := set.Curve.ScalarMult(y, h)
	kPrime := set.Pairing.Pair(ct.U, magicUpdate)
	_ = rohash.XOR(ct.V, sim.H2(kPrime, len(ct.V))) // the "plaintext" (random, irrelevant)

	// 𝒜₂ extracts; ground truth is ê(G, Q)^{xy} = ê(xG, Q)^y.
	want := set.Pairing.E2.Exp(set.Pairing.Pair(xG, q), y)
	candidates, err := sim.ExtractCandidates(challengeLabel)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range candidates {
		if set.Pairing.E2.Equal(c, want) {
			return // reduction succeeded
		}
	}
	t.Fatalf("none of %d candidates equals ê(G,Q)^xy — the reduction lost the solution", len(candidates))
}

func TestAbortProbabilityMatchesAnalysis(t *testing.T) {
	// The appendix: a run with q_u update queries and one challenge
	// survives with probability δ(1−δ)^{q_u}. Monte-Carlo check at
	// δ = 1/4, q_u = 3: expected survival 0.25·0.75³ ≈ 0.1055.
	set := smallSet()
	x, _ := set.Curve.RandScalar(nil)
	y, _ := set.Curve.RandScalar(nil)
	z, _ := set.Curve.RandScalar(nil)
	xG := set.Curve.ScalarMult(x, set.G)
	yG := set.Curve.ScalarMult(y, set.G)
	q := set.Curve.ScalarMult(z, set.G)

	const (
		trials = 600
		qu     = 3
		delta  = 0.25
	)
	survived := 0
	for trial := 0; trial < trials; trial++ {
		sim, err := NewSimulator(set, xG, yG, q, 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for i := 0; i < qu; i++ {
			if _, err := sim.Update(fmt.Sprintf("t%d-u%d", trial, i)); err != nil {
				ok = false
				break
			}
		}
		if ok {
			if _, err := sim.Challenge(fmt.Sprintf("t%d-chal", trial), 8); err != nil {
				ok = false
			}
		}
		if ok {
			survived++
		}
	}
	want := delta * math.Pow(1-delta, qu)
	got := float64(survived) / trials
	sigma := math.Sqrt(want * (1 - want) / trials) // ≈ 0.0125
	if math.Abs(got-want) > 5*sigma {
		t.Fatalf("survival rate %.4f, analysis predicts %.4f (±%.4f at 5σ)", got, want, 5*sigma)
	}
}

func TestNewSimulatorValidation(t *testing.T) {
	set := smallSet()
	g := set.G
	for _, d := range []int{0, 256, -3} {
		if _, err := NewSimulator(set, g, g, g, d, nil); err == nil {
			t.Errorf("delta256=%d must be rejected", d)
		}
	}
}

func TestChallengeOnAnswerableAborts(t *testing.T) {
	set := smallSet()
	g := set.G
	sim, err := NewSimulator(set, g, g, g, 1, nil) // δ ≈ 0.4%: labels ~all answerable
	if err != nil {
		t.Fatal(err)
	}
	aborted := false
	for i := 0; i < 32; i++ {
		label := fmt.Sprintf("c-%d", i)
		if _, err := sim.Challenge(label, 8); errors.Is(err, ErrAbort) {
			aborted = true
			break
		}
	}
	if !aborted {
		t.Fatal("challenge on answerable labels must abort")
	}
	if _, err := sim.ExtractCandidates("never-queried"); !errors.Is(err, ErrAbort) {
		t.Fatalf("extract without planted challenge: err=%v", err)
	}
}

package bls381

import (
	"bytes"
	"math/big"
	"testing"
)

// feFromFuzz reduces arbitrary bytes into a field element and its
// big.Int reference value.
func feFromFuzz(b []byte) (fe, *big.Int) {
	v := new(big.Int).Mod(new(big.Int).SetBytes(b), rP())
	var x fe
	x.fromBig(v)
	return x, v
}

// FuzzFeArith differentially checks the unrolled six-limb base-field
// ladder (feMul and friends) against math/big on arbitrary operands —
// the reference the fixed-window comb in fe_arith.go promises.
func FuzzFeArith(f *testing.F) {
	f.Add([]byte{0}, []byte{1})
	f.Add([]byte{0xff}, []byte{2})
	f.Add(mustBig(pHex).Bytes(), new(big.Int).Sub(mustBig(pHex), big.NewInt(1)).Bytes())
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		if len(ab) > 96 || len(bb) > 96 {
			return
		}
		initCtx()
		p := rP()
		a, av := feFromFuzz(ab)
		b, bv := feFromFuzz(bb)
		check := func(op string, got *fe, want *big.Int) {
			t.Helper()
			if got.toBig().Cmp(want) != 0 {
				t.Fatalf("%s(%v, %v) = %v, want %v", op, av, bv, got.toBig(), want)
			}
		}
		var r fe
		r.mul(&a, &b)
		check("mul", &r, new(big.Int).Mod(new(big.Int).Mul(av, bv), p))
		r.sqr(&a)
		check("sqr", &r, new(big.Int).Mod(new(big.Int).Mul(av, av), p))
		r.add(&a, &b)
		check("add", &r, new(big.Int).Mod(new(big.Int).Add(av, bv), p))
		r.sub(&a, &b)
		check("sub", &r, new(big.Int).Mod(new(big.Int).Sub(av, bv), p))
		r.neg(&a)
		check("neg", &r, new(big.Int).Mod(new(big.Int).Neg(av), p))
		if av.Sign() != 0 {
			r.inv(&a)
			check("inv", &r, new(big.Int).ModInverse(av, p))
		}
		// Serialization round trip on a canonical element.
		enc := a.bytes(nil)
		back, ok := feFromBytes(enc)
		if !ok || !back.equal(&a) {
			t.Fatalf("bytes round trip failed for %v", av)
		}
	})
}

// fe12FromFuzz expands arbitrary bytes into a full Fp12 element
// (twelve base-field coefficients via the RFC 9380 expander, so short
// inputs still cover the whole tower).
func fe12FromFuzz(b []byte) fe12 {
	seed := expandMessageXMD(b, "bls381-fuzz-fe12", 12*feByteLen)
	load := func(i int) (x fe) {
		x.fromBig(new(big.Int).SetBytes(seed[i*feByteLen : (i+1)*feByteLen]))
		return x
	}
	var z fe12
	z.c0.b0 = fe2{c0: load(0), c1: load(1)}
	z.c0.b1 = fe2{c0: load(2), c1: load(3)}
	z.c0.b2 = fe2{c0: load(4), c1: load(5)}
	z.c1.b0 = fe2{c0: load(6), c1: load(7)}
	z.c1.b1 = fe2{c0: load(8), c1: load(9)}
	z.c1.b2 = fe2{c0: load(10), c1: load(11)}
	return z
}

// FuzzFp12Arith differentially checks tower multiplication against the
// big.Int reference model and enforces the ring identities the pairing
// relies on (sqr = mul, associativity, inverse, Frobenius order).
func FuzzFp12Arith(f *testing.F) {
	f.Add([]byte("a"), []byte("b"))
	f.Add([]byte{}, []byte{0xff, 0x00})
	f.Add([]byte("cyclotomic"), []byte("subgroup"))
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		if len(ab) > 256 || len(bb) > 256 {
			return
		}
		initCtx()
		a := fe12FromFuzz(ab)
		b := fe12FromFuzz(bb)

		var prod fe12
		prod.mul(&a, &b)
		if !r12equal(prod.toRef(), r12mul(a.toRef(), b.toRef())) {
			t.Fatal("mul disagrees with the big.Int reference tower")
		}

		var sq, aa fe12
		sq.sqr(&a)
		aa.mul(&a, &a)
		if !sq.equal(&aa) {
			t.Fatal("sqr(a) != a*a")
		}

		// (a*b)*a == a*(b*a): associativity + commutativity crossing the
		// Karatsuba split.
		var l, r fe12
		l.mul(&prod, &a)
		r.mul(&b, &a)
		r.mul(&a, &r)
		if !l.equal(&r) {
			t.Fatal("(a*b)*a != a*(b*a)")
		}

		if !a.isZero() {
			var inv, one fe12
			inv.inv(&a)
			one.mul(&a, &inv)
			if !one.isOne() {
				t.Fatal("a * a^-1 != 1")
			}
		}

		// Frobenius has order 12 on Fp12.
		frob := a
		for i := 0; i < 12; i++ {
			frob.frob(&frob)
		}
		if !frob.equal(&a) {
			t.Fatal("frob^12 != identity")
		}
	})
}

// FuzzG2Marshal hammers the compressed G2 decoder with arbitrary
// bytes: it must never panic, must reject non-canonical encodings, and
// every accepted point must be on the curve and re-encode to exactly
// the input bytes.
func FuzzG2Marshal(f *testing.F) {
	initCtx()
	f.Add(bytes.Repeat([]byte{0}, g2ByteLen))
	f.Add(append([]byte{0xc0}, bytes.Repeat([]byte{0}, g2ByteLen-1)...))
	f.Add(marshalG2(nil, &ctx.g2))
	h := hashToG2([]byte("fuzz-seed"), "bls381-fuzz-g2")
	f.Add(marshalG2(nil, &h))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := unmarshalG2(data)
		if err != nil {
			return
		}
		if !p.isInfinity() && !p.isOnCurve() {
			t.Fatal("decoder accepted a point off the curve")
		}
		enc := marshalG2(nil, &p)
		if !bytes.Equal(enc, data) {
			t.Fatalf("re-encoding differs: in %x out %x", data, enc)
		}
		back, err := unmarshalG2(enc)
		if err != nil || !back.equal(&p) {
			t.Fatal("re-decode round trip failed")
		}
	})
}

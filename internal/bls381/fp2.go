package bls381

import "math/big"

// fe2 is an element of Fp2 = Fp[i]/(i²+1), stored as c0 + c1·i. The
// tower continues with the non-residue ξ = 1 + i: Fp6 = Fp2[v]/(v³−ξ)
// and Fp12 = Fp6[w]/(w²−v). The zero value is zero.
type fe2 struct {
	c0, c1 fe
}

func (z *fe2) set(x *fe2)   { *z = *x }
func (z *fe2) setZero()     { *z = fe2{} }
func (z *fe2) setOne()      { z.c0.setOne(); z.c1.setZero() }
func (z *fe2) isZero() bool { return z.c0.isZero() && z.c1.isZero() }
func (z *fe2) isOne() bool  { return z.c0.isOne() && z.c1.isZero() }
func (z *fe2) equal(x *fe2) bool {
	return z.c0.equal(&x.c0) && z.c1.equal(&x.c1)
}

func (z *fe2) add(x, y *fe2) {
	z.c0.add(&x.c0, &y.c0)
	z.c1.add(&x.c1, &y.c1)
}

func (z *fe2) dbl(x *fe2) {
	z.c0.dbl(&x.c0)
	z.c1.dbl(&x.c1)
}

func (z *fe2) sub(x, y *fe2) {
	z.c0.sub(&x.c0, &y.c0)
	z.c1.sub(&x.c1, &y.c1)
}

func (z *fe2) neg(x *fe2) {
	z.c0.neg(&x.c0)
	z.c1.neg(&x.c1)
}

// conj sets z = x̄ = c0 − c1·i, which is also x^p (the Fp2 Frobenius).
func (z *fe2) conj(x *fe2) {
	z.c0.set(&x.c0)
	z.c1.neg(&x.c1)
}

// mul is the Karatsuba product: 3 base-field multiplications.
func (z *fe2) mul(x, y *fe2) {
	var t0, t1, t2, t3 fe
	t0.mul(&x.c0, &y.c0)
	t1.mul(&x.c1, &y.c1)
	t2.add(&x.c0, &x.c1)
	t3.add(&y.c0, &y.c1)
	t2.mul(&t2, &t3)
	t2.sub(&t2, &t0)
	z.c1.sub(&t2, &t1) // x0y1 + x1y0
	z.c0.sub(&t0, &t1) // x0y0 − x1y1
}

// sqr is the complex squaring: (c0+c1)(c0−c1) and 2·c0·c1.
func (z *fe2) sqr(x *fe2) {
	var t0, t1, t2 fe
	t0.add(&x.c0, &x.c1)
	t1.sub(&x.c0, &x.c1)
	t2.dbl(&x.c0)
	z.c0.mul(&t0, &t1)
	z.c1.mul(&t2, &x.c1)
}

// mulByFe scales both coordinates by a base-field element.
func (z *fe2) mulByFe(x *fe2, k *fe) {
	z.c0.mul(&x.c0, k)
	z.c1.mul(&x.c1, k)
}

// mulByNonRes multiplies by the sextic non-residue ξ = 1 + i:
// (c0 + c1 i)(1 + i) = (c0 − c1) + (c0 + c1)i.
func (z *fe2) mulByNonRes(x *fe2) {
	var t0 fe
	t0.sub(&x.c0, &x.c1)
	z.c1.add(&x.c0, &x.c1)
	z.c0.set(&t0)
}

// inv sets z = x⁻¹ via the norm: (c0 − c1 i)/(c0² + c1²). Panics on
// zero, matching the base field.
func (z *fe2) inv(x *fe2) {
	var n, t fe
	n.sqr(&x.c0)
	t.sqr(&x.c1)
	n.add(&n, &t)
	n.inv(&n)
	z.c0.mul(&x.c0, &n)
	n.neg(&n)
	z.c1.mul(&x.c1, &n)
}

// exp is plain square-and-multiply; used only for one-time constant
// derivation, never on the pairing hot path.
func (z *fe2) exp(x *fe2, e *big.Int) {
	var acc, base fe2
	base.set(x)
	acc.setOne()
	for i := e.BitLen() - 1; i >= 0; i-- {
		acc.sqr(&acc)
		if e.Bit(i) == 1 {
			acc.mul(&acc, &base)
		}
	}
	z.set(&acc)
}

// isResidue reports whether x is a square in Fp2: x is a square iff
// its norm c0² + c1² is a square in Fp.
func (z *fe2) isResidue() bool {
	var n, t fe
	n.sqr(&z.c0)
	t.sqr(&z.c1)
	n.add(&n, &t)
	return n.isResidue()
}

// sqrt sets z = √x for p ≡ 3 (mod 4) and reports success. Writes z
// only on success; z may alias x.
func (z *fe2) sqrt(x *fe2) bool {
	if x.isZero() {
		z.setZero()
		return true
	}
	// n = √(c0² + c1²) in Fp (the norm of the root's generator),
	// then x = (d + c1·i/(2·x0))² with d = (c0 + n)/2 when d is a
	// residue (flip the sign of n otherwise).
	var n, t, d, x0, x1 fe
	n.sqr(&x.c0)
	t.sqr(&x.c1)
	n.add(&n, &t)
	if !n.sqrt(&n) {
		return false
	}
	d.add(&x.c0, &n)
	d.mul(&d, &ctx.half)
	if !d.isResidue() {
		d.sub(&x.c0, &n)
		d.mul(&d, &ctx.half)
	}
	if !x0.sqrt(&d) {
		return false
	}
	if x0.isZero() {
		// x = −a² for real a: root is purely imaginary, c1 must be 0.
		if !x.c1.isZero() {
			return false
		}
		var m fe
		m.neg(&x.c0)
		if !x1.sqrt(&m) {
			return false
		}
		z.c0.setZero()
		z.c1.set(&x1)
		return true
	}
	t.dbl(&x0)
	t.inv(&t)
	x1.mul(&x.c1, &t)
	// Verify (x0 + x1 i)² == x; guards against non-square inputs.
	var c fe2
	c.c0.set(&x0)
	c.c1.set(&x1)
	var s fe2
	s.sqr(&c)
	if !s.equal(x) {
		return false
	}
	z.set(&c)
	return true
}

// sgn0 is the RFC 9380 sign of an Fp2 element (§4.1, m = 2).
func (z *fe2) sgn0() uint64 {
	s0 := z.c0.sgn0()
	if z.c0.isZero() {
		return z.c1.sgn0()
	}
	return s0
}

func (z *fe2) fromBig(a, b *big.Int) {
	z.c0.fromBig(a)
	z.c1.fromBig(b)
}

func (z *fe2) fromUint64(a, b uint64) {
	z.fromBig(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
}

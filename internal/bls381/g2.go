package bls381

import (
	"errors"
	"math/big"
)

// g2Affine is a point on the sextic M-twist E'(Fp2): y² = x³ + 4(1+i).
// The group G2 is the r-torsion subgroup (index h2 in the twist).
type g2Affine struct {
	x, y fe2
	inf  bool
}

type g2Jac struct {
	x, y, z fe2
}

func g2Infinity() g2Affine { return g2Affine{inf: true} }

func (p *g2Affine) isInfinity() bool { return p.inf }

func (p *g2Affine) equal(q *g2Affine) bool {
	if p.inf || q.inf {
		return p.inf == q.inf
	}
	return p.x.equal(&q.x) && p.y.equal(&q.y)
}

func (p *g2Affine) neg(q *g2Affine) {
	p.x.set(&q.x)
	p.y.neg(&q.y)
	p.inf = q.inf
}

func twistB() fe2 {
	var b fe2
	b.fromUint64(4, 4)
	return b
}

func (p *g2Affine) isOnCurve() bool {
	if p.inf {
		return true
	}
	var lhs, rhs fe2
	lhs.sqr(&p.y)
	rhs.sqr(&p.x)
	rhs.mul(&rhs, &p.x)
	b := twistB()
	rhs.add(&rhs, &b)
	return lhs.equal(&rhs)
}

// psi is the untwist-Frobenius-twist endomorphism; on G2 it acts as
// multiplication by x (the BLS parameter), which gives the fast
// subgroup check below.
func (p *g2Affine) psi(q *g2Affine) {
	if q.inf {
		*p = g2Infinity()
		return
	}
	var x, y fe2
	x.conj(&q.x)
	x.mul(&x, &ctx.psiX)
	y.conj(&q.y)
	y.mul(&y, &ctx.psiY)
	p.x.set(&x)
	p.y.set(&y)
	p.inf = false
}

// inSubgroup uses the ψ criterion: Q ∈ G2 ⇔ ψ(Q) = [x]Q. Since x < 0,
// the right side is −[|x|]Q — a 64-bit ladder instead of a 255-bit one.
// TestPsiSubgroupCheck pins this against the definitional [r]Q = O.
func (p *g2Affine) inSubgroup() bool {
	if p.inf {
		return true
	}
	var want g2Affine
	want.psi(p)
	var j, xq g2Jac
	j.fromAffine(p)
	xq.scalarMult(&j, ctx.xAbs)
	xq.neg(&xq)
	got := xq.toAffine()
	return got.equal(&want)
}

// clearCofactor maps a curve point into G2 by multiplying with the
// twist cofactor h2. Plain and safe; hash-to-curve amortizes it behind
// the scheme's label cache.
func (p *g2Affine) clearCofactor(q *g2Affine) {
	var j g2Jac
	j.fromAffine(q)
	j.scalarMult(&j, ctx.h2)
	*p = j.toAffine()
}

func (j *g2Jac) isInfinity() bool { return j.z.isZero() }

func (j *g2Jac) setInfinity() {
	j.x.setOne()
	j.y.setOne()
	j.z.setZero()
}

func (j *g2Jac) fromAffine(p *g2Affine) {
	if p.inf {
		j.setInfinity()
		return
	}
	j.x.set(&p.x)
	j.y.set(&p.y)
	j.z.setOne()
}

func (j *g2Jac) toAffine() g2Affine {
	if j.isInfinity() {
		return g2Infinity()
	}
	var zi, zi2, zi3 fe2
	zi.inv(&j.z)
	zi2.sqr(&zi)
	zi3.mul(&zi2, &zi)
	var p g2Affine
	p.x.mul(&j.x, &zi2)
	p.y.mul(&j.y, &zi3)
	return p
}

func (j *g2Jac) set(q *g2Jac) { *j = *q }

func (j *g2Jac) neg(q *g2Jac) {
	j.x.set(&q.x)
	j.y.neg(&q.y)
	j.z.set(&q.z)
}

func (j *g2Jac) double(q *g2Jac) {
	if q.isInfinity() {
		j.set(q)
		return
	}
	var a, b, c, d, e, f fe2
	a.sqr(&q.x)
	b.sqr(&q.y)
	c.sqr(&b)
	d.add(&q.x, &b)
	d.sqr(&d)
	d.sub(&d, &a)
	d.sub(&d, &c)
	d.dbl(&d)
	e.dbl(&a)
	e.add(&e, &a)
	f.sqr(&e)

	var x3, y3, z3, t fe2
	x3.sub(&f, &d)
	x3.sub(&x3, &d)
	z3.mul(&q.y, &q.z)
	z3.dbl(&z3)
	y3.sub(&d, &x3)
	y3.mul(&y3, &e)
	t.dbl(&c)
	t.dbl(&t)
	t.dbl(&t)
	y3.sub(&y3, &t)
	j.x.set(&x3)
	j.y.set(&y3)
	j.z.set(&z3)
}

func (j *g2Jac) add(p, q *g2Jac) {
	if p.isInfinity() {
		j.set(q)
		return
	}
	if q.isInfinity() {
		j.set(p)
		return
	}
	var z1z1, z2z2, u1, u2, s1, s2, h, r fe2
	z1z1.sqr(&p.z)
	z2z2.sqr(&q.z)
	u1.mul(&p.x, &z2z2)
	u2.mul(&q.x, &z1z1)
	s1.mul(&p.y, &q.z)
	s1.mul(&s1, &z2z2)
	s2.mul(&q.y, &p.z)
	s2.mul(&s2, &z1z1)
	h.sub(&u2, &u1)
	r.sub(&s2, &s1)
	if h.isZero() {
		if r.isZero() {
			j.double(p)
			return
		}
		j.setInfinity()
		return
	}
	var hh, hhh, v fe2
	hh.sqr(&h)
	hhh.mul(&hh, &h)
	v.mul(&u1, &hh)

	var x3, y3, z3, t fe2
	x3.sqr(&r)
	x3.sub(&x3, &hhh)
	x3.sub(&x3, &v)
	x3.sub(&x3, &v)
	y3.sub(&v, &x3)
	y3.mul(&y3, &r)
	t.mul(&s1, &hhh)
	y3.sub(&y3, &t)
	z3.mul(&p.z, &q.z)
	z3.mul(&z3, &h)
	j.x.set(&x3)
	j.y.set(&y3)
	j.z.set(&z3)
}

func (j *g2Jac) addAffine(p *g2Jac, q *g2Affine) {
	if q.inf {
		j.set(p)
		return
	}
	if p.isInfinity() {
		j.fromAffine(q)
		return
	}
	var z1z1, u2, s2, h, r fe2
	z1z1.sqr(&p.z)
	u2.mul(&q.x, &z1z1)
	s2.mul(&q.y, &p.z)
	s2.mul(&s2, &z1z1)
	h.sub(&u2, &p.x)
	r.sub(&s2, &p.y)
	if h.isZero() {
		if r.isZero() {
			j.double(p)
			return
		}
		j.setInfinity()
		return
	}
	var hh, hhh, v fe2
	hh.sqr(&h)
	hhh.mul(&hh, &h)
	v.mul(&p.x, &hh)

	var x3, y3, z3, t fe2
	x3.sqr(&r)
	x3.sub(&x3, &hhh)
	x3.sub(&x3, &v)
	x3.sub(&x3, &v)
	y3.sub(&v, &x3)
	y3.mul(&y3, &r)
	t.mul(&p.y, &hhh)
	y3.sub(&y3, &t)
	z3.mul(&p.z, &h)
	j.x.set(&x3)
	j.y.set(&y3)
	j.z.set(&z3)
}

func (j *g2Jac) scalarMult(q *g2Jac, k *big.Int) {
	if k.Sign() < 0 {
		panic("bls381: negative scalar")
	}
	if k.Sign() == 0 || q.isInfinity() {
		j.setInfinity()
		return
	}
	var tbl [15]g2Jac
	tbl[0].set(q)
	for i := 1; i < 15; i++ {
		tbl[i].add(&tbl[i-1], q)
	}
	var acc g2Jac
	acc.setInfinity()
	bits := k.BitLen()
	top := (bits + 3) / 4 * 4
	for i := top - 4; i >= 0; i -= 4 {
		if !acc.isInfinity() {
			acc.double(&acc)
			acc.double(&acc)
			acc.double(&acc)
			acc.double(&acc)
		}
		w := k.Bit(i+3)<<3 | k.Bit(i+2)<<2 | k.Bit(i+1)<<1 | k.Bit(i)
		if w != 0 {
			acc.add(&acc, &tbl[w-1])
		}
	}
	j.set(&acc)
}

// --- serialization (zcash compressed format, 96 bytes) ---------------

var errG2Decode = errors.New("bls381: invalid G2 encoding")

const g2ByteLen = 2 * feByteLen

// marshalG2 appends the 96-byte compressed encoding: x.c1 ‖ x.c0
// big-endian with flags in the leading byte.
func marshalG2(dst []byte, p *g2Affine) []byte {
	if p.inf {
		var buf [g2ByteLen]byte
		buf[0] = 0xc0
		return append(dst, buf[:]...)
	}
	start := len(dst)
	dst = p.x.c1.bytes(dst)
	dst = p.x.c0.bytes(dst)
	flags := byte(0x80)
	if fe2IsLexLarger(&p.y) {
		flags |= 0x20
	}
	dst[start] |= flags
	return dst
}

func unmarshalG2(b []byte) (g2Affine, error) {
	if len(b) != g2ByteLen {
		return g2Affine{}, errG2Decode
	}
	flags := b[0] & 0xe0
	if flags&0x80 == 0 {
		return g2Affine{}, errG2Decode
	}
	var raw [g2ByteLen]byte
	copy(raw[:], b)
	raw[0] &^= 0xe0
	if flags&0x40 != 0 {
		if flags&0x20 != 0 {
			return g2Affine{}, errG2Decode
		}
		for _, c := range raw {
			if c != 0 {
				return g2Affine{}, errG2Decode
			}
		}
		return g2Infinity(), nil
	}
	c1, ok := feFromBytes(raw[:feByteLen])
	if !ok {
		return g2Affine{}, errG2Decode
	}
	c0, ok := feFromBytes(raw[feByteLen:])
	if !ok {
		return g2Affine{}, errG2Decode
	}
	x := fe2{c0: c0, c1: c1}
	var rhs fe2
	rhs.sqr(&x)
	rhs.mul(&rhs, &x)
	b2 := twistB()
	rhs.add(&rhs, &b2)
	var y fe2
	if !y.sqrt(&rhs) {
		return g2Affine{}, errG2Decode
	}
	if fe2IsLexLarger(&y) != (flags&0x20 != 0) {
		y.neg(&y)
	}
	return g2Affine{x: x, y: y}, nil
}

// fe2IsLexLarger reports y > −y comparing elements as c1·p + c0.
func fe2IsLexLarger(y *fe2) bool {
	if !y.c1.isZero() {
		return feIsLexLarger(&y.c1)
	}
	return feIsLexLarger(&y.c0)
}

package bls381

// Optimal-ate pairing for BLS12-381: e(P, Q) = f_{|x|,Q}(P)^((p¹²−1)/r)
// (conjugated before the final exponentiation because the BLS parameter
// x is negative — the dropped f^(p⁶+1) factor lies in Fp6 and dies in
// the final exponentiation, as do all the Fp2 line scalings below).
//
// The Miller loop runs on the M-twist: P is mapped to
// P' = (xP·w², yP·w³) ∈ E'(Fp12) so every line through twist points is
// the sparse element A + B·v + C·v·w with A, B, C ∈ Fp2. Line
// coefficients depend only on Q, so a fixed Q yields a reusable
// schedule (g2Prepared) and the per-P work is two Fp2-by-Fp scalings
// per step plus the sparse multiplication.

// lineCoeffs is one Miller-loop step: the line through the running
// point (and Q, on addition steps), with b and c still missing their
// xP / yP factors.
type lineCoeffs struct {
	a, b, c fe2
}

// g2Prepared is the precomputed line schedule of a fixed G2 point: 63
// doubling steps interleaved with 5 addition steps following |x|'s
// bits. Immutable after construction and safe for concurrent use.
type g2Prepared struct {
	lines []lineCoeffs
	inf   bool
}

// prepareG2 computes the line schedule for q.
func prepareG2(q *g2Affine) *g2Prepared {
	initCtx()
	if q.isInfinity() {
		return &g2Prepared{inf: true}
	}
	pp := &g2Prepared{lines: make([]lineCoeffs, 0, 68)}
	var r g2Jac
	r.fromAffine(q)
	for i := ctx.xAbs.BitLen() - 2; i >= 0; i-- {
		pp.lines = append(pp.lines, doubleStep(&r))
		if ctx.xAbs.Bit(i) == 1 {
			pp.lines = append(pp.lines, addStep(&r, q))
		}
	}
	return pp
}

// doubleStep advances r ← 2r and returns the tangent line at the old r,
// scaled by 2YZ³·Z³ ∈ Fp2: A = 3X³ − 2Y², B = −3X²Z² (×xP), C = 2YZ³ (×yP).
func doubleStep(r *g2Jac) lineCoeffs {
	var x2, x3, y2, z2, z3 fe2
	x2.sqr(&r.x)
	x3.mul(&x2, &r.x)
	y2.sqr(&r.y)
	z2.sqr(&r.z)
	z3.mul(&z2, &r.z)

	var l lineCoeffs
	// A = 3X³ − 2Y²
	l.a.dbl(&x3)
	l.a.add(&l.a, &x3)
	var t fe2
	t.dbl(&y2)
	l.a.sub(&l.a, &t)
	// B = −3X²Z²
	l.b.mul(&x2, &z2)
	t.dbl(&l.b)
	l.b.add(&l.b, &t)
	l.b.neg(&l.b)
	// C = 2YZ³
	l.c.mul(&r.y, &z3)
	l.c.dbl(&l.c)

	// r ← 2r (a = 0 Jacobian doubling, sharing the squarings above).
	var bb, cc, d, e, f fe2
	bb.set(&y2)
	cc.sqr(&bb)
	d.add(&r.x, &bb)
	d.sqr(&d)
	d.sub(&d, &x2)
	d.sub(&d, &cc)
	d.dbl(&d)
	e.dbl(&x2)
	e.add(&e, &x2)
	f.sqr(&e)

	var nx, ny, nz fe2
	nx.sub(&f, &d)
	nx.sub(&nx, &d)
	nz.mul(&r.y, &r.z)
	nz.dbl(&nz)
	ny.sub(&d, &nx)
	ny.mul(&ny, &e)
	t.dbl(&cc)
	t.dbl(&t)
	t.dbl(&t)
	ny.sub(&ny, &t)
	r.x.set(&nx)
	r.y.set(&ny)
	r.z.set(&nz)
	return l
}

// addStep advances r ← r + q (mixed addition, q affine) and returns the
// chord line through the old r and q, scaled by Z³ ∈ Fp2:
// A = xQ·Y − yQ·X·Z, B = yQ·Z³ − Y (×xP), C = −(xQ·Z² − X)·Z (×yP).
func addStep(r *g2Jac, q *g2Affine) lineCoeffs {
	var z2, u2, s2, h, rr fe2
	z2.sqr(&r.z)
	u2.mul(&q.x, &z2)
	s2.mul(&q.y, &r.z)
	s2.mul(&s2, &z2)
	h.sub(&u2, &r.x)
	rr.sub(&s2, &r.y)

	var l lineCoeffs
	var t fe2
	l.a.mul(&q.x, &r.y)
	t.mul(&q.y, &r.x)
	t.mul(&t, &r.z)
	l.a.sub(&l.a, &t)
	l.b.set(&rr)
	l.c.mul(&h, &r.z)
	l.c.neg(&l.c)

	// r ← r + q.
	var hh, hhh, v fe2
	hh.sqr(&h)
	hhh.mul(&hh, &h)
	v.mul(&r.x, &hh)

	var nx, ny, nz fe2
	nx.sqr(&rr)
	nx.sub(&nx, &hhh)
	nx.sub(&nx, &v)
	nx.sub(&nx, &v)
	ny.sub(&v, &nx)
	ny.mul(&ny, &rr)
	t.mul(&r.y, &hhh)
	ny.sub(&ny, &t)
	nz.mul(&r.z, &h)
	r.x.set(&nx)
	r.y.set(&ny)
	r.z.set(&nz)
	return l
}

// millerLoop evaluates the product of Miller functions for the given
// pairs, sharing the f² squaring across pairs. Pairs with an infinite
// side contribute 1 and are skipped by the callers.
func millerLoop(ps []*g1Affine, qs []*g2Prepared) fe12 {
	initCtx()
	var f fe12
	f.setOne()
	idx := 0
	started := false
	for i := ctx.xAbs.BitLen() - 2; i >= 0; i-- {
		if started {
			f.sqr(&f)
		}
		for k := range ps {
			applyLine(&f, &qs[k].lines[idx], ps[k])
		}
		started = true
		idx++
		if ctx.xAbs.Bit(i) == 1 {
			for k := range ps {
				applyLine(&f, &qs[k].lines[idx], ps[k])
			}
			idx++
		}
	}
	f.conj(&f) // x < 0
	return f
}

func applyLine(f *fe12, l *lineCoeffs, p *g1Affine) {
	var b, c fe2
	b.mulByFe(&l.b, &p.x)
	c.mulByFe(&l.c, &p.y)
	f.mulBySparse(f, &l.a, &b, &c)
}

// pair computes the reduced pairing e(P, Q) ∈ GT; infinity on either
// side yields the identity.
func pair(p *g1Affine, q *g2Affine) fe12 {
	initCtx()
	var out fe12
	if p.isInfinity() || q.isInfinity() {
		out.setOne()
		return out
	}
	f := millerLoop([]*g1Affine{p}, []*g2Prepared{prepareG2(q)})
	out.finalExp(&f)
	return out
}

// pairPrepared is pair with a precomputed Q schedule.
func pairPrepared(p *g1Affine, q *g2Prepared) fe12 {
	initCtx()
	var out fe12
	if p.isInfinity() || q.inf {
		out.setOne()
		return out
	}
	f := millerLoop([]*g1Affine{p}, []*g2Prepared{q})
	out.finalExp(&f)
	return out
}

// pairProduct computes ∏ e(Pᵢ, Qᵢ) with one shared Miller loop and one
// final exponentiation.
func pairProduct(ps []*g1Affine, qs []*g2Prepared) fe12 {
	initCtx()
	lps := make([]*g1Affine, 0, len(ps))
	lqs := make([]*g2Prepared, 0, len(qs))
	for i := range ps {
		if ps[i].isInfinity() || qs[i].inf {
			continue
		}
		lps = append(lps, ps[i])
		lqs = append(lqs, qs[i])
	}
	var out fe12
	if len(lps) == 0 {
		out.setOne()
		return out
	}
	f := millerLoop(lps, lqs)
	out.finalExp(&f)
	return out
}

// samePairing reports e(a1, b1) == e(a2, b2) via the product
// e(−a1, b1)·e(a2, b2) == 1: one Miller loop, one final exponentiation.
func samePairing(a1 *g1Affine, b1 *g2Prepared, a2 *g1Affine, b2 *g2Prepared) bool {
	var n1 g1Affine
	n1.neg(a1)
	out := pairProduct([]*g1Affine{&n1, a2}, []*g2Prepared{b1, b2})
	return out.isOne()
}

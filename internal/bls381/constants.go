package bls381

import "math/big"

// Generator coordinates from the BLS12-381 specification (the zcash /
// IETF standard generators); pinned on-curve, in-subgroup, and against
// their standard compressed encodings by TestGenerators and the golden
// vectors in testdata/.
const (
	g1xHex = "17f1d3a73197d7942695638c4fa9ac0fc3688c4f9774b905a14e3a3f171bac586c55e83ff97a1aeffb3af00adb22c6bb"
	g1yHex = "08b3f481e3aaa0f1a09e30ed741d8ae4fcf5e095d5d00af600db18cb2c04b3edd03cc744a2888ae40caa232946c5e7e1"

	g2x0Hex = "024aa2b2f08f0a91260805272dc51051c6e47ad4fa403b02b4510b647ae3d1770bac0326a805bbefd48056c8c121bdb8"
	g2x1Hex = "13e02b6052719f607dacd3a088274f65596bd0d09920b61ab5da61bbdc7f5049334cf11213945d57e5ac7d055d042b7e"
	g2y0Hex = "0ce5d527727d6e118cc9cdc6da2e351aadfd9baa8cbdd3a76d429a695160d12c923ac9cc3baca289e193548608b82801"
	g2y1Hex = "0606c4a02ea734cc32acd2b02bc28b99cb3e287e85a763af267492ab572e99ab3f370d275cec1da1aaa9075ff05f79be"
)

func mustBig(hex string) *big.Int {
	n, ok := new(big.Int).SetString(hex, 16)
	if !ok {
		panic("bls381: bad hex constant")
	}
	return n
}

// initTowerConstants derives the Frobenius and ψ-endomorphism
// coefficients from first principles: γ1 = ξ^((p−1)/6) is the sixth
// root that conjugation drags out of w (w^p = γ1·w), and everything
// else is a power or inverse of it. One-time cost, no magic numbers.
func initTowerConstants() {
	var xi fe2
	xi.fromUint64(1, 1)
	e := new(big.Int).Sub(ctx.p, big.NewInt(1))
	e.Div(e, big.NewInt(6))
	ctx.gamma1.exp(&xi, e)
	ctx.gamma2.sqr(&ctx.gamma1)
	ctx.gamma4.sqr(&ctx.gamma2)

	// ψ(x', y') = (x̄'·γ1⁻², ȳ'·γ1⁻³): untwist, apply Frobenius on
	// E(Fp12), twist back.
	var gamma3 fe2
	gamma3.mul(&ctx.gamma2, &ctx.gamma1)
	ctx.psiX.inv(&ctx.gamma2)
	ctx.psiY.inv(&gamma3)
}

func initGenerators() {
	ctx.g1.x.fromBig(mustBig(g1xHex))
	ctx.g1.y.fromBig(mustBig(g1yHex))
	ctx.g2.x.fromBig(mustBig(g2x0Hex), mustBig(g2x1Hex))
	ctx.g2.y.fromBig(mustBig(g2y0Hex), mustBig(g2y1Hex))
}

// initSVDW derives the Shallue–van de Woestijne map constants for
// E'(Fp2): y² = x³ + 4(1+i) with Z = −1 (g(Z) = 3 + 4i ≠ 0 and
// −g(Z)·3Z² is a square, the RFC 9380 §6.6.1 requirements):
//
//	c1 = g(Z)   c2 = −Z/2   c3 = √(−g(Z)·3Z²), sgn0(c3) = 0
//	c4 = −4·g(Z)/(3Z²)
func initSVDW() {
	var z, z2, three, gz, t fe2
	z.fromUint64(1, 0)
	z.neg(&z) // Z = −1
	ctx.svdwZ.set(&z)

	var b fe2
	b.fromUint64(4, 4)
	z2.sqr(&z)
	gz.mul(&z2, &z)
	gz.add(&gz, &b) // g(Z) = Z³ + b
	ctx.svdwC1.set(&gz)

	// c2 = −Z/2 = 1/2
	var half2 fe2
	half2.c0.set(&ctx.half)
	t.neg(&z)
	ctx.svdwC2.mul(&t, &half2)

	three.fromUint64(3, 0)
	var tz2 fe2
	tz2.mul(&three, &z2) // 3Z²
	t.mul(&gz, &tz2)
	t.neg(&t)
	if !ctx.svdwC3.sqrt(&t) {
		panic("bls381: SVDW c3 not a square (bad Z)")
	}
	if ctx.svdwC3.sgn0() != 0 {
		ctx.svdwC3.neg(&ctx.svdwC3)
	}

	var four fe2
	four.fromUint64(4, 0)
	t.mul(&four, &gz)
	t.neg(&t)
	var inv fe2
	inv.inv(&tz2)
	ctx.svdwC4.mul(&t, &inv)
}

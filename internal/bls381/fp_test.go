package bls381

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
)

// --- big.Int reference tower ----------------------------------------
//
// An independent, obviously-correct model of Fp2/Fp6/Fp12 arithmetic
// used to pin the limb-based implementation. Representation: rfe2 is
// [2]*big.Int (c0 + c1·i), rfe6 is [3]rfe2, rfe12 is [2]rfe6, with the
// same tower (i²=−1, v³=ξ=1+i, w²=v).

type rfe2 [2]*big.Int

func rP() *big.Int { initCtx(); return ctx.p }

func r2new() rfe2 { return rfe2{new(big.Int), new(big.Int)} }

func r2add(a, b rfe2) rfe2 {
	p := rP()
	return rfe2{
		new(big.Int).Mod(new(big.Int).Add(a[0], b[0]), p),
		new(big.Int).Mod(new(big.Int).Add(a[1], b[1]), p),
	}
}

func r2sub(a, b rfe2) rfe2 {
	p := rP()
	return rfe2{
		new(big.Int).Mod(new(big.Int).Sub(a[0], b[0]), p),
		new(big.Int).Mod(new(big.Int).Sub(a[1], b[1]), p),
	}
}

func r2mul(a, b rfe2) rfe2 {
	p := rP()
	t0 := new(big.Int).Mul(a[0], b[0])
	t1 := new(big.Int).Mul(a[1], b[1])
	t2 := new(big.Int).Mul(a[0], b[1])
	t3 := new(big.Int).Mul(a[1], b[0])
	return rfe2{
		new(big.Int).Mod(new(big.Int).Sub(t0, t1), p),
		new(big.Int).Mod(new(big.Int).Add(t2, t3), p),
	}
}

func r2neg(a rfe2) rfe2 {
	p := rP()
	return rfe2{
		new(big.Int).Mod(new(big.Int).Neg(a[0]), p),
		new(big.Int).Mod(new(big.Int).Neg(a[1]), p),
	}
}

func r2xi(a rfe2) rfe2 { // multiply by ξ = 1+i
	return r2mul(a, rfe2{big.NewInt(1), big.NewInt(1)})
}

func r2inv(a rfe2) rfe2 {
	p := rP()
	n := new(big.Int).Add(new(big.Int).Mul(a[0], a[0]), new(big.Int).Mul(a[1], a[1]))
	n.Mod(n, p)
	n.ModInverse(n, p)
	return rfe2{
		new(big.Int).Mod(new(big.Int).Mul(a[0], n), p),
		new(big.Int).Mod(new(big.Int).Neg(new(big.Int).Mul(a[1], n)), p),
	}
}

type rfe6 [3]rfe2

func r6add(a, b rfe6) rfe6 { return rfe6{r2add(a[0], b[0]), r2add(a[1], b[1]), r2add(a[2], b[2])} }

func r6mul(a, b rfe6) rfe6 {
	// Schoolbook with v³ = ξ reduction.
	var acc [5]rfe2
	for i := range acc {
		acc[i] = r2new()
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			acc[i+j] = r2add(acc[i+j], r2mul(a[i], b[j]))
		}
	}
	return rfe6{
		r2add(acc[0], r2xi(acc[3])),
		r2add(acc[1], r2xi(acc[4])),
		acc[2],
	}
}

func r6mulV(a rfe6) rfe6 { return rfe6{r2xi(a[2]), a[0], a[1]} }

type rfe12 [2]rfe6

func r12mul(a, b rfe12) rfe12 {
	t0 := r6mul(a[0], b[0])
	t1 := r6mul(a[1], b[1])
	t2 := r6mul(r6add(a[0], a[1]), r6add(b[0], b[1]))
	c1 := rfe6{r2sub(t2[0], r2add(t0[0], t1[0])), r2sub(t2[1], r2add(t0[1], t1[1])), r2sub(t2[2], r2add(t0[2], t1[2]))}
	return rfe12{r6add(t0, r6mulV(t1)), c1}
}

// --- conversions ----------------------------------------------------

func (z *fe2) toRef() rfe2 { return rfe2{z.c0.toBig(), z.c1.toBig()} }
func (z *fe6) toRef() rfe6 { return rfe6{z.b0.toRef(), z.b1.toRef(), z.b2.toRef()} }
func (z *fe12) toRef() rfe12 {
	return rfe12{z.c0.toRef(), z.c1.toRef()}
}

func r2equal(a, b rfe2) bool { return a[0].Cmp(b[0]) == 0 && a[1].Cmp(b[1]) == 0 }
func r6equal(a, b rfe6) bool {
	return r2equal(a[0], b[0]) && r2equal(a[1], b[1]) && r2equal(a[2], b[2])
}
func r12equal(a, b rfe12) bool { return r6equal(a[0], b[0]) && r6equal(a[1], b[1]) }

func randFe(t testing.TB) fe {
	t.Helper()
	initCtx()
	v, err := rand.Int(rand.Reader, ctx.p)
	if err != nil {
		t.Fatal(err)
	}
	var z fe
	z.fromBig(v)
	return z
}

func randFe2(t testing.TB) fe2 { return fe2{randFe(t), randFe(t)} }
func randFe6(t testing.TB) fe6 { return fe6{randFe2(t), randFe2(t), randFe2(t)} }
func randFe12(t testing.TB) fe12 {
	return fe12{randFe6(t), randFe6(t)}
}

// testExp is a generic square-and-multiply on fe12 using only mul/sqr
// (themselves differentially pinned), for cross-checking frobenius and
// the cyclotomic ladders.
func testExp(x *fe12, e *big.Int) fe12 {
	var acc fe12
	acc.setOne()
	for i := e.BitLen() - 1; i >= 0; i-- {
		acc.sqr(&acc)
		if e.Bit(i) == 1 {
			acc.mul(&acc, x)
		}
	}
	return acc
}

// cyclotomic lifts a random element into the cyclotomic subgroup via
// the easy part of the final exponentiation.
func cyclotomic(t testing.TB) fe12 {
	x := randFe12(t)
	var f, u fe12
	u.inv(&x)
	f.conj(&x)
	f.mul(&f, &u)
	u.frobN(&f, 2)
	f.mul(&f, &u)
	return f
}

// --- tests ----------------------------------------------------------

func TestCurveConstants(t *testing.T) {
	initCtx()
	x := new(big.Int).Neg(ctx.xAbs)
	// r = x⁴ − x² + 1
	x2 := new(big.Int).Mul(x, x)
	x4 := new(big.Int).Mul(x2, x2)
	r := new(big.Int).Sub(x4, x2)
	r.Add(r, big.NewInt(1))
	if r.Cmp(ctx.r) != 0 {
		t.Fatal("r != x^4 - x^2 + 1")
	}
	// p = (x−1)²·r/3 + x
	xm1 := new(big.Int).Sub(x, big.NewInt(1))
	p := new(big.Int).Mul(xm1, xm1)
	p.Mul(p, r)
	p.Div(p, big.NewInt(3))
	p.Add(p, x)
	if p.Cmp(ctx.p) != 0 {
		t.Fatal("p != (x-1)^2 (x^4-x^2+1)/3 + x")
	}
	if !ctx.p.ProbablyPrime(32) || !ctx.r.ProbablyPrime(32) {
		t.Fatal("p or r not prime")
	}
	// h1 = (p + 1 − t)/r with t = x+1
	tr := new(big.Int).Add(x, big.NewInt(1))
	n1 := new(big.Int).Add(p, big.NewInt(1))
	n1.Sub(n1, tr)
	h1 := new(big.Int).Div(n1, r)
	if new(big.Int).Mul(h1, r).Cmp(n1) != 0 || h1.Cmp(ctx.h1) != 0 {
		t.Fatal("h1 mismatch")
	}
	// h2·r must equal the twist order p² + 1 − (t² − 2p − 3f)/... is
	// pinned transitively by TestG2GeneratorOrder instead; here check
	// r | h2·r trivially and that h2 has the expected width.
	if ctx.h2.BitLen() != 507 {
		t.Fatalf("h2 bit length = %d", ctx.h2.BitLen())
	}
}

func TestFp2Differential(t *testing.T) {
	for i := 0; i < 200; i++ {
		a, b := randFe2(t), randFe2(t)
		var z fe2
		z.mul(&a, &b)
		if !r2equal(z.toRef(), r2mul(a.toRef(), b.toRef())) {
			t.Fatal("mul mismatch")
		}
		z.sqr(&a)
		if !r2equal(z.toRef(), r2mul(a.toRef(), a.toRef())) {
			t.Fatal("sqr mismatch")
		}
		z.add(&a, &b)
		if !r2equal(z.toRef(), r2add(a.toRef(), b.toRef())) {
			t.Fatal("add mismatch")
		}
		z.sub(&a, &b)
		if !r2equal(z.toRef(), r2sub(a.toRef(), b.toRef())) {
			t.Fatal("sub mismatch")
		}
		z.mulByNonRes(&a)
		if !r2equal(z.toRef(), r2xi(a.toRef())) {
			t.Fatal("mulByNonRes mismatch")
		}
		if !a.isZero() {
			z.inv(&a)
			if !r2equal(z.toRef(), r2inv(a.toRef())) {
				t.Fatal("inv mismatch")
			}
			var w fe2
			w.mul(&z, &a)
			if !w.isOne() {
				t.Fatal("inv not inverse")
			}
		}
	}
}

func TestFp2Sqrt(t *testing.T) {
	for i := 0; i < 50; i++ {
		a := randFe2(t)
		var sq, rt fe2
		sq.sqr(&a)
		if !sq.isResidue() {
			t.Fatal("square not residue")
		}
		if !rt.sqrt(&sq) {
			t.Fatal("sqrt failed on square")
		}
		var chk fe2
		chk.sqr(&rt)
		if !chk.equal(&sq) {
			t.Fatal("sqrt² != input")
		}
	}
	// Non-residue: ξ·a² for random a is a non-square when ξ is (it is:
	// ξ generates the sextic twist).
	var bad fe2
	a := randFe2(t)
	bad.sqr(&a)
	bad.mulByNonRes(&bad)
	var rt fe2
	if !bad.isZero() && rt.sqrt(&bad) {
		t.Fatal("sqrt succeeded on non-residue")
	}
}

func TestFp6Differential(t *testing.T) {
	for i := 0; i < 100; i++ {
		a, b := randFe6(t), randFe6(t)
		var z fe6
		z.mul(&a, &b)
		if !r6equal(z.toRef(), r6mul(a.toRef(), b.toRef())) {
			t.Fatal("fp6 mul mismatch")
		}
		z.sqr(&a)
		if !r6equal(z.toRef(), r6mul(a.toRef(), a.toRef())) {
			t.Fatal("fp6 sqr mismatch")
		}
		z.mulByV(&a)
		if !r6equal(z.toRef(), r6mulV(a.toRef())) {
			t.Fatal("fp6 mulByV mismatch")
		}
		// Sparse products vs dense reference.
		s0, s1 := randFe2(t), randFe2(t)
		z.mulBy01(&a, &s0, &s1)
		dense := rfe6{s0.toRef(), s1.toRef(), r2new()}
		if !r6equal(z.toRef(), r6mul(a.toRef(), dense)) {
			t.Fatal("fp6 mulBy01 mismatch")
		}
		z.mulBy1(&a, &s1)
		dense = rfe6{r2new(), s1.toRef(), r2new()}
		if !r6equal(z.toRef(), r6mul(a.toRef(), dense)) {
			t.Fatal("fp6 mulBy1 mismatch")
		}
		if !a.isZero() {
			z.inv(&a)
			var w fe6
			w.mul(&z, &a)
			var one fe6
			one.setOne()
			if !w.equal(&one) {
				t.Fatal("fp6 inv not inverse")
			}
		}
	}
}

func TestFp12Differential(t *testing.T) {
	for i := 0; i < 50; i++ {
		a, b := randFe12(t), randFe12(t)
		var z fe12
		z.mul(&a, &b)
		if !r12equal(z.toRef(), r12mul(a.toRef(), b.toRef())) {
			t.Fatal("fp12 mul mismatch")
		}
		z.sqr(&a)
		if !r12equal(z.toRef(), r12mul(a.toRef(), a.toRef())) {
			t.Fatal("fp12 sqr mismatch")
		}
		z.inv(&a)
		var w fe12
		w.mul(&z, &a)
		if !w.isOne() {
			t.Fatal("fp12 inv not inverse")
		}
		// Sparse line multiplication vs dense reference.
		la, lb, lc := randFe2(t), randFe2(t), randFe2(t)
		var dense fe12
		dense.c0.b0.set(&la)
		dense.c0.b1.set(&lb)
		dense.c1.b1.set(&lc)
		var viaSparse, viaDense fe12
		viaSparse.mulBySparse(&a, &la, &lb, &lc)
		viaDense.mul(&a, &dense)
		if !viaSparse.equal(&viaDense) {
			t.Fatal("mulBySparse mismatch")
		}
	}
}

func TestFp12Frobenius(t *testing.T) {
	initCtx()
	for i := 0; i < 5; i++ {
		a := randFe12(t)
		var z fe12
		z.frob(&a)
		want := testExp(&a, ctx.p)
		if !z.equal(&want) {
			t.Fatal("frobenius != x^p")
		}
	}
}

func TestCyclotomicSqrMatchesGeneric(t *testing.T) {
	for i := 0; i < 30; i++ {
		u := cyclotomic(t)
		var a, b fe12
		a.cyclotomicSqr(&u)
		b.sqr(&u)
		if !a.equal(&b) {
			t.Fatal("cyclotomic sqr disagrees with generic sqr")
		}
	}
}

func TestUnitaryConjIsInverse(t *testing.T) {
	u := cyclotomic(t)
	var c, w fe12
	c.conj(&u)
	w.mul(&c, &u)
	if !w.isOne() {
		t.Fatal("conj is not the inverse on the cyclotomic subgroup")
	}
}

func TestExpByX(t *testing.T) {
	initCtx()
	u := cyclotomic(t)
	var got fe12
	got.expByX(&u)
	want := testExp(&u, ctx.xAbs)
	want.conj(&want) // x is negative
	if !got.equal(&want) {
		t.Fatal("expByX mismatch")
	}
}

func TestExpUnitary(t *testing.T) {
	initCtx()
	rng := mrand.New(mrand.NewSource(7))
	u := cyclotomic(t)
	for i := 0; i < 10; i++ {
		k := new(big.Int).Rand(rng, ctx.r)
		var got fe12
		got.expUnitary(&u, k)
		want := testExp(&u, k)
		if !got.equal(&want) {
			t.Fatalf("expUnitary mismatch at iteration %d", i)
		}
	}
	var id fe12
	id.expUnitary(&u, big.NewInt(0))
	if !id.isOne() {
		t.Fatal("x^0 != 1")
	}
}

func TestFinalExpInCyclotomicSubgroup(t *testing.T) {
	initCtx()
	x := randFe12(t)
	var f fe12
	f.finalExp(&x)
	// GT elements have order dividing r: f^r == 1.
	got := testExp(&f, ctx.r)
	if !got.isOne() {
		t.Fatal("finalExp output does not have order dividing r")
	}
	if f.isOne() {
		t.Fatal("finalExp degenerate on random input")
	}
}

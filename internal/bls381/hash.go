package bls381

import (
	"crypto/sha256"
	"math/big"
)

// RFC 9380 hash-to-curve for G2. The expand_message_xmd expander and
// the hash_to_field layer follow the RFC exactly (and are pinned by the
// appendix K.1 golden vectors in testdata/). The curve map is the
// Shallue–van de Woestijne map of §6.6.1 rather than the
// 3-isogeny-based SSWU of the ciphersuite registry: SVDW needs no
// isogeny constants, works directly on y² = x³ + 4(1+i), and the RFC
// defines it as a first-class map. The resulting suite is
// BLS12381G2_XMD:SHA-256_SVDW_RO_ — deterministic and uniform, but NOT
// the registered _SSWU_ ciphersuite, so cross-implementation label
// hashes differ by design (docs/BACKENDS.md records this trade-off).

const expandLenInBytes = 256 // count=2 · m=2 · L=64

// expandMessageXMD is expand_message_xmd(msg, dst, len) with SHA-256.
func expandMessageXMD(msg []byte, dst string, outLen int) []byte {
	const bLen = sha256.Size // 32
	const sLen = 64          // SHA-256 block size
	ell := (outLen + bLen - 1) / bLen
	if ell > 255 || len(dst) > 255 {
		panic("bls381: expand_message_xmd parameter overflow")
	}
	dstPrime := append([]byte(dst), byte(len(dst)))

	h := sha256.New()
	var zPad [sLen]byte
	h.Write(zPad[:])
	h.Write(msg)
	h.Write([]byte{byte(outLen >> 8), byte(outLen)})
	h.Write([]byte{0})
	h.Write(dstPrime)
	b0 := h.Sum(nil)

	out := make([]byte, 0, ell*bLen)
	bi := make([]byte, bLen)
	for i := 1; i <= ell; i++ {
		h.Reset()
		if i == 1 {
			h.Write(b0)
		} else {
			x := make([]byte, bLen)
			for j := range x {
				x[j] = b0[j] ^ bi[j]
			}
			h.Write(x)
		}
		h.Write([]byte{byte(i)})
		h.Write(dstPrime)
		bi = h.Sum(nil)
		out = append(out, bi...)
	}
	return out[:outLen]
}

// hashToFieldFp2 is hash_to_field with m = 2, count = 2, L = 64.
func hashToFieldFp2(msg []byte, dst string) (u0, u1 fe2) {
	initCtx()
	uniform := expandMessageXMD(msg, dst, expandLenInBytes)
	const L = 64
	take := func(i int) *big.Int {
		v := new(big.Int).SetBytes(uniform[i*L : (i+1)*L])
		return v.Mod(v, ctx.p)
	}
	u0.c0.fromBig(take(0))
	u0.c1.fromBig(take(1))
	u1.c0.fromBig(take(2))
	u1.c1.fromBig(take(3))
	return u0, u1
}

// svdwMap is the straight-line Shallue–van de Woestijne map of RFC 9380
// §6.6.1 for E'(Fp2) (A = 0, B = 4+4i, Z = −1). Output is on the twist
// but NOT yet in G2; callers clear the cofactor.
func svdwMap(u *fe2) g2Affine {
	initCtx()
	one := fe2{}
	one.setOne()
	b := twistB()

	var tv1, tv2, tv3, tv4 fe2
	tv1.sqr(u)
	tv1.mul(&tv1, &ctx.svdwC1)
	tv2.add(&one, &tv1)
	tv1.sub(&one, &tv1)
	tv3.mul(&tv1, &tv2)
	if tv3.isZero() {
		// inv0: the exceptional case maps through zero.
		tv3.setZero()
	} else {
		tv3.inv(&tv3)
	}
	tv4.mul(u, &tv1)
	tv4.mul(&tv4, &tv3)
	tv4.mul(&tv4, &ctx.svdwC3)

	var x1, gx1 fe2
	x1.sub(&ctx.svdwC2, &tv4)
	gx1.sqr(&x1)
	gx1.mul(&gx1, &x1)
	gx1.add(&gx1, &b)
	e1 := gx1.isResidue()

	var x2, gx2 fe2
	x2.add(&ctx.svdwC2, &tv4)
	gx2.sqr(&x2)
	gx2.mul(&gx2, &x2)
	gx2.add(&gx2, &b)
	e2 := gx2.isResidue() && !e1

	var x3 fe2
	x3.sqr(&tv2)
	x3.mul(&x3, &tv3)
	x3.sqr(&x3)
	x3.mul(&x3, &ctx.svdwC4)
	x3.add(&x3, &ctx.svdwZ)

	var x fe2
	x.set(&x3)
	if e1 {
		x.set(&x1)
	} else if e2 {
		x.set(&x2)
	}
	var gx, y fe2
	gx.sqr(&x)
	gx.mul(&gx, &x)
	gx.add(&gx, &b)
	if !y.sqrt(&gx) {
		panic("bls381: svdw produced a non-square g(x)")
	}
	if u.sgn0() != y.sgn0() {
		y.neg(&y)
	}
	return g2Affine{x: x, y: y}
}

// hashToG2 is the full random-oracle construction: two field elements,
// two curve mappings, one addition, one cofactor clearing.
func hashToG2(msg []byte, dst string) g2Affine {
	u0, u1 := hashToFieldFp2(msg, dst)
	p0 := svdwMap(&u0)
	p1 := svdwMap(&u1)
	var j g2Jac
	j.fromAffine(&p0)
	j.addAffine(&j, &p1)
	sum := j.toAffine()
	var out g2Affine
	out.clearCofactor(&sum)
	return out
}

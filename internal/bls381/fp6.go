package bls381

// fe6 is an element of Fp6 = Fp2[v]/(v³ − ξ), stored b0 + b1·v + b2·v².
type fe6 struct {
	b0, b1, b2 fe2
}

func (z *fe6) set(x *fe6)   { *z = *x }
func (z *fe6) setZero()     { *z = fe6{} }
func (z *fe6) setOne()      { z.b0.setOne(); z.b1.setZero(); z.b2.setZero() }
func (z *fe6) isZero() bool { return z.b0.isZero() && z.b1.isZero() && z.b2.isZero() }
func (z *fe6) equal(x *fe6) bool {
	return z.b0.equal(&x.b0) && z.b1.equal(&x.b1) && z.b2.equal(&x.b2)
}

func (z *fe6) add(x, y *fe6) {
	z.b0.add(&x.b0, &y.b0)
	z.b1.add(&x.b1, &y.b1)
	z.b2.add(&x.b2, &y.b2)
}

func (z *fe6) dbl(x *fe6) {
	z.b0.dbl(&x.b0)
	z.b1.dbl(&x.b1)
	z.b2.dbl(&x.b2)
}

func (z *fe6) sub(x, y *fe6) {
	z.b0.sub(&x.b0, &y.b0)
	z.b1.sub(&x.b1, &y.b1)
	z.b2.sub(&x.b2, &y.b2)
}

func (z *fe6) neg(x *fe6) {
	z.b0.neg(&x.b0)
	z.b1.neg(&x.b1)
	z.b2.neg(&x.b2)
}

// mul is the Karatsuba-style product with 6 Fp2 multiplications
// (Devegili et al. "Multiplication and Squaring on Pairing-Friendly
// Fields" interleaving):
//
//	c0 = a0b0 + ξ[(a1+a2)(b1+b2) − a1b1 − a2b2]
//	c1 = (a0+a1)(b0+b1) − a0b0 − a1b1 + ξ·a2b2
//	c2 = (a0+a2)(b0+b2) − a0b0 − a2b2 + a1b1
func (z *fe6) mul(x, y *fe6) {
	var t0, t1, t2, s0, s1, u fe2
	t0.mul(&x.b0, &y.b0)
	t1.mul(&x.b1, &y.b1)
	t2.mul(&x.b2, &y.b2)

	s0.add(&x.b1, &x.b2)
	s1.add(&y.b1, &y.b2)
	s0.mul(&s0, &s1)
	s0.sub(&s0, &t1)
	s0.sub(&s0, &t2)
	s0.mulByNonRes(&s0)
	// s0 holds the ξ-folded cross term for c0; assemble into u so x/y
	// stay readable until all products are taken.
	u.add(&s0, &t0) // c0

	var c1, c2 fe2
	c1.add(&x.b0, &x.b1)
	s1.add(&y.b0, &y.b1)
	c1.mul(&c1, &s1)
	c1.sub(&c1, &t0)
	c1.sub(&c1, &t1)
	s1.mulByNonRes(&t2)
	c1.add(&c1, &s1)

	c2.add(&x.b0, &x.b2)
	s1.add(&y.b0, &y.b2)
	c2.mul(&c2, &s1)
	c2.sub(&c2, &t0)
	c2.sub(&c2, &t2)
	c2.add(&c2, &t1)

	z.b0.set(&u)
	z.b1.set(&c1)
	z.b2.set(&c2)
}

// sqr is the CH-SQR2 squaring (5 Fp2 squarings/products).
func (z *fe6) sqr(x *fe6) {
	var s0, s1, s2, s3, s4 fe2
	s0.sqr(&x.b0)
	s1.mul(&x.b0, &x.b1)
	s1.dbl(&s1)
	s2.sub(&x.b0, &x.b1)
	s2.add(&s2, &x.b2)
	s2.sqr(&s2)
	s3.mul(&x.b1, &x.b2)
	s3.dbl(&s3)
	s4.sqr(&x.b2)

	var c0, c1, c2 fe2
	c0.mulByNonRes(&s3)
	c0.add(&c0, &s0)
	c1.mulByNonRes(&s4)
	c1.add(&c1, &s1)
	c2.add(&s1, &s2)
	c2.add(&c2, &s3)
	c2.sub(&c2, &s0)
	c2.sub(&c2, &s4)

	z.b0.set(&c0)
	z.b1.set(&c1)
	z.b2.set(&c2)
}

// mulByV multiplies by v: (b0, b1, b2) → (ξ·b2, b0, b1).
func (z *fe6) mulByV(x *fe6) {
	var t fe2
	t.mulByNonRes(&x.b2)
	z.b2.set(&x.b1)
	z.b1.set(&x.b0)
	z.b0.set(&t)
}

// mulBy01 multiplies by the sparse element a + b·v.
func (z *fe6) mulBy01(x *fe6, a, b *fe2) {
	var t0, t1, s, u fe2
	t0.mul(&x.b0, a)
	t1.mul(&x.b1, b)

	// c0 = a·b0 + ξ·b·b2? no: (b0 + b1 v + b2 v²)(a + b v)
	//    = a b0 + (a b1 + b b0) v + (a b2 + b b1) v² + b b2 v³
	//    = (a b0 + ξ b b2) + (a b1 + b b0) v + (a b2 + b b1) v²
	var c0, c1, c2 fe2
	s.mul(&x.b2, b)
	s.mulByNonRes(&s)
	c0.add(&t0, &s)

	// a b1 + b b0 = (a+b)(b0+b1) − a b0 − b b1
	s.add(a, b)
	u.add(&x.b0, &x.b1)
	c1.mul(&s, &u)
	c1.sub(&c1, &t0)
	c1.sub(&c1, &t1)

	s.mul(&x.b2, a)
	c2.add(&s, &t1)

	z.b0.set(&c0)
	z.b1.set(&c1)
	z.b2.set(&c2)
}

// mulBy1 multiplies by the sparse element b·v.
func (z *fe6) mulBy1(x *fe6, b *fe2) {
	var t fe2
	t.mul(&x.b2, b)
	t.mulByNonRes(&t)
	var c1, c2 fe2
	c1.mul(&x.b0, b)
	c2.mul(&x.b1, b)
	z.b0.set(&t)
	z.b1.set(&c1)
	z.b2.set(&c2)
}

// mulByFe2 scales each coefficient by k ∈ Fp2.
func (z *fe6) mulByFe2(x *fe6, k *fe2) {
	z.b0.mul(&x.b0, k)
	z.b1.mul(&x.b1, k)
	z.b2.mul(&x.b2, k)
}

// inv inverts via the norm-like resultant:
//
//	A = b0² − ξ·b1·b2, B = ξ·b2² − b0·b1, C = b1² − b0·b2
//	F = b0·A + ξ(b2·B + b1·C);  x⁻¹ = (A + B v + C v²)/F
func (z *fe6) inv(x *fe6) {
	var a, b, c, t, f fe2
	a.sqr(&x.b0)
	t.mul(&x.b1, &x.b2)
	t.mulByNonRes(&t)
	a.sub(&a, &t)

	b.sqr(&x.b2)
	b.mulByNonRes(&b)
	t.mul(&x.b0, &x.b1)
	b.sub(&b, &t)

	c.sqr(&x.b1)
	t.mul(&x.b0, &x.b2)
	c.sub(&c, &t)

	f.mul(&x.b2, &b)
	t.mul(&x.b1, &c)
	f.add(&f, &t)
	f.mulByNonRes(&f)
	t.mul(&x.b0, &a)
	f.add(&f, &t)
	f.inv(&f)

	z.b0.mul(&a, &f)
	z.b1.mul(&b, &f)
	z.b2.mul(&c, &f)
}

// Package bls381 is a from-scratch implementation of the BLS12-381
// pairing-friendly curve: the base field tower Fp → Fp2 → Fp6 → Fp12,
// the groups G1 (over Fp) and G2 (over Fp2, on the sextic M-twist),
// the optimal-ate Miller loop with the BLS final exponentiation, and
// the RFC 9380 hash-to-curve pipeline used to map time labels into G2.
//
// It is a Type-3 (asymmetric) backend for the timed-release scheme: the
// paper's supersingular Type-1 curves stay available as the reference
// backends, while this curve provides ~128-bit security with pairings
// that are an order of magnitude faster than SS1024.
//
// The field arithmetic runs on the repo's fixed-limb Montgomery
// machinery (internal/ff.Mont, 6×64-bit limbs for the 381-bit prime);
// nothing here depends on third-party crypto libraries. Like the rest
// of the repository this code is NOT constant time (see README threat
// model): exponent ladders branch on bits and reductions branch on
// comparisons.
package bls381

import (
	"math/big"
	"sync"

	"timedrelease/internal/ff"
)

// Curve constants. x is the BLS parameter: p and r are polynomials in
// x, which is why the Miller loop and the final exponentiation both
// walk |x|'s bits. All hex values are pinned by TestCurveConstants
// against their defining polynomial identities.
const (
	// pHex is the 381-bit base field prime p = (x−1)²·(x⁴−x²+1)/3 + x.
	pHex = "1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab"
	// rHex is the 255-bit subgroup order r = x⁴ − x² + 1.
	rHex = "73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001"
	// xAbsHex is |x| for the (negative) BLS parameter x = −2^63 − 2^62 − 2^60 − 2^57 − 2^48 − 2^16.
	xAbsHex = "d201000000010000"
	// h1Hex is the G1 cofactor (p + 1 − t)/r with trace t = x + 1.
	h1Hex = "396c8c005555e1568c00aaab0000aaab"
	// h2Hex is the G2 cofactor: #E'(Fp2)/r for the M-twist.
	h2Hex = "5d543a95414e7f1091d50792876a202cd91de4547085abaa68a205b2e5a7ddfa628f1cb4d9e82ef21537e293a6691ae1616ec6e786f0c70cf1c38e31c7238e5"
)

// feLimbs is the limb count for the 381-bit prime; fe is sized to it so
// elements live inline in structs and on the stack, not behind slices.
const feLimbs = 6

// feByteLen is the big-endian serialized size of one Fp element.
const feByteLen = 48

// fe is one Fp element in Montgomery form (little-endian limbs). The
// zero value is the field's zero. Arithmetic delegates to the shared
// ff.Mont context via z[:] slice views, which stay on the stack.
type fe [feLimbs]uint64

// ctx holds the lazily built package-level arithmetic context: the
// Montgomery machinery plus every derived constant (tower frobenius
// coefficients, SVDW map constants, generators). Building it costs a
// few big.Int exponentiations and happens once per process.
var ctx struct {
	once sync.Once

	p, r, xAbs *big.Int
	h1, h2     *big.Int
	pm2        *big.Int

	fp   *ff.Field
	mnt  *ff.Mont
	half fe // 1/2

	// sqrt exponent (p+1)/4 for p ≡ 3 (mod 4), and (p-1)/2 for the
	// Euler residue test.
	sqrtExp  *big.Int
	eulerExp *big.Int

	// Frobenius: w^p = γ1·w with γ1 = ξ^((p−1)/6), so v^p = γ1²·v and
	// (v²)^p = γ1⁴·v².
	gamma1, gamma2, gamma4 fe2
	// ψ (untwist-Frobenius-twist) coefficients γ1⁻², γ1⁻³.
	psiX, psiY fe2

	// SVDW map-to-curve constants for E'(Fp2) with Z = −1 (svdwZ).
	svdwZ, svdwC1, svdwC2, svdwC3, svdwC4 fe2

	g1 g1Affine
	g2 g2Affine
}

func initCtx() {
	ctx.once.Do(func() {
		fromHex := func(s string) *big.Int {
			n, ok := new(big.Int).SetString(s, 16)
			if !ok {
				panic("bls381: bad constant")
			}
			return n
		}
		ctx.p = fromHex(pHex)
		ctx.r = fromHex(rHex)
		ctx.xAbs = fromHex(xAbsHex)
		ctx.h1 = fromHex(h1Hex)
		ctx.h2 = fromHex(h2Hex)

		fp, err := ff.NewField(ctx.p)
		if err != nil {
			panic("bls381: field: " + err.Error())
		}
		ctx.fp = fp
		ctx.mnt = fp.Mont()
		if ctx.mnt == nil || ctx.mnt.Limbs() != feLimbs {
			panic("bls381: Montgomery backend unavailable for p")
		}

		initFeArith()

		one := big.NewInt(1)
		ctx.pm2 = new(big.Int).Sub(ctx.p, big.NewInt(2))
		ctx.sqrtExp = new(big.Int).Rsh(new(big.Int).Add(ctx.p, one), 2)
		ctx.eulerExp = new(big.Int).Rsh(new(big.Int).Sub(ctx.p, one), 1)

		two := big.NewInt(2)
		halfBig := new(big.Int).ModInverse(two, ctx.p)
		ctx.half.fromBig(halfBig)

		initTowerConstants()
		initGenerators()
		initSVDW()
	})
}

// --- fe helpers -----------------------------------------------------

func (z *fe) set(x *fe)    { *z = *x }
func (z *fe) setZero()     { *z = fe{} }
func (z *fe) setOne()      { ctx.mnt.SetOne(z[:]) }
func (z *fe) isZero() bool { return ctx.mnt.IsZero(z[:]) }
func (z *fe) isOne() bool  { return ctx.mnt.IsOne(z[:]) }
func (z *fe) equal(x *fe) bool {
	return ctx.mnt.Equal(z[:], x[:])
}

func (z *fe) add(x, y *fe) { feAdd(z, x, y) }
func (z *fe) dbl(x *fe)    { feDouble(z, x) }
func (z *fe) sub(x, y *fe) { feSub(z, x, y) }
func (z *fe) neg(x *fe)    { feNeg(z, x) }
func (z *fe) mul(x, y *fe) { feMul(z, x, y) }
func (z *fe) sqr(x *fe)    { feSqr(z, x) }

// exp is square-and-multiply on the fixed-limb routines.
func (z *fe) exp(x *fe, e *big.Int) {
	var base, acc fe
	base.set(x)
	acc.setOne()
	for i := e.BitLen() - 1; i >= 0; i-- {
		feSqr(&acc, &acc)
		if e.Bit(i) == 1 {
			feMul(&acc, &acc, &base)
		}
	}
	z.set(&acc)
}

// inv is the Fermat inverse x^(p−2); panics on zero like ff.Mont.Inv.
func (z *fe) inv(x *fe) {
	if x.isZero() {
		panic("bls381: inverse of zero")
	}
	pm2 := ctx.pm2
	z.exp(x, pm2)
}

// fromBig loads a (not necessarily reduced) big.Int into Montgomery form.
func (z *fe) fromBig(x *big.Int) {
	v := x
	if v.Sign() < 0 || v.Cmp(ctx.p) >= 0 {
		v = new(big.Int).Mod(x, ctx.p)
	}
	ctx.mnt.ToMont(z[:], v)
}

// toBig returns the plain (non-Montgomery) integer value.
func (z *fe) toBig() *big.Int {
	return ctx.mnt.FromMont(nil, z[:])
}

// isResidue reports whether z is a square in Fp (true for zero).
func (z *fe) isResidue() bool {
	if z.isZero() {
		return true
	}
	var t fe
	t.exp(z, ctx.eulerExp)
	return t.isOne()
}

// sqrt sets z = √x for p ≡ 3 (mod 4) and reports success; on failure z
// is unspecified.
func (z *fe) sqrt(x *fe) bool {
	var c, t fe
	c.exp(x, ctx.sqrtExp)
	t.sqr(&c)
	if !t.equal(x) {
		return false
	}
	z.set(&c)
	return true
}

// sgn0 is the RFC 9380 sign of an Fp element: its parity as a plain
// integer.
func (z *fe) sgn0() uint64 {
	var plain big.Int
	ctx.mnt.FromMont(&plain, z[:])
	return uint64(plain.Bit(0))
}

// bytes appends the 48-byte big-endian encoding of z to dst.
func (z *fe) bytes(dst []byte) []byte {
	var plain big.Int
	ctx.mnt.FromMont(&plain, z[:])
	var buf [feByteLen]byte
	plain.FillBytes(buf[:])
	return append(dst, buf[:]...)
}

// feFromBytes parses a canonical 48-byte big-endian Fp element,
// rejecting values ≥ p.
func feFromBytes(b []byte) (fe, bool) {
	var z fe
	if len(b) != feByteLen {
		return z, false
	}
	v := new(big.Int).SetBytes(b)
	if v.Cmp(ctx.p) >= 0 {
		return z, false
	}
	ctx.mnt.ToMont(z[:], v)
	return z, true
}

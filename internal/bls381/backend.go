package bls381

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"timedrelease/internal/backend"
	"timedrelease/internal/curve"
)

// This file adapts the curve implementation to the backend.Backend
// interface. Points travel as curve.Point values whose Ext field holds
// an immutable affine point of the owning group; the big.Int X/Y slots
// stay nil. Unwrapping accepts the untagged identity (curve.Infinity()
// or a zero-value Point), so generic scheme code that starts a sum
// from curve.Infinity keeps working.

// BackendName is the Name() of the BLS12-381 backend.
const BackendName = "bls12381"

// dstPrefix namespaces the RFC 9380 domain-separation tag per H1
// oracle: the final DST is dstPrefix ‖ domain ‖ dstSuffix, with the
// suite identifier at the end per RFC 9380 §3.1 conventions.
const (
	dstPrefix = "TRE-V01-"
	dstSuffix = "_BLS12381G2_XMD:SHA-256_SVDW_RO_"
)

type g1Ext struct{ p g1Affine }

func (e *g1Ext) ExtBackend() string { return BackendName }
func (e *g1Ext) ExtGroup() int      { return 1 }

type g2Ext struct{ p g2Affine }

func (e *g2Ext) ExtBackend() string { return BackendName }
func (e *g2Ext) ExtGroup() int      { return 2 }

func wrapG1(p *g1Affine) curve.Point { return curve.NewExtPoint(&g1Ext{p: *p}, p.inf) }
func wrapG2(p *g2Affine) curve.Point { return curve.NewExtPoint(&g2Ext{p: *p}, p.inf) }

// unwrapG1 extracts the affine G1 point. Untagged points are accepted
// only as the identity; a tagged point of another backend or group is
// a programming error.
func unwrapG1(p curve.Point) g1Affine {
	if p.Ext == nil {
		if p.X == nil {
			return g1Infinity()
		}
		panic("bls381: Type-1 point passed to the bls12381 backend")
	}
	e, ok := p.Ext.(*g1Ext)
	if !ok {
		panic(fmt.Sprintf("bls381: G1 operation on a %s/G%d point", p.Ext.ExtBackend(), p.Ext.ExtGroup()))
	}
	return e.p
}

func unwrapG2(p curve.Point) g2Affine {
	if p.Ext == nil {
		if p.X == nil {
			return g2Infinity()
		}
		panic("bls381: Type-1 point passed to the bls12381 backend")
	}
	e, ok := p.Ext.(*g2Ext)
	if !ok {
		panic(fmt.Sprintf("bls381: G2 operation on a %s/G%d point", p.Ext.ExtBackend(), p.Ext.ExtGroup()))
	}
	return e.p
}

// Backend is the BLS12-381 implementation of backend.Backend.
// The zero value is not usable; call New.
type Backend struct{}

// New returns the BLS12-381 backend, initialising the package-level
// arithmetic context on first use.
func New() *Backend {
	initCtx()
	return &Backend{}
}

// Name identifies the backend.
func (b *Backend) Name() string { return BackendName }

// Asymmetric reports true: G1 ⊂ E(Fp) and G2 ⊂ E'(Fp2) are distinct.
func (b *Backend) Asymmetric() bool { return true }

// Order returns the 255-bit prime r.
func (b *Backend) Order() *big.Int { return ctx.r }

// Generator returns the standard generator of g.
func (b *Backend) Generator(g backend.Group) curve.Point {
	if g == backend.G2 {
		return wrapG2(&ctx.g2)
	}
	return wrapG1(&ctx.g1)
}

// Infinity returns the identity of g.
func (b *Backend) Infinity(g backend.Group) curve.Point {
	if g == backend.G2 {
		inf := g2Infinity()
		return wrapG2(&inf)
	}
	inf := g1Infinity()
	return wrapG1(&inf)
}

// Add returns p+q.
func (b *Backend) Add(g backend.Group, p, q curve.Point) curve.Point {
	if g == backend.G2 {
		pa, qa := unwrapG2(p), unwrapG2(q)
		var jp, jq g2Jac
		jp.fromAffine(&pa)
		jq.fromAffine(&qa)
		jp.add(&jp, &jq)
		out := jp.toAffine()
		return wrapG2(&out)
	}
	pa, qa := unwrapG1(p), unwrapG1(q)
	var jp, jq g1Jac
	jp.fromAffine(&pa)
	jq.fromAffine(&qa)
	jp.add(&jp, &jq)
	out := jp.toAffine()
	return wrapG1(&out)
}

// Neg returns −p.
func (b *Backend) Neg(g backend.Group, p curve.Point) curve.Point {
	if g == backend.G2 {
		pa := unwrapG2(p)
		var n g2Affine
		n.neg(&pa)
		return wrapG2(&n)
	}
	pa := unwrapG1(p)
	var n g1Affine
	n.neg(&pa)
	return wrapG1(&n)
}

// reduceScalar clamps k into [0, r); negative scalars panic to match
// the Type-1 curve's contract.
func reduceScalar(k *big.Int) *big.Int {
	if k.Sign() < 0 {
		panic("bls381: negative scalar")
	}
	if k.Cmp(ctx.r) >= 0 {
		return new(big.Int).Mod(k, ctx.r)
	}
	return k
}

// ScalarMult returns k·p (k reduced mod r).
func (b *Backend) ScalarMult(g backend.Group, k *big.Int, p curve.Point) curve.Point {
	k = reduceScalar(k)
	if g == backend.G2 {
		pa := unwrapG2(p)
		if k.Sign() == 0 || pa.isInfinity() {
			return b.Infinity(g)
		}
		var j g2Jac
		j.fromAffine(&pa)
		j.scalarMult(&j, k)
		out := j.toAffine()
		return wrapG2(&out)
	}
	pa := unwrapG1(p)
	if k.Sign() == 0 || pa.isInfinity() {
		return b.Infinity(g)
	}
	var j g1Jac
	j.fromAffine(&pa)
	j.scalarMult(&j, k)
	out := j.toAffine()
	return wrapG1(&out)
}

// Equal reports point equality.
func (b *Backend) Equal(g backend.Group, p, q curve.Point) bool {
	if g == backend.G2 {
		pa, qa := unwrapG2(p), unwrapG2(q)
		return pa.equal(&qa)
	}
	pa, qa := unwrapG1(p), unwrapG1(q)
	return pa.equal(&qa)
}

// IsOnCurve reports curve (or twist) membership.
func (b *Backend) IsOnCurve(g backend.Group, p curve.Point) bool {
	if g == backend.G2 {
		pa := unwrapG2(p)
		return pa.isOnCurve()
	}
	pa := unwrapG1(p)
	return pa.isOnCurve()
}

// InSubgroup reports r-torsion membership (ψ-based for G2).
func (b *Backend) InSubgroup(g backend.Group, p curve.Point) bool {
	if g == backend.G2 {
		pa := unwrapG2(p)
		return pa.inSubgroup()
	}
	pa := unwrapG1(p)
	return pa.inSubgroup()
}

// HashToG2 runs the RFC 9380 pipeline with a per-domain DST.
func (b *Backend) HashToG2(domain string, msg []byte) curve.Point {
	h := hashToG2(msg, dstPrefix+domain+dstSuffix)
	return wrapG2(&h)
}

// RandScalar samples a uniform scalar in [1, r−1]; a nil rng reads
// crypto/rand.
func (b *Backend) RandScalar(rng io.Reader) (*big.Int, error) {
	if rng == nil {
		rng = rand.Reader
	}
	rm1 := new(big.Int).Sub(ctx.r, big.NewInt(1))
	k, err := rand.Int(rng, rm1)
	if err != nil {
		return nil, err
	}
	return k.Add(k, big.NewInt(1)), nil
}

// PointLen returns the zcash compressed encoding size: 48 (G1) or
// 96 (G2) bytes.
func (b *Backend) PointLen(g backend.Group) int {
	if g == backend.G2 {
		return g2ByteLen
	}
	return feByteLen
}

// AppendPoint appends the zcash compressed encoding.
func (b *Backend) AppendPoint(dst []byte, g backend.Group, p curve.Point) []byte {
	if g == backend.G2 {
		pa := unwrapG2(p)
		return marshalG2(dst, &pa)
	}
	pa := unwrapG1(p)
	return marshalG1(dst, &pa)
}

// ParsePoint decodes a compressed encoding, rejecting non-canonical
// bytes, off-curve x and points outside the r-torsion.
func (b *Backend) ParsePoint(g backend.Group, data []byte) (curve.Point, error) {
	if g == backend.G2 {
		pa, err := unmarshalG2(data)
		if err != nil {
			return curve.Point{}, err
		}
		if !pa.isInfinity() && !pa.inSubgroup() {
			return curve.Point{}, errors.New("bls381: G2 point is not in the prime-order subgroup")
		}
		return wrapG2(&pa), nil
	}
	pa, err := unmarshalG1(data)
	if err != nil {
		return curve.Point{}, err
	}
	if !pa.isInfinity() && !pa.inSubgroup() {
		return curve.Point{}, errors.New("bls381: G1 point is not in the prime-order subgroup")
	}
	return wrapG1(&pa), nil
}

// Pair computes the optimal-ate pairing e(p, q).
func (b *Backend) Pair(p, q curve.Point) backend.GT {
	pa, qa := unwrapG1(p), unwrapG2(q)
	v := pair(&pa, &qa)
	return &gtElem{v: v}
}

// PairProduct computes Π e(Pᵢ, Qᵢ) with one shared Miller loop and
// final exponentiation.
func (b *Backend) PairProduct(pairs []backend.PointPair) backend.GT {
	ps := make([]*g1Affine, len(pairs))
	qs := make([]*g2Prepared, len(pairs))
	for i, f := range pairs {
		pa := unwrapG1(f.P)
		qa := unwrapG2(f.Q)
		ps[i] = &pa
		qs[i] = prepareG2(&qa)
	}
	v := pairProduct(ps, qs)
	return &gtElem{v: v}
}

// SamePairing reports e(a1, b1) == e(a2, b2) via the single product
// e(−a1, b1)·e(a2, b2) == 1.
func (b *Backend) SamePairing(a1, b1, a2, b2 curve.Point) bool {
	p1, p2 := unwrapG1(a1), unwrapG1(a2)
	q1, q2 := unwrapG2(b1), unwrapG2(b2)
	return samePairing(&p1, prepareG2(&q1), &p2, prepareG2(&q2))
}

// PrepareKey stores the G1 key points and precomputes the G2 line
// schedules of the generator and sg2 — the two fixed G2 arguments of
// the user-key well-formedness check, which is the hot prepared path
// on this backend (VerifySig's G2 arguments vary per call and are
// prepared on the fly).
func (b *Backend) PrepareKey(g, sg, sg2 curve.Point) backend.PreparedKey {
	ga, sga := unwrapG1(g), unwrapG1(sg)
	sg2a := unwrapG2(sg2)
	return &blsPrepared{
		g:    ga,
		sg:   sga,
		g2p:  prepareG2(&ctx.g2),
		sg2p: prepareG2(&sg2a),
	}
}

type blsPrepared struct {
	g, sg     g1Affine
	g2p, sg2p *g2Prepared
}

func (pk *blsPrepared) VerifySig(h, sig curve.Point) bool {
	siga := unwrapG2(sig)
	if siga.isInfinity() || !siga.inSubgroup() {
		return false
	}
	return pk.PairCheck(h, sig)
}

func (pk *blsPrepared) PairCheck(h, sig curve.Point) bool {
	ha, siga := unwrapG2(h), unwrapG2(sig)
	return samePairing(&pk.g, prepareG2(&siga), &pk.sg, prepareG2(&ha))
}

func (pk *blsPrepared) SameKey(ag, asg curve.Point) bool {
	// ê(aG, sG2) = ê(asG, G2): holds iff asg = a·sg for the a behind ag.
	aga, asga := unwrapG1(ag), unwrapG1(asg)
	return samePairing(&aga, pk.sg2p, &asga, pk.g2p)
}

func (pk *blsPrepared) VerifyAggregate(hashes []curve.Point, agg curve.Point) bool {
	agga := unwrapG2(agg)
	if len(hashes) == 0 {
		return agga.isInfinity()
	}
	if agga.isInfinity() || !agga.inSubgroup() {
		return false
	}
	var sum g2Jac
	sum.setInfinity()
	for _, h := range hashes {
		ha := unwrapG2(h)
		if ha.isInfinity() {
			continue
		}
		sum.addAffine(&sum, &ha)
	}
	hsum := sum.toAffine()
	return samePairing(&pk.g, prepareG2(&agga), &pk.sg, prepareG2(&hsum))
}

// gtElem wraps an fe12 pairing value as an opaque backend.GT.
type gtElem struct{ v fe12 }

func asGT(x backend.GT) *gtElem {
	e, ok := x.(*gtElem)
	if !ok {
		panic("bls381: foreign GT element")
	}
	return e
}

// GTOne returns 1 ∈ Fp12.
func (b *Backend) GTOne() backend.GT {
	var one fe12
	one.setOne()
	return &gtElem{v: one}
}

// GTEqual reports target-group equality.
func (b *Backend) GTEqual(x, y backend.GT) bool { return asGT(x).v.equal(&asGT(y).v) }

// GTIsOne reports whether x is the identity.
func (b *Backend) GTIsOne(x backend.GT) bool { return asGT(x).v.isOne() }

// GTMul returns x·y.
func (b *Backend) GTMul(x, y backend.GT) backend.GT {
	var out fe12
	out.mul(&asGT(x).v, &asGT(y).v)
	return &gtElem{v: out}
}

// GTExpUnitary runs the signed-window ladder with conjugation as
// inversion; pairing outputs are unitary, which is the precondition.
func (b *Backend) GTExpUnitary(x backend.GT, k *big.Int) backend.GT {
	k = reduceScalar(k)
	var out fe12
	out.expUnitary(&asGT(x).v, k)
	return &gtElem{v: out}
}

// GTBytes returns the canonical 576-byte encoding: the twelve Fp
// coefficients in tower order (c0.b0.c0 first, c1.b2.c1 last), each
// 48 bytes big-endian.
func (b *Backend) GTBytes(x backend.GT) []byte {
	v := &asGT(x).v
	out := make([]byte, 0, 12*feByteLen)
	for _, c6 := range []*fe6{&v.c0, &v.c1} {
		for _, c2 := range []*fe2{&c6.b0, &c6.b1, &c6.b2} {
			out = c2.c0.bytes(out)
			out = c2.c1.bytes(out)
		}
	}
	return out
}

// fixedWindow is the wNAF width of the fixed-base tables: 128 odd
// multiples per table, one add per 8 doublings on average.
const fixedWindow = 8

// g1Table / g2Table store the odd multiples (2i+1)·P in affine form so
// the ladder uses mixed addition. Built once, immutable afterwards.
type g1Table struct {
	base curve.Point
	odd  []g1Affine
}

func (t *g1Table) Base() curve.Point { return t.base }
func (t *g1Table) IsInfinity() bool  { return len(t.odd) == 0 }

type g2Table struct {
	base curve.Point
	odd  []g2Affine
}

func (t *g2Table) Base() curve.Point { return t.base }
func (t *g2Table) IsInfinity() bool  { return len(t.odd) == 0 }

// PrecomputeBase builds the width-8 wNAF odd-multiples table for p.
func (b *Backend) PrecomputeBase(g backend.Group, p curve.Point) backend.BaseTable {
	n := 1 << (fixedWindow - 2) // odd multiples 1·P … (2n−1)·P
	if g == backend.G2 {
		pa := unwrapG2(p)
		t := &g2Table{base: p}
		if pa.isInfinity() {
			return t
		}
		var twoP g2Jac
		twoP.fromAffine(&pa)
		twoP.double(&twoP)
		t.odd = make([]g2Affine, n)
		t.odd[0] = pa
		var acc g2Jac
		acc.fromAffine(&pa)
		for i := 1; i < n; i++ {
			acc.add(&acc, &twoP)
			t.odd[i] = acc.toAffine()
		}
		return t
	}
	pa := unwrapG1(p)
	t := &g1Table{base: p}
	if pa.isInfinity() {
		return t
	}
	var twoP g1Jac
	twoP.fromAffine(&pa)
	twoP.double(&twoP)
	t.odd = make([]g1Affine, n)
	t.odd[0] = pa
	var acc g1Jac
	acc.fromAffine(&pa)
	for i := 1; i < n; i++ {
		acc.add(&acc, &twoP)
		t.odd[i] = acc.toAffine()
	}
	return t
}

// ScalarMultBase runs the signed-window ladder over a fixed-base
// table.
func (b *Backend) ScalarMultBase(t backend.BaseTable, k *big.Int) curve.Point {
	k = reduceScalar(k)
	switch tb := t.(type) {
	case *g1Table:
		if tb.IsInfinity() || k.Sign() == 0 {
			return b.Infinity(backend.G1)
		}
		digits := wnafDigits(k, fixedWindow)
		var acc g1Jac
		acc.setInfinity()
		for i := len(digits) - 1; i >= 0; i-- {
			acc.double(&acc)
			if d := digits[i]; d > 0 {
				acc.addAffine(&acc, &tb.odd[(d-1)/2])
			} else if d < 0 {
				var neg g1Affine
				neg.neg(&tb.odd[(-d-1)/2])
				acc.addAffine(&acc, &neg)
			}
		}
		out := acc.toAffine()
		return wrapG1(&out)
	case *g2Table:
		if tb.IsInfinity() || k.Sign() == 0 {
			return b.Infinity(backend.G2)
		}
		digits := wnafDigits(k, fixedWindow)
		var acc g2Jac
		acc.setInfinity()
		for i := len(digits) - 1; i >= 0; i-- {
			acc.double(&acc)
			if d := digits[i]; d > 0 {
				acc.addAffine(&acc, &tb.odd[(d-1)/2])
			} else if d < 0 {
				var neg g2Affine
				neg.neg(&tb.odd[(-d-1)/2])
				acc.addAffine(&acc, &neg)
			}
		}
		out := acc.toAffine()
		return wrapG2(&out)
	default:
		panic("bls381: foreign base table")
	}
}

// FieldPrime returns the 381-bit base-field prime p.
func (b *Backend) FieldPrime() *big.Int { return ctx.p }

// CofactorG1 returns the G1 cofactor h1 = (x−1)²/3.
func (b *Backend) CofactorG1() *big.Int { return ctx.h1 }

package bls381

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"math/big"
	"testing"
)

func randScalarT(t testing.TB) *big.Int {
	t.Helper()
	initCtx()
	k, err := rand.Int(rand.Reader, ctx.r)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// randG1 returns a uniformly random point of G1 (a scalar multiple of
// the generator).
func randG1(t testing.TB) g1Affine {
	var j g1Jac
	j.fromAffine(&ctx.g1)
	j.scalarMult(&j, randScalarT(t))
	return j.toAffine()
}

func randG2(t testing.TB) g2Affine {
	var j g2Jac
	j.fromAffine(&ctx.g2)
	j.scalarMult(&j, randScalarT(t))
	return j.toAffine()
}

func TestGenerators(t *testing.T) {
	initCtx()
	if !ctx.g1.isOnCurve() {
		t.Fatal("G1 generator not on curve")
	}
	if !ctx.g2.isOnCurve() {
		t.Fatal("G2 generator not on twist")
	}
	if !ctx.g1.inSubgroup() {
		t.Fatal("G1 generator not in subgroup")
	}
	if !ctx.g2.inSubgroup() {
		t.Fatal("G2 generator not in subgroup")
	}
	// Order exactly r: [r]G = O already covered by inSubgroup; also
	// require [1]G ≠ O trivially.
	var j g1Jac
	j.fromAffine(&ctx.g1)
	j.scalarMult(&j, ctx.r)
	if !j.isInfinity() {
		t.Fatal("[r]G1 != O")
	}
	var k g2Jac
	k.fromAffine(&ctx.g2)
	k.scalarMult(&k, ctx.r)
	if !k.isInfinity() {
		t.Fatal("[r]G2 != O")
	}
}

func TestG1GroupLaw(t *testing.T) {
	a, b := randG1(t), randG1(t)
	var ja, jb, jab, jba g1Jac
	ja.fromAffine(&a)
	jb.fromAffine(&b)
	jab.add(&ja, &jb)
	jba.add(&jb, &ja)
	p1, p2 := jab.toAffine(), jba.toAffine()
	if !p1.equal(&p2) {
		t.Fatal("G1 addition not commutative")
	}
	if !p1.isOnCurve() {
		t.Fatal("G1 sum off curve")
	}
	// Mixed addition agrees with general addition.
	var jm g1Jac
	jm.addAffine(&ja, &b)
	pm := jm.toAffine()
	if !pm.equal(&p1) {
		t.Fatal("G1 mixed add disagrees")
	}
	// (a + a) via add() falls back to double().
	var jd, js g1Jac
	jd.double(&ja)
	js.add(&ja, &ja)
	d1, d2 := jd.toAffine(), js.toAffine()
	if !d1.equal(&d2) {
		t.Fatal("G1 add(a,a) != double(a)")
	}
	// a + (−a) = O.
	var na g1Affine
	na.neg(&a)
	var jn g1Jac
	jn.addAffine(&ja, &na)
	if !jn.isInfinity() {
		t.Fatal("a + (−a) != O")
	}
	// Scalar distributivity: [k1+k2]P = [k1]P + [k2]P.
	k1, k2 := randScalarT(t), randScalarT(t)
	sum := new(big.Int).Add(k1, k2)
	var l, r1, r2, r3 g1Jac
	l.fromAffine(&a)
	l.scalarMult(&l, sum)
	r1.fromAffine(&a)
	r1.scalarMult(&r1, k1)
	r2.fromAffine(&a)
	r2.scalarMult(&r2, k2)
	r3.add(&r1, &r2)
	lp, rp := l.toAffine(), r3.toAffine()
	if !lp.equal(&rp) {
		t.Fatal("G1 scalar mult not distributive")
	}
}

func TestG2GroupLaw(t *testing.T) {
	a, b := randG2(t), randG2(t)
	var ja, jb, jab g2Jac
	ja.fromAffine(&a)
	jb.fromAffine(&b)
	jab.add(&ja, &jb)
	p1 := jab.toAffine()
	if !p1.isOnCurve() {
		t.Fatal("G2 sum off twist")
	}
	var jm g2Jac
	jm.addAffine(&ja, &b)
	pm := jm.toAffine()
	if !pm.equal(&p1) {
		t.Fatal("G2 mixed add disagrees")
	}
	k1, k2 := randScalarT(t), randScalarT(t)
	sum := new(big.Int).Add(k1, k2)
	var l, r1, r2, r3 g2Jac
	l.fromAffine(&a)
	l.scalarMult(&l, sum)
	r1.fromAffine(&a)
	r1.scalarMult(&r1, k1)
	r2.fromAffine(&a)
	r2.scalarMult(&r2, k2)
	r3.add(&r1, &r2)
	lp, rp := l.toAffine(), r3.toAffine()
	if !lp.equal(&rp) {
		t.Fatal("G2 scalar mult not distributive")
	}
}

func TestPsiSubgroupCheck(t *testing.T) {
	// ψ-based check accepts genuine subgroup points…
	for i := 0; i < 5; i++ {
		q := randG2(t)
		if !q.inSubgroup() {
			t.Fatal("subgroup point rejected by psi check")
		}
	}
	// …and rejects twist points outside G2. Build one by hashing to the
	// curve WITHOUT clearing the cofactor: with overwhelming probability
	// its order does not divide r.
	var u fe2
	u.fromUint64(7, 11)
	p := svdwMap(&u)
	if !p.isOnCurve() {
		t.Fatal("svdw output off curve")
	}
	var j g2Jac
	j.fromAffine(&p)
	j.scalarMult(&j, ctx.r)
	if j.isInfinity() {
		t.Skip("unlucky: uncleared point already in subgroup")
	}
	if p.inSubgroup() {
		t.Fatal("psi check accepted a non-subgroup twist point")
	}
}

func TestG1Serialization(t *testing.T) {
	for i := 0; i < 10; i++ {
		p := randG1(t)
		enc := marshalG1(nil, &p)
		if len(enc) != 48 {
			t.Fatalf("len = %d", len(enc))
		}
		got, err := unmarshalG1(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !got.equal(&p) {
			t.Fatal("G1 round trip mismatch")
		}
	}
	// Infinity.
	inf := g1Infinity()
	enc := marshalG1(nil, &inf)
	if enc[0] != 0xc0 {
		t.Fatalf("infinity flag byte %#x", enc[0])
	}
	got, err := unmarshalG1(enc)
	if err != nil || !got.isInfinity() {
		t.Fatal("G1 infinity round trip failed")
	}
	// Non-canonical encodings must be rejected.
	bad := make([]byte, 48)
	copy(bad, enc)
	bad[47] = 1 // infinity with nonzero payload
	if _, err := unmarshalG1(bad); err == nil {
		t.Fatal("accepted non-canonical infinity")
	}
	p := randG1(t)
	enc = marshalG1(nil, &p)
	enc[0] &^= 0x80 // clear compression bit
	if _, err := unmarshalG1(enc); err == nil {
		t.Fatal("accepted uncompressed-flagged point")
	}
}

func TestG2Serialization(t *testing.T) {
	for i := 0; i < 10; i++ {
		p := randG2(t)
		enc := marshalG2(nil, &p)
		if len(enc) != 96 {
			t.Fatalf("len = %d", len(enc))
		}
		got, err := unmarshalG2(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !got.equal(&p) {
			t.Fatal("G2 round trip mismatch")
		}
	}
	inf := g2Infinity()
	enc := marshalG2(nil, &inf)
	got, err := unmarshalG2(enc)
	if err != nil || !got.isInfinity() {
		t.Fatal("G2 infinity round trip failed")
	}
	// x ≥ p must be rejected.
	p := randG2(t)
	enc = marshalG2(nil, &p)
	enc[0] = 0x9f // compression flag + maximal masked top bits
	for i := 1; i < 48; i++ {
		enc[i] = 0xff
	}
	if _, err := unmarshalG2(enc); err == nil {
		t.Fatal("accepted x.c1 >= p")
	}
}

// TestGeneratorGoldenEncodings pins the serialization format against
// the standard compressed encodings of the BLS12-381 generators used
// by every interoperable implementation (zcash format).
func TestGeneratorGoldenEncodings(t *testing.T) {
	initCtx()
	g1Want := "97f1d3a73197d7942695638c4fa9ac0fc3688c4f9774b905a14e3a3f171bac586c55e83ff97a1aeffb3af00adb22c6bb"
	enc := marshalG1(nil, &ctx.g1)
	if hex.EncodeToString(enc) != g1Want {
		t.Fatalf("G1 generator encoding mismatch:\n got %x\nwant %s", enc, g1Want)
	}
	g2Want := "93e02b6052719f607dacd3a088274f65596bd0d09920b61ab5da61bbdc7f5049334cf11213945d57e5ac7d055d042b7e" +
		"024aa2b2f08f0a91260805272dc51051c6e47ad4fa403b02b4510b647ae3d1770bac0326a805bbefd48056c8c121bdb8"
	enc2 := marshalG2(nil, &ctx.g2)
	if hex.EncodeToString(enc2) != g2Want {
		t.Fatalf("G2 generator encoding mismatch:\n got %x\nwant %s", enc2, g2Want)
	}
	// Negated generators flip only the sign bit.
	var n1 g1Affine
	n1.neg(&ctx.g1)
	encN := marshalG1(nil, &n1)
	if encN[0] != enc[0]^0x20 || !bytes.Equal(encN[1:], enc[1:]) {
		t.Fatal("negated G1 generator does not differ only in the sign bit")
	}
}

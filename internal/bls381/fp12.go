package bls381

import "math/big"

// fe12 is an element of Fp12 = Fp6[w]/(w² − v), stored c0 + c1·w.
// Pairing values (GT elements) are unitary fe12s: after the final
// exponentiation f^(p⁶−1) holds, so f⁻¹ = f̄ (the w-conjugate) and the
// cheap cyclotomic squaring applies.
type fe12 struct {
	c0, c1 fe6
}

func (z *fe12) set(x *fe12) { *z = *x }
func (z *fe12) setOne()     { z.c0.setOne(); z.c1.setZero() }
func (z *fe12) isOne() bool {
	return z.c0.b0.isOne() && z.c0.b1.isZero() && z.c0.b2.isZero() && z.c1.isZero()
}
func (z *fe12) isZero() bool { return z.c0.isZero() && z.c1.isZero() }
func (z *fe12) equal(x *fe12) bool {
	return z.c0.equal(&x.c0) && z.c1.equal(&x.c1)
}

// conj sets z = c0 − c1·w, which equals x^(p⁶) and hence x⁻¹ for
// unitary x.
func (z *fe12) conj(x *fe12) {
	z.c0.set(&x.c0)
	z.c1.neg(&x.c1)
}

// mul is the Karatsuba product: 3 Fp6 multiplications.
func (z *fe12) mul(x, y *fe12) {
	var t0, t1, t2, s fe6
	t0.mul(&x.c0, &y.c0)
	t1.mul(&x.c1, &y.c1)
	t2.add(&x.c0, &x.c1)
	s.add(&y.c0, &y.c1)
	t2.mul(&t2, &s)
	t2.sub(&t2, &t0)
	t2.sub(&t2, &t1)
	t1.mulByV(&t1)
	z.c0.add(&t0, &t1)
	z.c1.set(&t2)
}

// sqr is the complex squaring: c0' = (c0+c1)(c0+v·c1) − t − v·t,
// c1' = 2t with t = c0·c1 (2 Fp6 multiplications).
func (z *fe12) sqr(x *fe12) {
	var t, u, s fe6
	t.mul(&x.c0, &x.c1)
	u.add(&x.c0, &x.c1)
	s.mulByV(&x.c1)
	s.add(&s, &x.c0)
	u.mul(&u, &s)
	u.sub(&u, &t)
	s.mulByV(&t)
	u.sub(&u, &s)
	z.c0.set(&u)
	z.c1.dbl(&t)
}

// inv inverts via the norm to Fp6: (c0 + c1 w)⁻¹ = (c0 − c1 w)/(c0² − v·c1²).
func (z *fe12) inv(x *fe12) {
	var n, t fe6
	n.sqr(&x.c0)
	t.sqr(&x.c1)
	t.mulByV(&t)
	n.sub(&n, &t)
	n.inv(&n)
	z.c0.mul(&x.c0, &n)
	n.neg(&n)
	z.c1.mul(&x.c1, &n)
}

// mulBySparse multiplies by a Miller-loop line value ℓ = A + B·v + C·v·w,
// i.e. ℓ0 = A + Bv (Fp6 coefficients (A,B,0)) and ℓ1 = Cv ((0,C,0)).
// Karatsuba over the w arm: 2 sparse-01 products and 1 sparse-1 product.
func (z *fe12) mulBySparse(x *fe12, a, b, c *fe2) {
	var t0, t1, t2, s fe6
	t0.mulBy01(&x.c0, a, b)
	t1.mulBy1(&x.c1, c)
	s.add(&x.c0, &x.c1)
	var bc fe2
	bc.add(b, c)
	t2.mulBy01(&s, a, &bc)
	t2.sub(&t2, &t0)
	t2.sub(&t2, &t1)
	t1.mulByV(&t1)
	z.c0.add(&t0, &t1)
	z.c1.set(&t2)
}

// frob sets z = x^p. The Fp2 coefficients conjugate; the basis elements
// pick up the precomputed sixth-root-of-ξ powers: v^p = γ2·v,
// (v²)^p = γ3·v², w^p = γ1·w.
func (z *fe12) frob(x *fe12) {
	var a, b fe6
	a.b0.conj(&x.c0.b0)
	a.b1.conj(&x.c0.b1)
	a.b1.mul(&a.b1, &ctx.gamma2)
	a.b2.conj(&x.c0.b2)
	a.b2.mul(&a.b2, &ctx.gamma4)

	b.b0.conj(&x.c1.b0)
	b.b1.conj(&x.c1.b1)
	b.b1.mul(&b.b1, &ctx.gamma2)
	b.b2.conj(&x.c1.b2)
	b.b2.mul(&b.b2, &ctx.gamma4)
	b.mulByFe2(&b, &ctx.gamma1)

	z.c0.set(&a)
	z.c1.set(&b)
}

// frobN applies frob n times; n is tiny (≤ 3) so repeated application
// beats carrying extra precomputed coefficient tables.
func (z *fe12) frobN(x *fe12, n int) {
	z.set(x)
	for i := 0; i < n; i++ {
		z.frob(z)
	}
}

// cyclotomicSqr is the Granger–Scott squaring for elements of the
// cyclotomic subgroup (valid after the easy part of the final
// exponentiation). It is ~3x cheaper than the generic sqr and is pinned
// against it by TestCyclotomicSqrMatchesGeneric and FuzzFp12Arith.
//
// Coefficient naming: x = (x0 + x1 v + x2 v²) + (x3 + x4 v + x5 v²)w.
func (z *fe12) cyclotomicSqr(x *fe12) {
	var t0, t1, t2, t3, t4, t5, t6, t7, t8 fe2

	t0.sqr(&x.c1.b1) // x4²
	t1.sqr(&x.c0.b0) // x0²
	t6.add(&x.c1.b1, &x.c0.b0)
	t6.sqr(&t6)
	t6.sub(&t6, &t0)
	t6.sub(&t6, &t1) // 2·x4·x0

	t2.sqr(&x.c0.b2) // x2²
	t3.sqr(&x.c1.b0) // x3²
	t7.add(&x.c0.b2, &x.c1.b0)
	t7.sqr(&t7)
	t7.sub(&t7, &t2)
	t7.sub(&t7, &t3) // 2·x2·x3

	t4.sqr(&x.c1.b2) // x5²
	t5.sqr(&x.c0.b1) // x1²
	t8.add(&x.c1.b2, &x.c0.b1)
	t8.sqr(&t8)
	t8.sub(&t8, &t4)
	t8.sub(&t8, &t5)
	t8.mulByNonRes(&t8) // 2·x5·x1·ξ

	t0.mulByNonRes(&t0)
	t0.add(&t0, &t1) // ξ·x4² + x0²
	t2.mulByNonRes(&t2)
	t2.add(&t2, &t3) // ξ·x2² + x3²
	t4.mulByNonRes(&t4)
	t4.add(&t4, &t5) // ξ·x5² + x1²

	var r fe12
	r.c0.b0.sub(&t0, &x.c0.b0)
	r.c0.b0.dbl(&r.c0.b0)
	r.c0.b0.add(&r.c0.b0, &t0)

	r.c0.b1.sub(&t2, &x.c0.b1)
	r.c0.b1.dbl(&r.c0.b1)
	r.c0.b1.add(&r.c0.b1, &t2)

	r.c0.b2.sub(&t4, &x.c0.b2)
	r.c0.b2.dbl(&r.c0.b2)
	r.c0.b2.add(&r.c0.b2, &t4)

	r.c1.b0.add(&t8, &x.c1.b0)
	r.c1.b0.dbl(&r.c1.b0)
	r.c1.b0.add(&r.c1.b0, &t8)

	r.c1.b1.add(&t6, &x.c1.b1)
	r.c1.b1.dbl(&r.c1.b1)
	r.c1.b1.add(&r.c1.b1, &t6)

	r.c1.b2.add(&t7, &x.c1.b2)
	r.c1.b2.dbl(&r.c1.b2)
	r.c1.b2.add(&r.c1.b2, &t7)

	z.set(&r)
}

// expByX sets z = x^u where u = BLS parameter x (negative): square-and-
// multiply over |x|'s 64 bits with cyclotomic squarings, then conjugate.
// x must be in the cyclotomic subgroup.
func (z *fe12) expByX(x *fe12) {
	var acc fe12
	acc.set(x)
	for i := ctx.xAbs.BitLen() - 2; i >= 0; i-- {
		acc.cyclotomicSqr(&acc)
		if ctx.xAbs.Bit(i) == 1 {
			acc.mul(&acc, x)
		}
	}
	z.conj(&acc)
}

// expUnitary sets z = x^k for unitary x and 0 ≤ k, using a signed
// 4-bit window (conjugation gives free inverses) over cyclotomic
// squarings. This is the GT exponentiation behind Encryptor.
func (z *fe12) expUnitary(x *fe12, k *big.Int) {
	if k.Sign() == 0 {
		z.setOne()
		return
	}
	neg := k.Sign() < 0
	e := k
	if neg {
		e = new(big.Int).Neg(k)
	}
	// Odd powers x^1, x^3, …, x^15.
	var odd [8]fe12
	odd[0].set(x)
	var x2 fe12
	x2.cyclotomicSqr(x)
	for i := 1; i < 8; i++ {
		odd[i].mul(&odd[i-1], &x2)
	}
	digits := wnafDigits(e, 5)
	var acc fe12
	acc.setOne()
	started := false
	for i := len(digits) - 1; i >= 0; i-- {
		if started {
			acc.cyclotomicSqr(&acc)
		}
		d := digits[i]
		if d == 0 {
			continue
		}
		idx := d
		if idx < 0 {
			idx = -idx
		}
		var t fe12
		t.set(&odd[(idx-1)/2])
		if d < 0 {
			t.conj(&t)
		}
		if !started {
			acc.set(&t)
			started = true
		} else {
			acc.mul(&acc, &t)
		}
	}
	if neg {
		acc.conj(&acc)
	}
	z.set(&acc)
}

// wnafDigits returns the width-w NAF of e (least significant first):
// odd digits in (−2^(w−1), 2^(w−1)), at most one nonzero per w window.
func wnafDigits(e *big.Int, w uint) []int {
	n := new(big.Int).Set(e)
	mod := int64(1) << w
	half := mod >> 1
	var digits []int
	tmp := new(big.Int)
	for n.Sign() > 0 {
		if n.Bit(0) == 1 {
			d := int64(0)
			tmp.And(n, big.NewInt(mod-1))
			d = tmp.Int64()
			if d >= half {
				d -= mod
			}
			digits = append(digits, int(d))
			tmp.SetInt64(d)
			n.Sub(n, tmp)
		} else {
			digits = append(digits, 0)
		}
		n.Rsh(n, 1)
	}
	return digits
}

// finalExp maps a Miller-loop output to the pairing group GT:
// f^((p¹²−1)/r). Easy part f^((p⁶−1)(p²+1)) (one inversion, one
// Frobenius-squared), then the hard part via the verified base-p
// decomposition 3(p⁴−p²+1)/r = λ0 + λ1 p + λ2 p² + λ3 p³ with
// λ3 = (x−1)², λ2 = λ3·x, λ1 = λ2·x − λ3, λ0 = λ1·x + 3 — computing a
// fixed cube of the reduced pairing, which is its own valid pairing
// (bilinear, non-degenerate since 3 ∤ r).
func (z *fe12) finalExp(x *fe12) {
	// Easy part.
	var f, t fe12
	t.inv(x)
	f.conj(x)
	f.mul(&f, &t) // f^(p⁶−1)
	t.frobN(&f, 2)
	f.mul(&f, &t) // …^(p²+1); f is now cyclotomic

	// Hard part (Ghammam–Fouotsa style chain on the λ decomposition).
	var t1, t2, b, c, d fe12
	t1.expByX(&f)
	t.conj(&f)
	t1.mul(&t1, &t) // f^(x−1)
	t2.expByX(&t1)
	t.conj(&t1)
	t2.mul(&t2, &t) // f^((x−1)²) = f^λ3
	b.expByX(&t2)   // f^λ2
	c.expByX(&b)
	t.conj(&t2)
	c.mul(&c, &t) // f^λ1
	d.expByX(&c)
	var f3 fe12
	f3.sqr(&f)
	f3.mul(&f3, &f)
	d.mul(&d, &f3) // f^λ0

	var acc fe12
	acc.frobN(&c, 1)
	acc.mul(&acc, &d)
	t.frobN(&b, 2)
	acc.mul(&acc, &t)
	t.frobN(&t2, 3)
	acc.mul(&acc, &t)
	z.set(&acc)
}

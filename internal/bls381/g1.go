package bls381

import (
	"errors"
	"math/big"
)

// g1Affine is a point on E(Fp): y² = x³ + 4. The group G1 is the
// r-torsion of this curve. Infinity is flagged explicitly; the zero
// value is NOT a valid point (use g1Infinity).
type g1Affine struct {
	x, y fe
	inf  bool
}

// g1Jac is the Jacobian representation (X/Z², Y/Z³); Z = 0 encodes
// infinity. All group arithmetic runs here, converting to affine only
// at serialization boundaries.
type g1Jac struct {
	x, y, z fe
}

func g1Infinity() g1Affine { return g1Affine{inf: true} }

func (p *g1Affine) isInfinity() bool { return p.inf }

func (p *g1Affine) equal(q *g1Affine) bool {
	if p.inf || q.inf {
		return p.inf == q.inf
	}
	return p.x.equal(&q.x) && p.y.equal(&q.y)
}

func (p *g1Affine) neg(q *g1Affine) {
	p.x.set(&q.x)
	p.y.neg(&q.y)
	p.inf = q.inf
}

// isOnCurve accepts infinity and checks y² = x³ + 4 otherwise.
func (p *g1Affine) isOnCurve() bool {
	if p.inf {
		return true
	}
	var lhs, rhs, four fe
	lhs.sqr(&p.y)
	rhs.sqr(&p.x)
	rhs.mul(&rhs, &p.x)
	four.fromBig(big.NewInt(4))
	rhs.add(&rhs, &four)
	return lhs.equal(&rhs)
}

// inSubgroup checks [r]P = O; called on every untrusted deserialize.
func (p *g1Affine) inSubgroup() bool {
	if p.inf {
		return true
	}
	var j g1Jac
	j.fromAffine(p)
	j.scalarMult(&j, ctx.r)
	return j.isInfinity()
}

func (j *g1Jac) isInfinity() bool { return j.z.isZero() }

func (j *g1Jac) setInfinity() {
	j.x.setOne()
	j.y.setOne()
	j.z.setZero()
}

func (j *g1Jac) fromAffine(p *g1Affine) {
	if p.inf {
		j.setInfinity()
		return
	}
	j.x.set(&p.x)
	j.y.set(&p.y)
	j.z.setOne()
}

func (j *g1Jac) toAffine() g1Affine {
	if j.isInfinity() {
		return g1Infinity()
	}
	var zi, zi2, zi3 fe
	zi.inv(&j.z)
	zi2.sqr(&zi)
	zi3.mul(&zi2, &zi)
	var p g1Affine
	p.x.mul(&j.x, &zi2)
	p.y.mul(&j.y, &zi3)
	return p
}

func (j *g1Jac) set(q *g1Jac) { *j = *q }

func (j *g1Jac) neg(q *g1Jac) {
	j.x.set(&q.x)
	j.y.neg(&q.y)
	j.z.set(&q.z)
}

// double is the a = 0 Jacobian doubling (dbl-2009-l).
func (j *g1Jac) double(q *g1Jac) {
	if q.isInfinity() {
		j.set(q)
		return
	}
	var a, b, c, d, e, f fe
	a.sqr(&q.x)
	b.sqr(&q.y)
	c.sqr(&b)
	d.add(&q.x, &b)
	d.sqr(&d)
	d.sub(&d, &a)
	d.sub(&d, &c)
	d.dbl(&d) // 2((X+B)² − A − C)
	e.dbl(&a)
	e.add(&e, &a) // 3A
	f.sqr(&e)

	var x3, y3, z3, t fe
	x3.sub(&f, &d)
	x3.sub(&x3, &d)
	z3.mul(&q.y, &q.z)
	z3.dbl(&z3)
	y3.sub(&d, &x3)
	y3.mul(&y3, &e)
	t.dbl(&c)
	t.dbl(&t)
	t.dbl(&t) // 8C
	y3.sub(&y3, &t)
	j.x.set(&x3)
	j.y.set(&y3)
	j.z.set(&z3)
}

// add is the general Jacobian addition (add-2007-bl shape), falling
// back to double when the operands coincide.
func (j *g1Jac) add(p, q *g1Jac) {
	if p.isInfinity() {
		j.set(q)
		return
	}
	if q.isInfinity() {
		j.set(p)
		return
	}
	var z1z1, z2z2, u1, u2, s1, s2, h, r fe
	z1z1.sqr(&p.z)
	z2z2.sqr(&q.z)
	u1.mul(&p.x, &z2z2)
	u2.mul(&q.x, &z1z1)
	s1.mul(&p.y, &q.z)
	s1.mul(&s1, &z2z2)
	s2.mul(&q.y, &p.z)
	s2.mul(&s2, &z1z1)
	h.sub(&u2, &u1)
	r.sub(&s2, &s1)
	if h.isZero() {
		if r.isZero() {
			j.double(p)
			return
		}
		j.setInfinity()
		return
	}
	var hh, hhh, v fe
	hh.sqr(&h)
	hhh.mul(&hh, &h)
	v.mul(&u1, &hh)

	var x3, y3, z3, t fe
	x3.sqr(&r)
	x3.sub(&x3, &hhh)
	x3.sub(&x3, &v)
	x3.sub(&x3, &v)
	y3.sub(&v, &x3)
	y3.mul(&y3, &r)
	t.mul(&s1, &hhh)
	y3.sub(&y3, &t)
	z3.mul(&p.z, &q.z)
	z3.mul(&z3, &h)
	j.x.set(&x3)
	j.y.set(&y3)
	j.z.set(&z3)
}

// addAffine is the mixed addition (Z2 = 1).
func (j *g1Jac) addAffine(p *g1Jac, q *g1Affine) {
	if q.inf {
		j.set(p)
		return
	}
	if p.isInfinity() {
		j.fromAffine(q)
		return
	}
	var z1z1, u2, s2, h, r fe
	z1z1.sqr(&p.z)
	u2.mul(&q.x, &z1z1)
	s2.mul(&q.y, &p.z)
	s2.mul(&s2, &z1z1)
	h.sub(&u2, &p.x)
	r.sub(&s2, &p.y)
	if h.isZero() {
		if r.isZero() {
			j.double(p)
			return
		}
		j.setInfinity()
		return
	}
	var hh, hhh, v fe
	hh.sqr(&h)
	hhh.mul(&hh, &h)
	v.mul(&p.x, &hh)

	var x3, y3, z3, t fe
	x3.sqr(&r)
	x3.sub(&x3, &hhh)
	x3.sub(&x3, &v)
	x3.sub(&x3, &v)
	y3.sub(&v, &x3)
	y3.mul(&y3, &r)
	t.mul(&p.y, &hhh)
	y3.sub(&y3, &t)
	z3.mul(&p.z, &h)
	j.x.set(&x3)
	j.y.set(&y3)
	j.z.set(&z3)
}

// scalarMult sets j = [k]q by 4-bit windowed double-and-add. k is
// reduced mod nothing: callers pass reduced scalars; negative k panics.
func (j *g1Jac) scalarMult(q *g1Jac, k *big.Int) {
	if k.Sign() < 0 {
		panic("bls381: negative scalar")
	}
	if k.Sign() == 0 || q.isInfinity() {
		j.setInfinity()
		return
	}
	// Window table: 1..15 multiples of q.
	var tbl [15]g1Jac
	tbl[0].set(q)
	for i := 1; i < 15; i++ {
		tbl[i].add(&tbl[i-1], q)
	}
	var acc g1Jac
	acc.setInfinity()
	bits := k.BitLen()
	top := (bits + 3) / 4 * 4
	for i := top - 4; i >= 0; i -= 4 {
		if !acc.isInfinity() {
			acc.double(&acc)
			acc.double(&acc)
			acc.double(&acc)
			acc.double(&acc)
		}
		w := k.Bit(i+3)<<3 | k.Bit(i+2)<<2 | k.Bit(i+1)<<1 | k.Bit(i)
		if w != 0 {
			acc.add(&acc, &tbl[w-1])
		}
	}
	j.set(&acc)
}

// --- serialization (zcash compressed format, 48 bytes) ---------------

var errG1Decode = errors.New("bls381: invalid G1 encoding")

// marshalG1 appends the 48-byte compressed encoding: big-endian x with
// flag bits in the top byte (0x80 compressed, 0x40 infinity, 0x20 the
// lexicographically-larger y).
func marshalG1(dst []byte, p *g1Affine) []byte {
	if p.inf {
		var buf [feByteLen]byte
		buf[0] = 0xc0
		return append(dst, buf[:]...)
	}
	start := len(dst)
	dst = p.x.bytes(dst)
	flags := byte(0x80)
	if feIsLexLarger(&p.y) {
		flags |= 0x20
	}
	dst[start] |= flags
	return dst
}

// unmarshalG1 parses a compressed point, checking canonicality and the
// curve equation; subgroup membership is the caller's separate check.
func unmarshalG1(b []byte) (g1Affine, error) {
	if len(b) != feByteLen {
		return g1Affine{}, errG1Decode
	}
	flags := b[0] & 0xe0
	if flags&0x80 == 0 {
		return g1Affine{}, errG1Decode // only compressed points are valid here
	}
	var raw [feByteLen]byte
	copy(raw[:], b)
	raw[0] &^= 0xe0
	if flags&0x40 != 0 {
		// Infinity: sign bit must be clear and the payload all-zero.
		if flags&0x20 != 0 {
			return g1Affine{}, errG1Decode
		}
		for _, c := range raw {
			if c != 0 {
				return g1Affine{}, errG1Decode
			}
		}
		return g1Infinity(), nil
	}
	x, ok := feFromBytes(raw[:])
	if !ok {
		return g1Affine{}, errG1Decode
	}
	var rhs, four fe
	rhs.sqr(&x)
	rhs.mul(&rhs, &x)
	four.fromBig(big.NewInt(4))
	rhs.add(&rhs, &four)
	var y fe
	if !y.sqrt(&rhs) {
		return g1Affine{}, errG1Decode
	}
	if feIsLexLarger(&y) != (flags&0x20 != 0) {
		y.neg(&y)
	}
	return g1Affine{x: x, y: y}, nil
}

// feIsLexLarger reports y > −y as integers, i.e. y > (p−1)/2.
func feIsLexLarger(y *fe) bool {
	v := y.toBig()
	v.Lsh(v, 1)
	return v.Cmp(ctx.p) > 0
}

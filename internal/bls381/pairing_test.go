package bls381

import (
	"math/big"
	"testing"
)

func TestPairingBilinearity(t *testing.T) {
	initCtx()
	p := randG1(t)
	q := randG2(t)
	a, b := randScalarT(t), randScalarT(t)

	var jp g1Jac
	jp.fromAffine(&p)
	jp.scalarMult(&jp, a)
	ap := jp.toAffine()

	var jq g2Jac
	jq.fromAffine(&q)
	jq.scalarMult(&jq, b)
	bq := jq.toAffine()

	// e([a]P, [b]Q) == e(P, Q)^(ab)
	lhs := pair(&ap, &bq)
	base := pair(&p, &q)
	ab := new(big.Int).Mul(a, b)
	ab.Mod(ab, ctx.r)
	var rhs fe12
	rhs.expUnitary(&base, ab)
	if !lhs.equal(&rhs) {
		t.Fatal("bilinearity failed: e(aP,bQ) != e(P,Q)^ab")
	}

	// e([a]P, Q) == e(P, [a]Q)
	var jq2 g2Jac
	jq2.fromAffine(&q)
	jq2.scalarMult(&jq2, a)
	aq := jq2.toAffine()
	l2 := pair(&ap, &q)
	r2 := pair(&p, &aq)
	if !l2.equal(&r2) {
		t.Fatal("bilinearity failed: e(aP,Q) != e(P,aQ)")
	}
}

func TestPairingNonDegenerate(t *testing.T) {
	initCtx()
	e := pair(&ctx.g1, &ctx.g2)
	if e.isOne() {
		t.Fatal("e(G1, G2) == 1")
	}
	// Order divides r.
	var er fe12
	er.expUnitary(&e, ctx.r)
	if !er.isOne() {
		t.Fatal("e(G1, G2)^r != 1")
	}
	// Infinity on either side gives the identity.
	inf1 := g1Infinity()
	inf2 := g2Infinity()
	if out := pair(&inf1, &ctx.g2); !out.isOne() {
		t.Fatal("e(O, Q) != 1")
	}
	if out := pair(&ctx.g1, &inf2); !out.isOne() {
		t.Fatal("e(P, O) != 1")
	}
}

func TestPairProductAndSamePairing(t *testing.T) {
	initCtx()
	p1, p2 := randG1(t), randG1(t)
	q1, q2 := randG2(t), randG2(t)
	pr1, pr2 := prepareG2(&q1), prepareG2(&q2)

	// Product equals the pointwise product of individual pairings.
	prod := pairProduct([]*g1Affine{&p1, &p2}, []*g2Prepared{pr1, pr2})
	e1 := pair(&p1, &q1)
	e2 := pair(&p2, &q2)
	var want fe12
	want.mul(&e1, &e2)
	if !prod.equal(&want) {
		t.Fatal("pairProduct != e(P1,Q1)·e(P2,Q2)")
	}

	// Prepared pairing equals the direct pairing.
	ep := pairPrepared(&p1, pr1)
	if !ep.equal(&e1) {
		t.Fatal("prepared pairing disagrees with direct pairing")
	}

	// SamePairing: e([k]P, Q) == e(P, [k]Q).
	k := randScalarT(t)
	var jp g1Jac
	jp.fromAffine(&p1)
	jp.scalarMult(&jp, k)
	kp := jp.toAffine()
	var jq g2Jac
	jq.fromAffine(&q1)
	jq.scalarMult(&jq, k)
	kq := jq.toAffine()
	if !samePairing(&kp, pr1, &p1, prepareG2(&kq)) {
		t.Fatal("samePairing rejected a true equality")
	}
	if samePairing(&kp, pr1, &p2, pr2) {
		t.Fatal("samePairing accepted unrelated pairings")
	}
}

func TestHashToG2(t *testing.T) {
	const dst = "TRE-V01-CS01-with-BLS12381G2_XMD:SHA-256_SVDW_RO_"
	h1 := hashToG2([]byte("label-2026-01-01T00:00:00Z"), dst)
	h2 := hashToG2([]byte("label-2026-01-01T00:00:00Z"), dst)
	h3 := hashToG2([]byte("label-2026-01-01T00:00:10Z"), dst)
	if !h1.equal(&h2) {
		t.Fatal("hashToG2 not deterministic")
	}
	if h1.equal(&h3) {
		t.Fatal("distinct labels collided")
	}
	if h1.isInfinity() {
		t.Fatal("hash produced infinity")
	}
	if !h1.isOnCurve() || !h1.inSubgroup() {
		t.Fatal("hash output not in G2")
	}
	// Different DSTs separate domains.
	h4 := hashToG2([]byte("label-2026-01-01T00:00:00Z"), dst+"-other")
	if h1.equal(&h4) {
		t.Fatal("distinct DSTs collided")
	}
}

func TestSvdwMapOnCurve(t *testing.T) {
	for i := uint64(0); i < 20; i++ {
		var u fe2
		u.fromUint64(i, 3*i+1)
		p := svdwMap(&u)
		if !p.isOnCurve() {
			t.Fatalf("svdw output off curve for u=%d", i)
		}
	}
	// The exceptional zero input maps somewhere on the curve too.
	var zero fe2
	p := svdwMap(&zero)
	if !p.isOnCurve() {
		t.Fatal("svdw(0) off curve")
	}
}

// TestPairingAgainstSignature runs the BLS signature equation the
// scheme depends on: e(G1, s·H(m)) == e(s·G1, H(m)).
func TestPairingAgainstSignature(t *testing.T) {
	initCtx()
	s := randScalarT(t)
	h := hashToG2([]byte("epoch-42"), "test-dst")

	var sg g1Jac
	sg.fromAffine(&ctx.g1)
	sg.scalarMult(&sg, s)
	spub := sg.toAffine()

	var sig g2Jac
	sig.fromAffine(&h)
	sig.scalarMult(&sig, s)
	sigA := sig.toAffine()

	if !samePairing(&ctx.g1, prepareG2(&sigA), &spub, prepareG2(&h)) {
		t.Fatal("BLS signature equation failed")
	}
	// Wrong signature must fail.
	bad := randScalarT(t)
	var sig2 g2Jac
	sig2.fromAffine(&h)
	sig2.scalarMult(&sig2, bad)
	badSig := sig2.toAffine()
	if samePairing(&ctx.g1, prepareG2(&badSig), &spub, prepareG2(&h)) {
		t.Fatal("BLS verification accepted a forged signature")
	}
}

package bls381

import (
	"testing"
)

func BenchmarkPairing(b *testing.B) {
	initCtx()
	p := randG1(b)
	q := randG2(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pair(&p, &q)
	}
}

func BenchmarkPairingPrepared(b *testing.B) {
	initCtx()
	p := randG1(b)
	q := randG2(b)
	pq := prepareG2(&q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pairPrepared(&p, pq)
	}
}

func BenchmarkG1ScalarMult(b *testing.B) {
	initCtx()
	k := randScalarT(b)
	var j g1Jac
	j.fromAffine(&ctx.g1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.scalarMult(&j, k)
	}
}

func BenchmarkHashToG2(b *testing.B) {
	initCtx()
	msg := []byte("2026-01-01T00:00:00Z")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = hashToG2(msg, "bench-dst")
	}
}

func BenchmarkFeMul(b *testing.B) {
	initCtx()
	x := randFe(b)
	y := randFe(b)
	var z fe
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feMul(&z, &x, &y)
	}
}

func BenchmarkFeMulLoop(b *testing.B) {
	initCtx()
	x := randFe(b)
	y := randFe(b)
	var z fe
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feMulLoop(&z, &x, &y)
	}
}

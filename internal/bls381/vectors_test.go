package bls381

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"math/big"
	"os"
	"path/filepath"
	"testing"
)

// TestExpandMessageXMDVectors pins the RFC 9380 expander against the
// appendix K.1 published vectors (SHA-256, both output lengths).
func TestExpandMessageXMDVectors(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "expand_message_xmd_sha256.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DST     string `json:"dst"`
		Vectors []struct {
			Msg          string `json:"msg"`
			LenInBytes   int    `json:"len_in_bytes"`
			UniformBytes string `json:"uniform_bytes"`
		} `json:"vectors"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Vectors) == 0 {
		t.Fatal("no vectors")
	}
	for _, v := range doc.Vectors {
		want, err := hex.DecodeString(v.UniformBytes)
		if err != nil {
			t.Fatal(err)
		}
		got := expandMessageXMD([]byte(v.Msg), doc.DST, v.LenInBytes)
		if !bytes.Equal(got, want) {
			t.Errorf("expand_message_xmd(%q, %d) = %x, want %x", v.Msg, v.LenInBytes, got, want)
		}
	}
}

// TestSerializationVectors pins the compressed zcash-format encodings
// of k·G1 and k·G2 against vectors computed by an independent affine
// big-integer implementation (testdata/serialization_vectors.json): a
// cross-implementation check of the whole scalar-multiplication,
// coordinate and serialization pipeline, including the k=1 standard
// generator encodings and both infinity encodings.
func TestSerializationVectors(t *testing.T) {
	initCtx()
	raw, err := os.ReadFile(filepath.Join("testdata", "serialization_vectors.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		InfinityG1 string `json:"infinity_g1"`
		InfinityG2 string `json:"infinity_g2"`
		Rows       []struct {
			Scalar string `json:"scalar"`
			G1     string `json:"g1"`
			G2     string `json:"g2"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Rows) == 0 {
		t.Fatal("no vectors")
	}

	inf1 := g1Infinity()
	if got := hex.EncodeToString(marshalG1(nil, &inf1)); got != doc.InfinityG1 {
		t.Errorf("G1 infinity encoding %s, want %s", got, doc.InfinityG1)
	}
	inf2 := g2Infinity()
	if got := hex.EncodeToString(marshalG2(nil, &inf2)); got != doc.InfinityG2 {
		t.Errorf("G2 infinity encoding %s, want %s", got, doc.InfinityG2)
	}

	for _, row := range doc.Rows {
		k, ok := new(big.Int).SetString(row.Scalar[2:], 16)
		if !ok {
			t.Fatalf("bad scalar %q", row.Scalar)
		}
		var j1 g1Jac
		j1.fromAffine(&ctx.g1)
		j1.scalarMult(&j1, k)
		p1 := j1.toAffine()
		if got := hex.EncodeToString(marshalG1(nil, &p1)); got != row.G1 {
			t.Errorf("k=%s: G1 encoding %s, want %s", row.Scalar, got, row.G1)
		}
		var j2 g2Jac
		j2.fromAffine(&ctx.g2)
		j2.scalarMult(&j2, k)
		p2 := j2.toAffine()
		if got := hex.EncodeToString(marshalG2(nil, &p2)); got != row.G2 {
			t.Errorf("k=%s: G2 encoding %s, want %s", row.Scalar, got, row.G2)
		}

		// Round trip through the decoders, which re-derive y from the
		// compressed x and the sign bit.
		enc1, err := hex.DecodeString(row.G1)
		if err != nil {
			t.Fatal(err)
		}
		back1, err := unmarshalG1(enc1)
		if err != nil {
			t.Fatalf("k=%s: unmarshalG1: %v", row.Scalar, err)
		}
		if !back1.equal(&p1) {
			t.Errorf("k=%s: G1 decode mismatch", row.Scalar)
		}
		enc2, err := hex.DecodeString(row.G2)
		if err != nil {
			t.Fatal(err)
		}
		back2, err := unmarshalG2(enc2)
		if err != nil {
			t.Fatalf("k=%s: unmarshalG2: %v", row.Scalar, err)
		}
		if !back2.equal(&p2) {
			t.Errorf("k=%s: G2 decode mismatch", row.Scalar)
		}
	}
}

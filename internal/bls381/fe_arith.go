package bls381

import (
	"math/big"
	"math/bits"
)

// Dedicated 6-limb arithmetic for the 381-bit prime. The generic
// ff.Mont CIOS keeps a maxMontLimbs-sized accumulator that must be
// zeroed on every call — at 6 limbs that bookkeeping costs as much as
// the multiplication itself. These fixed-width routines are the same
// algorithms with compile-time bounds; the Fp2 differential tests pin
// them against the big.Int reference and FuzzFeArith against the
// generic backend.

// feArith holds the modulus limbs and REDC constant for the fixed
// routines; filled by initFeArith from ctx.p (no hard-coded limbs).
var feArith struct {
	p  [feLimbs]uint64
	n0 uint64 // −p⁻¹ mod 2⁶⁴
}

// Scalar copies of the modulus limbs for the unrolled ladder in
// fe_mul.go (package-level scalars load straight into registers).
var (
	feP0, feP1, feP2, feP3, feP4, feP5 uint64
	feN0                               uint64
)

func initFeArith() {
	tmp := new(big.Int).Set(ctx.p)
	mask := new(big.Int).SetUint64(^uint64(0))
	word := new(big.Int)
	for i := 0; i < feLimbs; i++ {
		feArith.p[i] = word.And(tmp, mask).Uint64()
		tmp.Rsh(tmp, 64)
	}
	if tmp.Sign() != 0 {
		panic("bls381: unexpected limb count")
	}
	// Newton iteration for p₀⁻¹ mod 2⁶⁴, five doublings of precision.
	p0 := feArith.p[0]
	inv := p0
	for i := 0; i < 5; i++ {
		inv *= 2 - p0*inv
	}
	feArith.n0 = -inv
	feP0, feP1, feP2, feP3, feP4, feP5 = feArith.p[0], feArith.p[1], feArith.p[2], feArith.p[3], feArith.p[4], feArith.p[5]
	feN0 = feArith.n0
}

func feGeqP(x *fe) bool {
	for i := feLimbs - 1; i >= 0; i-- {
		if x[i] > feArith.p[i] {
			return true
		}
		if x[i] < feArith.p[i] {
			return false
		}
	}
	return true
}

func feSubP(z, x *fe) {
	var borrow uint64
	for i := 0; i < feLimbs; i++ {
		z[i], borrow = bits.Sub64(x[i], feArith.p[i], borrow)
	}
}

func feAdd(z, x, y *fe) {
	var carry uint64
	for i := 0; i < feLimbs; i++ {
		z[i], carry = bits.Add64(x[i], y[i], carry)
	}
	if carry != 0 || feGeqP(z) {
		feSubP(z, z)
	}
}

func feDouble(z, x *fe) { feAdd(z, x, x) }

func feSub(z, x, y *fe) {
	var borrow uint64
	for i := 0; i < feLimbs; i++ {
		z[i], borrow = bits.Sub64(x[i], y[i], borrow)
	}
	if borrow != 0 {
		var carry uint64
		for i := 0; i < feLimbs; i++ {
			z[i], carry = bits.Add64(z[i], feArith.p[i], carry)
		}
	}
}

func feNeg(z, x *fe) {
	if x.isZeroRaw() {
		*z = fe{}
		return
	}
	var borrow uint64
	for i := 0; i < feLimbs; i++ {
		z[i], borrow = bits.Sub64(feArith.p[i], x[i], borrow)
	}
}

func (z *fe) isZeroRaw() bool {
	var acc uint64
	for i := 0; i < feLimbs; i++ {
		acc |= z[i]
	}
	return acc == 0
}

// feMul dispatches to the unrolled ladder; z may alias x or y.
func feMul(z, x, y *fe) { feMulUnrolled(z, x, y) }

// feMulLoop is the loop-form CIOS Montgomery product, kept as the
// differential reference for the unrolled ladder (FuzzFeArith).
func feMulLoop(z, x, y *fe) {
	var t [feLimbs + 2]uint64
	for i := 0; i < feLimbs; i++ {
		var c uint64
		yi := y[i]
		for j := 0; j < feLimbs; j++ {
			hi, lo := bits.Mul64(x[j], yi)
			var c1, c2 uint64
			t[j], c1 = bits.Add64(t[j], lo, 0)
			t[j], c2 = bits.Add64(t[j], c, 0)
			c = hi + c1 + c2
		}
		var c1 uint64
		t[feLimbs], c1 = bits.Add64(t[feLimbs], c, 0)
		t[feLimbs+1] = c1

		w := t[0] * feArith.n0
		hi, lo := bits.Mul64(w, feArith.p[0])
		_, c1 = bits.Add64(t[0], lo, 0)
		c = hi + c1
		for j := 1; j < feLimbs; j++ {
			hi, lo := bits.Mul64(w, feArith.p[j])
			var c2, c3 uint64
			t[j-1], c2 = bits.Add64(t[j], lo, 0)
			t[j-1], c3 = bits.Add64(t[j-1], c, 0)
			c = hi + c2 + c3
		}
		t[feLimbs-1], c1 = bits.Add64(t[feLimbs], c, 0)
		t[feLimbs] = t[feLimbs+1] + c1
		t[feLimbs+1] = 0
	}
	var out fe
	copy(out[:], t[:feLimbs])
	if t[feLimbs] != 0 || feGeqP(&out) {
		feSubP(&out, &out)
	}
	*z = out
}

func feSqr(z, x *fe) { feMul(z, x, x) }

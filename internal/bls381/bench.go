package bls381

import "math/big"

// Benchmark hooks: the field and pairing internals are unexported (the
// only supported API is the backend.Backend), but internal/bench needs
// to time the raw operations for BENCH_field.json and
// BENCH_pairing.json. These constructors hand it closures over live
// operands without widening the package surface.

// BenchFieldOps returns closures timing one base-field multiplication,
// squaring and inversion on fixed non-trivial operands. Operands stay
// in Montgomery form across calls, matching how the pairing uses the
// field.
func BenchFieldOps() (mul, sqr, inv func()) {
	initCtx()
	var a, b, r fe
	a.fromBig(new(big.Int).SetBytes([]byte("bls381 bench operand a")))
	b.fromBig(new(big.Int).SetBytes([]byte("bls381 bench operand b")))
	mul = func() { r.mul(&a, &b) }
	sqr = func() { r.sqr(&a) }
	inv = func() { r.inv(&a) }
	return mul, sqr, inv
}

// benchG1 derives a non-trivial G1 point as k·G1 (there is no hash-to-G1
// in this implementation; only G2 carries hashed labels).
func benchG1(k int64) *g1Affine {
	var j g1Jac
	j.fromAffine(&ctx.g1)
	j.scalarMult(&j, big.NewInt(k))
	p := j.toAffine()
	return &p
}

// BenchPairingOps returns closures timing the ate pairing strategies on
// fixed arguments: the full pairing, the Miller loop with a precomputed
// G2 line schedule, the one-off schedule precomputation itself, a
// 4-pair product (shared final exponentiation) and a two-pairing
// equality check (the verification shape).
func BenchPairingOps() (pairFull, pairWithPrep, precompute, product4, verify func()) {
	initCtx()
	p := benchG1(0x6265_6e63)
	q := hashToG2([]byte("Q"), "bls381-bench-pairing")
	prep := prepareG2(&q)
	ps := make([]*g1Affine, 4)
	qs := make([]*g2Prepared, 4)
	for i := range ps {
		ps[i] = benchG1(int64(1000 + i))
		h := hashToG2([]byte{byte(16 + i)}, "bls381-bench-pairing")
		qs[i] = prepareG2(&h)
	}
	var sink fe12
	pairFull = func() { sink = pair(p, &q) }
	pairWithPrep = func() { sink = pairPrepared(p, prep) }
	precompute = func() { prep = prepareG2(&q) }
	product4 = func() { sink = pairProduct(ps, qs) }
	verify = func() {
		if !samePairing(p, prep, p, prep) {
			panic("bls381: trivially equal pairings differ")
		}
	}
	_ = sink
	return pairFull, pairWithPrep, precompute, product4, verify
}

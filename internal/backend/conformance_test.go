package backend_test

import (
	"bytes"
	"math/big"
	"testing"

	"timedrelease/internal/backend"
	"timedrelease/internal/bls381"
	"timedrelease/internal/curve"
	"timedrelease/internal/params"
)

// testBackends returns every backend under its display name. The
// symmetric entry wraps the SS512 preset exactly as params does.
func testBackends(t *testing.T) map[string]backend.Backend {
	t.Helper()
	set := params.MustPreset("SS512")
	return map[string]backend.Backend{
		"symmetric": backend.NewSymmetric(set.Name, set.Curve, set.Pairing, set.G),
		"bls12381":  bls381.New(),
	}
}

func randScalar(t *testing.T, b backend.Backend) *big.Int {
	t.Helper()
	k, err := b.RandScalar(nil)
	if err != nil {
		t.Fatalf("RandScalar: %v", err)
	}
	return k
}

// TestBackendGroupLaws exercises add/neg/scalar-mult consistency and
// the serialization round trip in both groups through the interface.
func TestBackendGroupLaws(t *testing.T) {
	for name, b := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			for _, g := range []backend.Group{backend.G1, backend.G2} {
				gen := b.Generator(g)
				if !b.IsOnCurve(g, gen) || !b.InSubgroup(g, gen) {
					t.Fatalf("%v generator fails membership", g)
				}
				k, m := randScalar(t, b), randScalar(t, b)
				kP := b.ScalarMult(g, k, gen)
				mP := b.ScalarMult(g, m, gen)
				// (k+m)·G == k·G + m·G (scalar sum reduced mod r).
				sum := new(big.Int).Add(k, m)
				if !b.Equal(g, b.ScalarMult(g, sum, gen), b.Add(g, kP, mP)) {
					t.Fatalf("%v distributivity fails", g)
				}
				// P + (−P) == 0.
				if !b.Equal(g, b.Add(g, kP, b.Neg(g, kP)), b.Infinity(g)) {
					t.Fatalf("%v neg/add identity fails", g)
				}
				// r·G == 0.
				if !b.Equal(g, b.ScalarMult(g, new(big.Int).Set(b.Order()), gen), b.Infinity(g)) {
					t.Fatalf("%v order annihilation fails", g)
				}
				// Serialization round trip, and infinity too.
				enc := b.AppendPoint(nil, g, kP)
				if len(enc) != b.PointLen(g) {
					t.Fatalf("%v encoding length %d != PointLen %d", g, len(enc), b.PointLen(g))
				}
				dec, err := b.ParsePoint(g, enc)
				if err != nil {
					t.Fatalf("%v ParsePoint: %v", g, err)
				}
				if !b.Equal(g, dec, kP) {
					t.Fatalf("%v marshal round trip fails", g)
				}
				infEnc := b.AppendPoint(nil, g, b.Infinity(g))
				infDec, err := b.ParsePoint(g, infEnc)
				if err != nil || !infDec.IsInfinity() {
					t.Fatalf("%v infinity round trip: %v", g, err)
				}
				// Fixed-base table agrees with the generic ladder.
				tbl := b.PrecomputeBase(g, gen)
				if !b.Equal(g, b.ScalarMultBase(tbl, k), kP) {
					t.Fatalf("%v fixed-base ladder disagrees", g)
				}
				if !b.Equal(g, tbl.Base(), gen) || tbl.IsInfinity() {
					t.Fatalf("%v table metadata wrong", g)
				}
			}
		})
	}
}

// TestBackendPairing checks bilinearity, SamePairing and the GT ops.
func TestBackendPairing(t *testing.T) {
	for name, b := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			g1 := b.Generator(backend.G1)
			g2 := b.Generator(backend.G2)
			a, c := randScalar(t, b), randScalar(t, b)
			aP := b.ScalarMult(backend.G1, a, g1)
			cQ := b.ScalarMult(backend.G2, c, g2)

			// e(aP, cQ) == e(P, Q)^(ac).
			lhs := b.Pair(aP, cQ)
			base := b.Pair(g1, g2)
			ac := new(big.Int).Mul(a, c)
			ac.Mod(ac, b.Order())
			if !b.GTEqual(lhs, b.GTExpUnitary(base, ac)) {
				t.Fatal("bilinearity fails")
			}
			if b.GTIsOne(base) {
				t.Fatal("pairing is degenerate")
			}
			if !b.GTIsOne(b.GTOne()) {
				t.Fatal("GTOne is not one")
			}
			// Identity on either side gives 1.
			if !b.GTIsOne(b.Pair(b.Infinity(backend.G1), cQ)) ||
				!b.GTIsOne(b.Pair(aP, b.Infinity(backend.G2))) {
				t.Fatal("pairing with identity is not one")
			}
			// Product form: e(aP, Q)·e(P, cQ) == e(P, Q)^(a+c).
			prod := b.PairProduct([]backend.PointPair{{P: aP, Q: g2}, {P: g1, Q: cQ}})
			apc := new(big.Int).Add(a, c)
			apc.Mod(apc, b.Order())
			if !b.GTEqual(prod, b.GTExpUnitary(base, apc)) {
				t.Fatal("pair product fails")
			}
			if !b.GTEqual(prod, b.GTMul(b.Pair(aP, g2), b.Pair(g1, cQ))) {
				t.Fatal("GTMul disagrees with PairProduct")
			}
			// SamePairing: e(aP, Q) == e(P, aQ).
			aQ := b.ScalarMult(backend.G2, a, g2)
			if !b.SamePairing(aP, g2, g1, aQ) {
				t.Fatal("SamePairing rejects equal pairings")
			}
			if b.SamePairing(aP, g2, g1, cQ) {
				t.Fatal("SamePairing accepts unequal pairings")
			}
			// GTBytes: fixed length, equal elements encode equal.
			if !bytes.Equal(b.GTBytes(lhs), b.GTBytes(b.GTExpUnitary(base, ac))) {
				t.Fatal("GTBytes not canonical")
			}
		})
	}
}

// TestBackendPreparedKey drives the three PreparedKey checks with a
// fresh server key on each backend.
func TestBackendPreparedKey(t *testing.T) {
	for name, b := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			g1 := b.Generator(backend.G1)
			g2 := b.Generator(backend.G2)
			s := randScalar(t, b)
			sG := b.ScalarMult(backend.G1, s, g1)
			sG2 := b.ScalarMult(backend.G2, s, g2)
			pk := b.PrepareKey(g1, sG, sG2)

			h := b.HashToG2("tre:h1", []byte("2026-08-07"))
			if !b.InSubgroup(backend.G2, h) {
				t.Fatal("HashToG2 output outside subgroup")
			}
			h2 := b.HashToG2("tre:h1", []byte("2026-08-08"))
			if b.Equal(backend.G2, h, h2) {
				t.Fatal("HashToG2 collides on distinct messages")
			}
			if b.Equal(backend.G2, h, b.HashToG2("tre:other", []byte("2026-08-07"))) {
				t.Fatal("HashToG2 ignores the domain")
			}

			sig := b.ScalarMult(backend.G2, s, h)
			if !pk.VerifySig(h, sig) {
				t.Fatal("VerifySig rejects a valid signature")
			}
			if pk.VerifySig(h2, sig) {
				t.Fatal("VerifySig accepts a signature on the wrong hash")
			}
			if pk.VerifySig(h, b.Infinity(backend.G2)) {
				t.Fatal("VerifySig accepts the identity")
			}

			a := randScalar(t, b)
			aG := b.ScalarMult(backend.G1, a, g1)
			asG := b.ScalarMult(backend.G1, a, sG)
			if !pk.SameKey(aG, asG) {
				t.Fatal("SameKey rejects a well-formed user key")
			}
			if pk.SameKey(aG, b.ScalarMult(backend.G1, randScalar(t, b), sG)) {
				t.Fatal("SameKey accepts a mismatched user key")
			}

			sig2 := b.ScalarMult(backend.G2, s, h2)
			agg := b.Add(backend.G2, sig, sig2)
			if !pk.VerifyAggregate([]curve.Point{h, h2}, agg) {
				t.Fatal("VerifyAggregate rejects a valid aggregate")
			}
			if pk.VerifyAggregate([]curve.Point{h}, agg) {
				t.Fatal("VerifyAggregate accepts a short hash list")
			}
			if !pk.VerifyAggregate(nil, b.Infinity(backend.G2)) {
				t.Fatal("VerifyAggregate rejects the empty aggregate")
			}
		})
	}
}

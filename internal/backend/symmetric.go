package backend

import (
	"io"
	"math/big"

	"timedrelease/internal/curve"
	"timedrelease/internal/pairing"
)

// Symmetric adapts the paper's Type-1 setting — one supersingular
// curve group, the modified Tate pairing — to the Backend interface.
// Both group tags resolve to the same curve, so every operation
// delegates verbatim to the curve and pairing packages the reference
// implementation has always used: results are bit-for-bit identical to
// calling those packages directly, which the pre-refactor golden
// vectors pin.
type Symmetric struct {
	name string
	c    *curve.Curve
	pr   *pairing.Pairing
	g    curve.Point
}

// NewSymmetric wraps a Type-1 curve/pairing pair as a Backend. The
// name should identify the parameter set ("SS512", ...); g is the
// canonical subgroup generator (used for both Generator tags).
func NewSymmetric(name string, c *curve.Curve, pr *pairing.Pairing, g curve.Point) *Symmetric {
	return &Symmetric{name: name, c: c, pr: pr, g: g}
}

// Name identifies the backend.
func (b *Symmetric) Name() string { return "symmetric/" + b.name }

// Asymmetric reports false: G1 and G2 coincide.
func (b *Symmetric) Asymmetric() bool { return false }

// Order returns the subgroup order q.
func (b *Symmetric) Order() *big.Int { return b.c.Q }

// Generator returns the canonical generator (same point for both tags).
func (b *Symmetric) Generator(Group) curve.Point { return b.g }

// Infinity returns the identity.
func (b *Symmetric) Infinity(Group) curve.Point { return curve.Infinity() }

// Add returns p+q.
func (b *Symmetric) Add(_ Group, p, q curve.Point) curve.Point { return b.c.Add(p, q) }

// Neg returns −p.
func (b *Symmetric) Neg(_ Group, p curve.Point) curve.Point { return b.c.Neg(p) }

// ScalarMult returns k·p.
func (b *Symmetric) ScalarMult(_ Group, k *big.Int, p curve.Point) curve.Point {
	return b.c.ScalarMult(k, p)
}

// Equal reports point equality.
func (b *Symmetric) Equal(_ Group, p, q curve.Point) bool { return b.c.Equal(p, q) }

// IsOnCurve reports curve membership.
func (b *Symmetric) IsOnCurve(_ Group, p curve.Point) bool { return b.c.IsOnCurve(p) }

// InSubgroup reports prime-order subgroup membership.
func (b *Symmetric) InSubgroup(_ Group, p curve.Point) bool { return b.c.InSubgroup(p) }

// HashToG2 is the try-and-increment H1 of the reference curve.
func (b *Symmetric) HashToG2(domain string, msg []byte) curve.Point {
	return b.c.HashToGroup(domain, msg)
}

// RandScalar samples a uniform scalar in Z_q^*.
func (b *Symmetric) RandScalar(rng io.Reader) (*big.Int, error) { return b.c.RandScalar(rng) }

// PointLen returns the compressed encoding size.
func (b *Symmetric) PointLen(Group) int { return b.c.MarshalSize() }

// AppendPoint appends the canonical compressed encoding.
func (b *Symmetric) AppendPoint(dst []byte, _ Group, p curve.Point) []byte {
	return b.c.AppendMarshal(dst, p)
}

// ParsePoint decodes a compressed encoding with subgroup validation.
func (b *Symmetric) ParsePoint(_ Group, data []byte) (curve.Point, error) {
	return b.c.UnmarshalSubgroup(data)
}

// PrecomputeBase builds the curve's fixed-base wNAF table.
func (b *Symmetric) PrecomputeBase(_ Group, p curve.Point) BaseTable {
	return b.c.PrecomputeBase(p)
}

// ScalarMultBase runs the fixed-base ladder.
func (b *Symmetric) ScalarMultBase(t BaseTable, k *big.Int) curve.Point {
	return b.c.ScalarMultBase(t.(*curve.BaseTable), k)
}

// Pair computes the modified Tate pairing ê(p, q).
func (b *Symmetric) Pair(p, q curve.Point) GT { return b.pr.Pair(p, q) }

// PairProduct computes Π ê(Pᵢ, Qᵢ) with one final exponentiation.
func (b *Symmetric) PairProduct(pairs []PointPair) GT {
	pp := make([]pairing.PointPair, len(pairs))
	for i, f := range pairs {
		pp[i] = pairing.PointPair{P: f.P, Q: f.Q}
	}
	return b.pr.PairProduct(pp)
}

// SamePairing reports ê(a1, b1) == ê(a2, b2).
func (b *Symmetric) SamePairing(a1, b1, a2, b2 curve.Point) bool {
	return b.pr.SamePairing(a1, b1, a2, b2)
}

// PrepareKey precomputes the Miller-loop line schedules of g and sg;
// sg2 is ignored (it coincides with sg in the symmetric setting).
func (b *Symmetric) PrepareKey(g, sg, _ curve.Point) PreparedKey {
	return &symPrepared{
		b:  b,
		g:  b.pr.Precompute(g),
		sg: b.pr.Precompute(sg),
	}
}

// symPrepared is the Type-1 PreparedKey: the line schedules of the two
// fixed first pairing arguments, exactly as bls.PreparedPublicKey has
// always cached them.
type symPrepared struct {
	b     *Symmetric
	g, sg *pairing.PreparedPoint
}

func (pk *symPrepared) VerifySig(h, sig curve.Point) bool {
	if sig.IsInfinity() || !pk.b.c.InSubgroup(sig) {
		return false
	}
	return pk.PairCheck(h, sig)
}

func (pk *symPrepared) PairCheck(h, sig curve.Point) bool {
	return pk.b.pr.SamePairingPrepared(pk.g, sig, pk.sg, h)
}

func (pk *symPrepared) SameKey(ag, asg curve.Point) bool {
	// ê(sG, aG) = ê(G, a·sG), fixed server points in the prepared slots.
	return pk.b.pr.SamePairingPrepared(pk.sg, ag, pk.g, asg)
}

func (pk *symPrepared) VerifyAggregate(hashes []curve.Point, agg curve.Point) bool {
	if len(hashes) == 0 {
		return agg.IsInfinity()
	}
	if agg.IsInfinity() || !pk.b.c.InSubgroup(agg) {
		return false
	}
	hsum := curve.Infinity()
	for _, h := range hashes {
		hsum = pk.b.c.Add(hsum, h)
	}
	return pk.b.pr.SamePairingPrepared(pk.g, agg, pk.sg, hsum)
}

// GTOne returns 1 ∈ F_{p²}.
func (b *Symmetric) GTOne() GT { return b.pr.E2.One() }

// GTEqual reports target-group equality.
func (b *Symmetric) GTEqual(x, y GT) bool {
	return b.pr.E2.Equal(x.(pairing.GT), y.(pairing.GT))
}

// GTIsOne reports whether x is the identity.
func (b *Symmetric) GTIsOne(x GT) bool { return b.pr.E2.IsOne(x.(pairing.GT)) }

// GTMul returns x·y in F_{p²}.
func (b *Symmetric) GTMul(x, y GT) GT { return b.pr.E2.Mul(x.(pairing.GT), y.(pairing.GT)) }

// GTExpUnitary runs the conjugation-as-inversion signed-window ladder.
func (b *Symmetric) GTExpUnitary(x GT, k *big.Int) GT {
	return b.pr.E2.ExpUnitary(x.(pairing.GT), k)
}

// GTBytes returns the canonical fixed-width F_{p²} encoding.
func (b *Symmetric) GTBytes(x GT) []byte { return b.pr.E2.Bytes(x.(pairing.GT)) }

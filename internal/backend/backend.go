// Package backend abstracts the pairing setting the TRE schemes run
// on. The paper's constructions are written for a Type-1 (symmetric)
// pairing ê: G1 × G1 → GT over a supersingular curve; modern
// pairing-friendly curves are Type-3 (asymmetric), with distinct
// groups G1 ≠ G2 and no efficient isomorphism between them. The
// Backend interface is the Type-3 generalisation: every operation is
// tagged with the group it acts in, the pairing takes a G1 point on
// the left and a G2 point on the right, and a Type-1 setting is simply
// a backend whose two groups coincide (the Symmetric adapter).
//
// Scheme code that follows the G1/G2 split — keys and ciphertext
// headers in G1, hashed time labels and key updates in G2 — runs
// unchanged on both settings. Constructions that fundamentally require
// symmetry (pairing two G1 points, e.g. the multi-server combined-key
// check or the HIBE/ID-TRE variants) gate on Asymmetric and return
// ErrSymmetricOnly rather than silently computing nonsense.
//
// Points travel as curve.Point values: Type-1 backends use the affine
// big.Int coordinates, asymmetric backends carry an opaque handle in
// the Ext field (see curve.ExtPoint). Mixing points of different
// backends or groups is a programming error and panics.
package backend

import (
	"errors"
	"io"
	"math/big"

	"timedrelease/internal/curve"
)

// Group tags which source group an operation acts in.
type Group uint8

const (
	// G1 is the left pairing argument's group: generators, public keys
	// and ciphertext headers live here (the cheaper group on Type-3
	// curves).
	G1 Group = 1
	// G2 is the right pairing argument's group: hashed time labels and
	// key updates live here. On a Type-1 backend G2 is the same group
	// as G1.
	G2 Group = 2
)

// String names the group for diagnostics.
func (g Group) String() string {
	switch g {
	case G1:
		return "G1"
	case G2:
		return "G2"
	default:
		return "G?"
	}
}

// ErrSymmetricOnly reports a construction that needs a Type-1
// (symmetric) pairing — it pairs two G1 points — running on an
// asymmetric backend. Callers should treat it as a permanent
// configuration error, not a transient failure.
var ErrSymmetricOnly = errors.New("backend: construction requires a Type-1 (symmetric) pairing; this backend is asymmetric")

// GT is an opaque target-group element. Only the backend that produced
// it can operate on it; the GT* methods panic on foreign values.
type GT any

// PointPair is one ê(P, Q) factor of a pairing product; P ∈ G1,
// Q ∈ G2.
type PointPair struct {
	P, Q curve.Point
}

// BaseTable is a fixed-base scalar-multiplication precomputation for
// one point, immutable and safe for concurrent use.
type BaseTable interface {
	// Base returns the table's base point.
	Base() curve.Point
	// IsInfinity reports whether the base point is the identity.
	IsInfinity() bool
}

// PreparedKey is a server verification key (G, sG, sG2) with whatever
// per-backend pairing precomputation pays off for repeated checks. On
// Type-1 backends that is the Miller-loop line schedules of G and sG;
// on Type-3 backends it is the prepared G2 line schedules of the
// generator and sG2. A PreparedKey is immutable and safe for
// concurrent use.
type PreparedKey interface {
	// VerifySig checks the BLS equation ê(G, sig) = ê(sG, h) — the
	// self-authentication of a key update sig = s·h for h = H1(T). It
	// rejects identity or out-of-subgroup sig points. Both h and sig
	// are G2 points.
	VerifySig(h, sig curve.Point) bool

	// SameKey checks the user-key well-formedness equation
	// ê(aG, sG) = ê(G, a·sG) (in Type-3 form: ê(aG, sG2) = ê(asG, G2)),
	// proving asg = a·sG for the same a behind ag. Both arguments are
	// G1 points; subgroup checks are the caller's job.
	SameKey(ag, asg curve.Point) bool

	// VerifyAggregate checks a same-key aggregate signature against
	// already-hashed messages: ê(G, agg) = ê(sG, Σ hᵢ), with the usual
	// identity/subgroup rejection on agg. An empty hash list verifies
	// iff agg is the identity. All points are G2 points.
	VerifyAggregate(hashes []curve.Point, agg curve.Point) bool

	// PairCheck evaluates the bare equation ê(G, sig) = ê(sG, h) with
	// no identity or subgroup validation — for callers (batch
	// verification) that have already validated every constituent
	// point. Both arguments are G2 points.
	PairCheck(h, sig curve.Point) bool
}

// Backend is one complete pairing setting: two source groups, the
// scalar field, serialization, hash-to-G2 and the bilinear pairing.
// Implementations are immutable after construction and safe for
// concurrent use.
type Backend interface {
	// Name identifies the backend ("symmetric/SS512", "bls12381").
	Name() string
	// Asymmetric reports whether G1 and G2 are distinct groups.
	Asymmetric() bool
	// Order returns the prime order r of G1, G2 and GT.
	Order() *big.Int

	// Generator returns the canonical generator of g.
	Generator(g Group) curve.Point
	// Infinity returns the identity of g.
	Infinity(g Group) curve.Point
	// Add returns p+q in g.
	Add(g Group, p, q curve.Point) curve.Point
	// Neg returns −p in g.
	Neg(g Group, p curve.Point) curve.Point
	// ScalarMult returns k·p in g; k must be non-negative and is
	// reduced modulo the group order.
	ScalarMult(g Group, k *big.Int, p curve.Point) curve.Point
	// Equal reports whether p and q are the same point of g.
	Equal(g Group, p, q curve.Point) bool
	// IsOnCurve reports whether p lies on g's curve (infinity counts).
	IsOnCurve(g Group, p curve.Point) bool
	// InSubgroup reports whether p lies in g's prime-order subgroup.
	InSubgroup(g Group, p curve.Point) bool
	// HashToG2 is the paper's H1: a random-oracle hash of (domain, msg)
	// onto G2.
	HashToG2(domain string, msg []byte) curve.Point
	// RandScalar samples a uniform scalar in [1, r−1].
	RandScalar(rng io.Reader) (*big.Int, error)

	// PointLen returns the byte length of g's canonical point encoding.
	PointLen(g Group) int
	// AppendPoint appends the canonical encoding of p to dst.
	AppendPoint(dst []byte, g Group, p curve.Point) []byte
	// ParsePoint decodes a canonical encoding, rejecting anything
	// non-canonical, off-curve or outside the prime-order subgroup.
	ParsePoint(g Group, data []byte) (curve.Point, error)

	// PrecomputeBase builds a fixed-base table for p ∈ g.
	PrecomputeBase(g Group, p curve.Point) BaseTable
	// ScalarMultBase computes k·Base from a fixed-base table; k must be
	// non-negative.
	ScalarMultBase(t BaseTable, k *big.Int) curve.Point

	// Pair computes ê(p, q) for p ∈ G1, q ∈ G2; identity on either side
	// gives 1.
	Pair(p, q curve.Point) GT
	// PairProduct computes Π ê(Pᵢ, Qᵢ) with one shared final
	// exponentiation.
	PairProduct(pairs []PointPair) GT
	// SamePairing reports ê(a1, b1) == ê(a2, b2) for a∈G1, b∈G2,
	// evaluated as one product ê(−a1, b1)·ê(a2, b2) == 1.
	SamePairing(a1, b1, a2, b2 curve.Point) bool
	// PrepareKey precomputes a server verification key for repeated
	// pairing checks. g and sg are G1 points; sg2 = s·G2 is the G2
	// mirror of sg (pass sg itself on a symmetric backend).
	PrepareKey(g, sg, sg2 curve.Point) PreparedKey

	// GTOne returns the identity of the target group.
	GTOne() GT
	// GTEqual reports whether two target-group elements are equal.
	GTEqual(a, b GT) bool
	// GTIsOne reports whether a is the target-group identity.
	GTIsOne(a GT) bool
	// GTMul returns a·b in the target group.
	GTMul(a, b GT) GT
	// GTExpUnitary returns a^k for a unitary a (any pairing output);
	// k must be non-negative.
	GTExpUnitary(a GT, k *big.Int) GT
	// GTBytes returns the canonical fixed-length encoding of a, the
	// input to the scheme's H2 mask derivation.
	GTBytes(a GT) []byte
}

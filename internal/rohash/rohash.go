// Package rohash provides the domain-separated, variable-output hash
// expansion used to instantiate the paper's random oracles H1–H4
// (Section 4 and Section 5.1 of Chan–Blake).
//
// All expansion is SHA-256 in counter mode with unambiguous length
// prefixes: block_j = SHA-256(len(dst)‖dst‖j‖data). Distinct dst strings
// yield independent oracles.
package rohash

import (
	"crypto/sha256"
	"encoding/binary"
	"math/big"
)

// Expand derives outLen bytes from (dst, data). dst is a domain
// separation tag; every logical oracle in the library uses a distinct
// tag.
func Expand(dst string, data []byte, outLen int) []byte {
	if outLen <= 0 {
		return nil
	}
	out := make([]byte, 0, outLen+sha256.Size)
	var ctr [4]byte
	h := sha256.New()
	for j := 0; len(out) < outLen; j++ {
		binary.BigEndian.PutUint32(ctr[:], uint32(j))
		h.Reset()
		var dlen [4]byte
		binary.BigEndian.PutUint32(dlen[:], uint32(len(dst)))
		h.Write(dlen[:])
		h.Write([]byte(dst))
		h.Write(ctr[:])
		h.Write(data)
		out = h.Sum(out)
	}
	return out[:outLen]
}

// ToInt hashes (dst, data) to an integer in [0, mod). It expands to
// 128 bits beyond the modulus size so the reduction bias is negligible.
func ToInt(dst string, data []byte, mod *big.Int) *big.Int {
	n := (mod.BitLen() + 7 + 128) / 8
	raw := Expand(dst, data, n)
	return new(big.Int).Mod(new(big.Int).SetBytes(raw), mod)
}

// ToScalarNonZero hashes (dst, data) to a scalar in [1, q-1], i.e. a
// uniform element of Z_q^* — the range the paper draws encryption
// randomness from.
func ToScalarNonZero(dst string, data []byte, q *big.Int) *big.Int {
	qm1 := new(big.Int).Sub(q, big.NewInt(1))
	r := ToInt(dst, data, qm1)
	return r.Add(r, big.NewInt(1))
}

// Concat is a small helper for building unambiguous multi-part hash
// inputs: each part is prefixed with its 4-byte big-endian length.
func Concat(parts ...[]byte) []byte {
	n := 0
	for _, p := range parts {
		n += 4 + len(p)
	}
	out := make([]byte, 0, n)
	var l [4]byte
	for _, p := range parts {
		binary.BigEndian.PutUint32(l[:], uint32(len(p)))
		out = append(out, l[:]...)
		out = append(out, p...)
	}
	return out
}

// XOR returns dst = a ⊕ b; the arguments must have equal length.
func XOR(a, b []byte) []byte {
	if len(a) != len(b) {
		panic("rohash: XOR length mismatch")
	}
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

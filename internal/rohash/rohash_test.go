package rohash

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"
)

func TestExpandDeterministicAndLength(t *testing.T) {
	for _, n := range []int{1, 31, 32, 33, 64, 1000} {
		a := Expand("dst", []byte("data"), n)
		b := Expand("dst", []byte("data"), n)
		if len(a) != n {
			t.Fatalf("Expand length %d, want %d", len(a), n)
		}
		if !bytes.Equal(a, b) {
			t.Fatal("Expand must be deterministic")
		}
	}
	if Expand("dst", []byte("data"), 0) != nil {
		t.Fatal("Expand with zero length must return nil")
	}
}

func TestExpandDomainSeparation(t *testing.T) {
	a := Expand("dst-1", []byte("data"), 32)
	b := Expand("dst-2", []byte("data"), 32)
	if bytes.Equal(a, b) {
		t.Fatal("different domains must produce different output")
	}
	c := Expand("dst-1", []byte("datb"), 32)
	if bytes.Equal(a, c) {
		t.Fatal("different data must produce different output")
	}
}

func TestExpandPrefixConsistency(t *testing.T) {
	// Counter-mode expansion: a longer output extends a shorter one.
	short := Expand("dst", []byte("x"), 16)
	long := Expand("dst", []byte("x"), 48)
	if !bytes.Equal(short, long[:16]) {
		t.Fatal("shorter expansion must be a prefix of longer")
	}
}

func TestExpandNoLengthExtensionAmbiguity(t *testing.T) {
	// (dst="ab", data="c...") and (dst="a", data="bc...") must differ:
	// the length prefix prevents boundary ambiguity.
	a := Expand("ab", []byte("cd"), 32)
	b := Expand("a", []byte("bcd"), 32)
	if bytes.Equal(a, b) {
		t.Fatal("dst/data boundary is ambiguous")
	}
}

func TestToIntRange(t *testing.T) {
	mod := big.NewInt(1_000_003)
	seen := map[int64]bool{}
	for i := 0; i < 200; i++ {
		v := ToInt("dst", []byte{byte(i), byte(i >> 8)}, mod)
		if v.Sign() < 0 || v.Cmp(mod) >= 0 {
			t.Fatalf("ToInt out of range: %v", v)
		}
		seen[v.Int64()] = true
	}
	if len(seen) < 195 {
		t.Fatalf("ToInt suspiciously collides: %d distinct of 200", len(seen))
	}
}

func TestToScalarNonZeroRange(t *testing.T) {
	q := big.NewInt(101)
	counts := map[int64]int{}
	for i := 0; i < 2000; i++ {
		v := ToScalarNonZero("dst", []byte{byte(i), byte(i >> 8)}, q)
		if v.Sign() <= 0 || v.Cmp(q) >= 0 {
			t.Fatalf("scalar %v out of [1, q-1]", v)
		}
		counts[v.Int64()]++
	}
	// All 100 values of [1,100] should appear with ~20 expected hits each.
	if len(counts) < 90 {
		t.Fatalf("scalar distribution too narrow: %d distinct values", len(counts))
	}
}

func TestConcatUnambiguous(t *testing.T) {
	a := Concat([]byte("ab"), []byte("c"))
	b := Concat([]byte("a"), []byte("bc"))
	if bytes.Equal(a, b) {
		t.Fatal("Concat boundary is ambiguous")
	}
	if Concat() == nil {
		// Zero parts give an empty (non-nil is fine) slice; just ensure no
		// panic and deterministic emptiness.
		t.Log("Concat() is nil — acceptable")
	}
}

func TestXORProperties(t *testing.T) {
	involution := func(a, b []byte) bool {
		if len(a) != len(b) {
			if len(a) > len(b) {
				a = a[:len(b)]
			} else {
				b = b[:len(a)]
			}
		}
		return bytes.Equal(XOR(XOR(a, b), b), a)
	}
	if err := quick.Check(involution, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestXORLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	XOR([]byte{1}, []byte{1, 2})
}

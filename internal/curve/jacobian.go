package curve

import "math/big"

// jacPoint is a point in Jacobian projective coordinates
// (X : Y : Z) ↔ affine (X/Z², Y/Z³); Z = 0 encodes infinity.
// Jacobian arithmetic avoids the per-operation field inversion of the
// affine formulas, which dominates scalar-multiplication cost with
// math/big arithmetic (measured in experiment E4).
type jacPoint struct {
	X, Y, Z *big.Int
}

func jacInfinity() jacPoint {
	return jacPoint{X: big.NewInt(1), Y: big.NewInt(1), Z: new(big.Int)}
}

func (j jacPoint) isInf() bool { return j.Z.Sign() == 0 }

func (c *Curve) toJac(p Point) jacPoint {
	if p.inf {
		return jacInfinity()
	}
	return jacPoint{X: new(big.Int).Set(p.X), Y: new(big.Int).Set(p.Y), Z: big.NewInt(1)}
}

func (c *Curve) fromJac(j jacPoint) Point {
	if j.isInf() {
		return Infinity()
	}
	zInv := c.F.Inv(j.Z)
	zInv2 := c.F.Sqr(zInv)
	x := c.F.Mul(j.X, zInv2)
	y := c.F.Mul(j.Y, c.F.Mul(zInv2, zInv))
	return Point{X: x, Y: y}
}

// jacDouble doubles a Jacobian point on y² = x³ + a·x with a = 1:
//
//	M  = 3X² + a·Z⁴
//	S  = 4XY²
//	X' = M² − 2S
//	Y' = M(S − X') − 8Y⁴
//	Z' = 2YZ
func (c *Curve) jacDouble(p jacPoint) jacPoint {
	if p.isInf() || p.Y.Sign() == 0 {
		return jacInfinity()
	}
	f := c.F
	y2 := f.Sqr(p.Y)
	z2 := f.Sqr(p.Z)
	m := f.Add(f.Mul(big3, f.Sqr(p.X)), f.Sqr(z2)) // a = 1 ⇒ a·Z⁴ = Z⁴
	s := f.Mul(big.NewInt(4), f.Mul(p.X, y2))
	x3 := f.Sub(f.Sqr(m), f.Double(s))
	y4 := f.Sqr(y2)
	y3 := f.Sub(f.Mul(m, f.Sub(s, x3)), f.Mul(big.NewInt(8), y4))
	z3 := f.Double(f.Mul(p.Y, p.Z))
	return jacPoint{X: x3, Y: y3, Z: z3}
}

// jacAdd adds two Jacobian points with the general formulas:
//
//	U1 = X1·Z2², U2 = X2·Z1², S1 = Y1·Z2³, S2 = Y2·Z1³
//	H = U2 − U1, R = S2 − S1
//	X3 = R² − H³ − 2·U1·H², Y3 = R(U1·H² − X3) − S1·H³, Z3 = Z1·Z2·H
func (c *Curve) jacAdd(p, q jacPoint) jacPoint {
	if p.isInf() {
		return q
	}
	if q.isInf() {
		return p
	}
	f := c.F
	z1s := f.Sqr(p.Z)
	z2s := f.Sqr(q.Z)
	u1 := f.Mul(p.X, z2s)
	u2 := f.Mul(q.X, z1s)
	s1 := f.Mul(p.Y, f.Mul(z2s, q.Z))
	s2 := f.Mul(q.Y, f.Mul(z1s, p.Z))
	h := f.Sub(u2, u1)
	r := f.Sub(s2, s1)
	if h.Sign() == 0 {
		if r.Sign() == 0 {
			return c.jacDouble(p)
		}
		return jacInfinity()
	}
	h2 := f.Sqr(h)
	h3 := f.Mul(h2, h)
	u1h2 := f.Mul(u1, h2)
	x3 := f.Sub(f.Sub(f.Sqr(r), h3), f.Double(u1h2))
	y3 := f.Sub(f.Mul(r, f.Sub(u1h2, x3)), f.Mul(s1, h3))
	z3 := f.Mul(f.Mul(p.Z, q.Z), h)
	return jacPoint{X: x3, Y: y3, Z: z3}
}

package curve

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// TestScalarMultBackendsAgree pins the Montgomery ladder (the routed
// ScalarMult) against the big.Int reference on random scalars and
// points, including the structural edge scalars 0, 1, 2, q−1, q, q+1
// and the cofactor.
func TestScalarMultBackendsAgree(t *testing.T) {
	c := testCurve(t)
	if c.F.Mont() == nil {
		t.Fatal("test field has no Montgomery backend")
	}
	g := testGen(t, c)

	scalars := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2), big.NewInt(3),
		new(big.Int).Sub(c.Q, big.NewInt(1)), new(big.Int).Set(c.Q),
		new(big.Int).Add(c.Q, big.NewInt(1)), new(big.Int).Set(c.H),
	}
	for i := 0; i < 40; i++ {
		k, err := c.RandScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		scalars = append(scalars, k)
	}
	for _, k := range scalars {
		want := c.ScalarMultBig(k, g)
		got := c.ScalarMult(k, g)
		if !c.Equal(got, want) {
			t.Fatalf("backend mismatch at k=%v: mont %v, big %v", k, got, want)
		}
		if !c.Equal(c.ScalarMultWNAF(k, g), want) {
			t.Fatalf("wNAF mismatch at k=%v", k)
		}
	}
}

// TestScalarMultMontNonGenerator exercises the Montgomery ladder on
// points outside the subgroup (full-order and 2-torsion structure shows
// up via the cofactor), where intermediate infinities and Y = 0 cases
// are reachable.
func TestScalarMultMontNonGenerator(t *testing.T) {
	c := testCurve(t)
	p, err := c.RandomPoint(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	order := new(big.Int).Add(c.F.P(), big.NewInt(1)) // #E = p+1
	for _, k := range []*big.Int{
		big.NewInt(1), big.NewInt(2), c.H, order,
		new(big.Int).Add(order, big.NewInt(5)),
	} {
		if !c.Equal(c.ScalarMult(k, p), c.ScalarMultBig(k, p)) {
			t.Fatalf("backend mismatch on curve point at k=%v", k)
		}
	}
}

// TestScalarMultBaseMatchesScalarMult is the satellite differential
// test: the fixed-base table path must return exactly ScalarMult's
// result for random and edge scalars.
func TestScalarMultBaseMatchesScalarMult(t *testing.T) {
	c := testCurve(t)
	g := testGen(t, c)
	tab := c.PrecomputeBase(g)
	if tab.IsInfinity() {
		t.Fatal("table for non-identity base reports infinity")
	}
	if !c.Equal(tab.Base(), g) {
		t.Fatal("table base point mismatch")
	}

	scalars := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2),
		big.NewInt(127), big.NewInt(128), // table edge: largest odd multiple
		new(big.Int).Sub(c.Q, big.NewInt(1)), new(big.Int).Set(c.Q),
	}
	for i := 0; i < 40; i++ {
		k, err := c.RandScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		scalars = append(scalars, k)
	}
	for _, k := range scalars {
		want := c.ScalarMult(k, g)
		if got := c.ScalarMultBase(tab, k); !c.Equal(got, want) {
			t.Fatalf("ScalarMultBase mismatch at k=%v: got %v want %v", k, got, want)
		}
	}
}

// TestScalarMultBaseIdentityTable covers the identity base point and
// the negative-scalar panic.
func TestScalarMultBaseIdentityTable(t *testing.T) {
	c := testCurve(t)
	tab := c.PrecomputeBase(Infinity())
	if !tab.IsInfinity() || !tab.Base().IsInfinity() {
		t.Fatal("identity table not flagged")
	}
	if !c.ScalarMultBase(tab, big.NewInt(5)).IsInfinity() {
		t.Fatal("k·∞ must be ∞")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative scalar must panic")
		}
	}()
	g := testGen(t, c)
	c.ScalarMultBase(c.PrecomputeBase(g), big.NewInt(-1))
}

// TestScalarMultBaseLowOrderBase exercises the table ladder on bases
// outside the subgroup, including the 2-torsion point (0, 0) whose
// doublings hit the identity mid-ladder, and a cofactor-order point.
func TestScalarMultBaseLowOrderBase(t *testing.T) {
	c := testCurve(t)
	two, err := c.NewPoint(new(big.Int), new(big.Int)) // (0,0): y²=x³+x holds
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.RandomPoint(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for _, base := range []Point{two, c.ScalarMult(c.Q, p)} {
		tab := c.PrecomputeBase(base)
		for _, k := range []int64{0, 1, 2, 3, 63, 64, 127, 255, 1000} {
			kk := big.NewInt(k)
			if got, want := c.ScalarMultBase(tab, kk), c.ScalarMult(kk, base); !c.Equal(got, want) {
				t.Fatalf("low-order base mismatch at k=%d: got %v want %v", k, got, want)
			}
		}
	}
}

package curve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"

	"timedrelease/internal/rohash"
)

// HashToGroup implements the paper's H1: {0,1}* → G1 — a hash onto the
// order-q subgroup — by try-and-increment plus cofactor clearing:
//
//  1. derive an x-candidate from SHA-256 counter-mode expansion of
//     (dst, counter, msg);
//  2. if x³+x is a non-zero square, take y = √(x³+x) with the parity
//     selected by one more derived bit, giving a point on E(F_p);
//  3. multiply by the cofactor h to land in the subgroup; retry on the
//     (cofactor·point = ∞) edge case.
//
// The dst argument domain-separates the different oracles built from H1
// (time labels, identities, policy conditions, HIBE node labels).
func (c *Curve) HashToGroup(dst string, msg []byte) Point {
	for ctr := uint32(0); ; ctr++ {
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		data := rohash.Concat(cb[:], msg)
		// One extra byte beyond the x-candidate supplies the y-parity bit.
		n := (c.F.BitLen()+7+128)/8 + 1
		raw := rohash.Expand("TRE-H1:"+dst, data, n)
		parity := raw[len(raw)-1] & 1
		x := new(big.Int).Mod(new(big.Int).SetBytes(raw[:len(raw)-1]), c.F.P())
		p, ok := c.pointFromX(x, parity)
		if !ok {
			continue
		}
		g := c.ScalarMult(c.H, p)
		if g.inf {
			continue
		}
		return g
	}
}

// pointFromX lifts an x-candidate to a curve point with the requested
// y parity, reporting false when x³+x is zero or a non-square.
func (c *Curve) pointFromX(x *big.Int, parity byte) (Point, bool) {
	rhs := c.rhs(x)
	if rhs.Sign() == 0 {
		// (x, 0) is a 2-torsion point; useless for the odd-order subgroup.
		return Point{}, false
	}
	y, err := c.F.Sqrt(rhs)
	if err != nil {
		return Point{}, false
	}
	if byte(y.Bit(0)) != parity {
		y = c.F.Neg(y)
	}
	return Point{X: x, Y: y}, true
}

// RandomPoint samples a uniformly random point of E(F_p) (any order) by
// rejection over x. It is used by parameter generation and tests.
func (c *Curve) RandomPoint(rng io.Reader) (Point, error) {
	for {
		x, err := c.F.Rand(rng)
		if err != nil {
			return Point{}, err
		}
		rhs := c.rhs(x)
		if rhs.Sign() == 0 {
			continue
		}
		if c.F.Legendre(rhs) != 1 {
			continue
		}
		y, err := c.F.Sqrt(rhs)
		if err != nil {
			return Point{}, err
		}
		// Randomise the sign of y so both roots are reachable.
		var b [1]byte
		if _, err := io.ReadFull(orRandReader(rng), b[:]); err != nil {
			return Point{}, fmt.Errorf("curve: sampling y sign: %w", err)
		}
		if b[0]&1 == 1 {
			y = c.F.Neg(y)
		}
		return Point{X: x, Y: y}, nil
	}
}

// RandomSubgroupPoint samples a random point of the order-q subgroup by
// cofactor-clearing a random curve point.
func (c *Curve) RandomSubgroupPoint(rng io.Reader) (Point, error) {
	for i := 0; i < 256; i++ {
		p, err := c.RandomPoint(rng)
		if err != nil {
			return Point{}, err
		}
		g := c.ScalarMult(c.H, p)
		if !g.inf {
			return g, nil
		}
	}
	return Point{}, errors.New("curve: could not find subgroup point (bad parameters?)")
}

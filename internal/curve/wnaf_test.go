package curve

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestWNAFRecoding(t *testing.T) {
	// The recoded digits must reconstruct the scalar, with every non-zero
	// digit odd and within (−2^(w−1), 2^(w−1)).
	prop := func(k uint64) bool {
		n := new(big.Int).SetUint64(k)
		digits := wnaf(n, wnafWindow)
		acc := new(big.Int)
		for i := len(digits) - 1; i >= 0; i-- {
			acc.Lsh(acc, 1)
			acc.Add(acc, big.NewInt(int64(digits[i])))
			d := digits[i]
			if d != 0 && (d%2 == 0 || d >= 8 || d <= -8) {
				return false
			}
		}
		return acc.Cmp(n) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScalarMultWNAFMatchesLadder(t *testing.T) {
	c := testCurve(t)
	g := testGen(t, c)
	prop := func(k uint64) bool {
		s := new(big.Int).SetUint64(k)
		return c.Equal(c.ScalarMultWNAF(s, g), c.ScalarMult(s, g))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
	// Full-width scalars too.
	for i := 0; i < 10; i++ {
		k, err := c.RandScalar(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Equal(c.ScalarMultWNAF(k, g), c.ScalarMult(k, g)) {
			t.Fatalf("wNAF disagrees with ladder for %v", k)
		}
	}
}

func TestScalarMultWNAFEdgeCases(t *testing.T) {
	c := testCurve(t)
	g := testGen(t, c)
	if !c.ScalarMultWNAF(new(big.Int), g).IsInfinity() {
		t.Fatal("0·g != ∞")
	}
	if !c.Equal(c.ScalarMultWNAF(big.NewInt(1), g), g) {
		t.Fatal("1·g != g")
	}
	if !c.ScalarMultWNAF(big.NewInt(7), Infinity()).IsInfinity() {
		t.Fatal("k·∞ != ∞")
	}
	if !c.ScalarMultWNAF(c.Q, g).IsInfinity() {
		t.Fatal("q·g != ∞")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative scalar must panic")
		}
	}()
	c.ScalarMultWNAF(big.NewInt(-2), g)
}

package curve

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
)

// Compressed point encoding tags. The encoding is 1+ByteLen bytes:
// tag ‖ x, where the tag carries the parity of y (SEC1-style), or an
// all-zero body with tagInfinity for the identity.
const (
	tagInfinity byte = 0x00
	tagEvenY    byte = 0x02
	tagOddY     byte = 0x03
)

// MarshalSize returns the size of a compressed point encoding.
func (c *Curve) MarshalSize() int { return 1 + c.F.ByteLen() }

// Marshal returns the canonical compressed encoding of p.
func (c *Curve) Marshal(p Point) []byte {
	return c.AppendMarshal(make([]byte, 0, c.MarshalSize()), p)
}

// AppendMarshal appends the canonical compressed encoding of p to dst
// and returns the extended slice. When dst has MarshalSize spare
// capacity — e.g. a stack buffer — the call performs no heap
// allocation, which is what the scheme-level cache keys rely on.
func (c *Curve) AppendMarshal(dst []byte, p Point) []byte {
	n := c.MarshalSize()
	off := len(dst)
	if cap(dst)-off >= n {
		dst = dst[:off+n]
		clear(dst[off:])
	} else {
		dst = append(dst, make([]byte, n)...)
	}
	out := dst[off:]
	if p.inf {
		out[0] = tagInfinity
		return dst
	}
	if p.Y.Bit(0) == 1 {
		out[0] = tagOddY
	} else {
		out[0] = tagEvenY
	}
	p.X.FillBytes(out[1:])
	return dst
}

// Unmarshal decodes a compressed encoding, rejecting anything that is
// not the canonical encoding of a point on the curve.
func (c *Curve) Unmarshal(b []byte) (Point, error) {
	if len(b) != c.MarshalSize() {
		return Point{}, fmt.Errorf("curve: encoding is %d bytes, want %d", len(b), c.MarshalSize())
	}
	switch b[0] {
	case tagInfinity:
		for _, v := range b[1:] {
			if v != 0 {
				return Point{}, errors.New("curve: non-zero body on infinity encoding")
			}
		}
		return Infinity(), nil
	case tagEvenY, tagOddY:
		x, err := c.F.SetBytes(b[1:])
		if err != nil {
			return Point{}, fmt.Errorf("curve: bad x coordinate: %w", err)
		}
		p, ok := c.pointFromX(x, b[0]&1)
		if !ok {
			return Point{}, errors.New("curve: x coordinate is not on the curve")
		}
		return p, nil
	default:
		return Point{}, fmt.Errorf("curve: unknown point encoding tag %#x", b[0])
	}
}

// UnmarshalSubgroup decodes a compressed encoding and additionally
// verifies subgroup membership; use it for all untrusted inputs.
func (c *Curve) UnmarshalSubgroup(b []byte) (Point, error) {
	p, err := c.Unmarshal(b)
	if err != nil {
		return Point{}, err
	}
	if !p.inf && !c.InSubgroup(p) {
		return Point{}, errors.New("curve: point is not in the prime-order subgroup")
	}
	return p, nil
}

// orRandReader substitutes crypto/rand.Reader for a nil reader.
func orRandReader(rng io.Reader) io.Reader {
	if rng == nil {
		return rand.Reader
	}
	return rng
}

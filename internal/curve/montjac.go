package curve

import (
	"math/big"

	"timedrelease/internal/ff"
)

// jacMontPoint is a Jacobian point on Montgomery limb vectors:
// (X : Y : Z) ↔ affine (X/Z², Y/Z³), Z = 0 encoding infinity, with
// every coordinate in the Montgomery domain of the base field. It is
// the limb-backend twin of jacPoint; the two arithmetic sets are kept
// formula-for-formula parallel and pinned to exact agreement by the
// differential tests.
type jacMontPoint struct {
	X, Y, Z ff.MontElem
}

func newJacMontPoint(m *ff.Mont) jacMontPoint {
	return jacMontPoint{X: m.NewElem(), Y: m.NewElem(), Z: m.NewElem()}
}

// newJacMontPointIn carves the point's coordinates out of a pooled
// arena; valid until the arena is released.
func newJacMontPointIn(a *ff.Arena) jacMontPoint {
	return jacMontPoint{X: a.Elem(), Y: a.Elem(), Z: a.Elem()}
}

// jacMontOps bundles the Montgomery context with scratch limbs so the
// ladder allocates a fixed set of vectors once per scalar
// multiplication instead of per point operation.
type jacMontOps struct {
	m                          *ff.Mont
	t1, t2, t3, t4, t5, t6, t7 ff.MontElem
}

func newJacMontOps(m *ff.Mont) *jacMontOps {
	return &jacMontOps{
		m:  m,
		t1: m.NewElem(), t2: m.NewElem(), t3: m.NewElem(), t4: m.NewElem(),
		t5: m.NewElem(), t6: m.NewElem(), t7: m.NewElem(),
	}
}

// jacMontOpsIn fills o with scratch carved from a pooled arena so a
// whole scalar multiplication allocates nothing; o itself lives on the
// caller's stack and must not outlive the arena.
func jacMontOpsIn(o *jacMontOps, m *ff.Mont, a *ff.Arena) {
	o.m = m
	o.t1, o.t2, o.t3, o.t4 = a.Elem(), a.Elem(), a.Elem(), a.Elem()
	o.t5, o.t6, o.t7 = a.Elem(), a.Elem(), a.Elem()
}

func (o *jacMontOps) setInfinity(dst jacMontPoint) {
	o.m.SetOne(dst.X)
	o.m.SetOne(dst.Y)
	o.m.SetZero(dst.Z)
}

func (o *jacMontOps) set(dst, p jacMontPoint) {
	o.m.Set(dst.X, p.X)
	o.m.Set(dst.Y, p.Y)
	o.m.Set(dst.Z, p.Z)
}

// double computes dst = 2p with the jacDouble formulas (a = 1):
//
//	M  = 3X² + Z⁴,  S = 4XY²
//	X' = M² − 2S,  Y' = M(S − X') − 8Y⁴,  Z' = 2YZ
//
// dst may alias p.
func (o *jacMontOps) double(dst, p jacMontPoint) {
	m := o.m
	if m.IsZero(p.Z) || m.IsZero(p.Y) {
		o.setInfinity(dst)
		return
	}
	y2 := o.t1
	m.Sqr(y2, p.Y) // Y²
	mm := o.t2
	m.Sqr(mm, p.Z)
	m.Sqr(mm, mm) // Z⁴ (a = 1 ⇒ a·Z⁴ = Z⁴)
	x2 := o.t3
	m.Sqr(x2, p.X)
	m.Add(mm, mm, x2)
	m.Add(mm, mm, x2)
	m.Add(mm, mm, x2) // M = 3X² + Z⁴
	s := o.t4
	m.Mul(s, p.X, y2)
	m.Double(s, s)
	m.Double(s, s) // S = 4XY²
	zNew := o.t5
	m.Mul(zNew, p.Y, p.Z)
	m.Double(zNew, zNew) // Z' = 2YZ

	// All reads of p are done; dst may alias it from here.
	m.Sqr(dst.X, mm)
	m.Sub(dst.X, dst.X, s)
	m.Sub(dst.X, dst.X, s) // X' = M² − 2S
	m.Sqr(y2, y2)
	m.Double(y2, y2)
	m.Double(y2, y2)
	m.Double(y2, y2)        // 8Y⁴
	m.Sub(s, s, dst.X)      // S − X'
	m.Mul(dst.Y, mm, s)     //
	m.Sub(dst.Y, dst.Y, y2) // Y' = M(S − X') − 8Y⁴
	m.Set(dst.Z, zNew)
}

// add computes dst = p + q with the general jacAdd formulas:
//
//	U1 = X1·Z2², U2 = X2·Z1², S1 = Y1·Z2³, S2 = Y2·Z1³
//	H = U2 − U1, R = S2 − S1
//	X3 = R² − H³ − 2·U1·H², Y3 = R(U1·H² − X3) − S1·H³, Z3 = Z1·Z2·H
//
// dst may alias p; it must not alias q.
func (o *jacMontOps) add(dst, p, q jacMontPoint) {
	m := o.m
	if m.IsZero(p.Z) {
		o.set(dst, q)
		return
	}
	if m.IsZero(q.Z) {
		o.set(dst, p)
		return
	}
	z1s := o.t1
	m.Sqr(z1s, p.Z) // Z1²
	z2s := o.t2
	m.Sqr(z2s, q.Z) // Z2²
	u1 := o.t3
	m.Mul(u1, p.X, z2s) // U1
	u2 := o.t4
	m.Mul(u2, q.X, z1s) // U2
	s1 := o.t5
	m.Mul(s1, z2s, q.Z)
	m.Mul(s1, p.Y, s1) // S1
	s2 := o.t6
	m.Mul(s2, z1s, p.Z)
	m.Mul(s2, q.Y, s2) // S2
	h := u2
	m.Sub(h, u2, u1) // H = U2 − U1
	r := s2
	m.Sub(r, s2, s1) // R = S2 − S1
	if m.IsZero(h) {
		if m.IsZero(r) {
			o.double(dst, p)
			return
		}
		o.setInfinity(dst)
		return
	}
	zNew := o.t7
	m.Mul(zNew, p.Z, q.Z)
	m.Mul(zNew, zNew, h) // Z3 = Z1·Z2·H
	h2 := z1s
	m.Sqr(h2, h) // H² (Z1² dead)
	m.Mul(u1, u1, h2)
	m.Mul(h2, h2, h) // H³ (H² dead after U1·H²)
	m.Mul(s1, s1, h2)

	// All reads of p are done; dst may alias it from here.
	m.Sqr(dst.X, r)
	m.Sub(dst.X, dst.X, h2)
	m.Sub(dst.X, dst.X, u1)
	m.Sub(dst.X, dst.X, u1) // X3 = R² − H³ − 2·U1·H²
	m.Sub(u1, u1, dst.X)    // U1·H² − X3
	m.Mul(dst.Y, r, u1)
	m.Sub(dst.Y, dst.Y, s1) // Y3 = R(U1·H² − X3) − S1·H³
	m.Set(dst.Z, zNew)
}

// toJacMont converts a non-identity affine point to Montgomery Jacobian
// form (Z = 1).
func (o *jacMontOps) toJacMont(p Point) jacMontPoint {
	j := newJacMontPoint(o.m)
	o.m.ToMont(j.X, p.X)
	o.m.ToMont(j.Y, p.Y)
	o.m.SetOne(j.Z)
	return j
}

// toJacMontIn is toJacMont with the coordinates carved from a.
func (o *jacMontOps) toJacMontIn(p Point, a *ff.Arena) jacMontPoint {
	j := newJacMontPointIn(a)
	o.m.ToMont(j.X, p.X)
	o.m.ToMont(j.Y, p.Y)
	o.m.SetOne(j.Z)
	return j
}

// fromJacMont normalises to affine with one Montgomery inversion and
// converts back to big.Int coordinates at the boundary.
func (o *jacMontOps) fromJacMont(j jacMontPoint) Point {
	m := o.m
	if m.IsZero(j.Z) {
		return Infinity()
	}
	zi := o.t1
	m.Inv(zi, j.Z)
	zi2 := o.t2
	m.Sqr(zi2, zi)
	x := o.t3
	m.Mul(x, j.X, zi2)
	m.Mul(zi2, zi2, zi) // Z⁻³
	y := o.t4
	m.Mul(y, j.Y, zi2)
	return Point{X: m.FromMont(nil, x), Y: m.FromMont(nil, y)}
}

// scalarMultMont is ScalarMult on the Montgomery backend: the same
// most-significant-bit-first double-and-add walk as ScalarMultBig, on
// limb vectors, with one inversion and two conversions at the end.
// k > 0 and p non-identity are the caller's invariants.
func (c *Curve) scalarMultMont(m *ff.Mont, k *big.Int, p Point) Point {
	a := m.GetArena()
	defer a.Release()
	var o jacMontOps
	jacMontOpsIn(&o, m, a)
	base := o.toJacMontIn(p, a)
	acc := newJacMontPointIn(a)
	o.setInfinity(acc)
	for i := k.BitLen() - 1; i >= 0; i-- {
		o.double(acc, acc)
		if k.Bit(i) == 1 {
			o.add(acc, acc, base)
		}
	}
	return o.fromJacMont(acc)
}

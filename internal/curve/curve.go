// Package curve implements the supersingular elliptic curve
//
//	E: y² = x³ + x  over F_p,  p ≡ 3 (mod 4)
//
// which is the Gap Diffie-Hellman group G1 of the paper. The curve has
// exactly p+1 points over F_p and embedding degree 2; a prime q | p+1
// defines the order-q subgroup the schemes operate in, and the
// distortion map ψ(x, y) = (−x, i·y) into E(F_{p²}) makes the Tate
// pairing symmetric (Type-1).
//
// The package provides affine and Jacobian arithmetic, scalar
// multiplication, hashing to the subgroup (the paper's H1), and a
// canonical compressed point encoding.
package curve

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"timedrelease/internal/ff"
)

var (
	big1 = big.NewInt(1)
	big3 = big.NewInt(3)
)

// Curve binds the base field to the subgroup structure q·h = p+1.
type Curve struct {
	F *ff.Field // base field F_p
	Q *big.Int  // prime order of the working subgroup
	H *big.Int  // cofactor, q·h = p+1

	qField *ff.Field // scalar field Z_q, built once at construction
}

// Point is an affine point on E, or the point at infinity.
// The zero value is the point at infinity.
//
// Points of non-Type-1 backends (internal/backend) reuse this struct
// as their transport type: they carry an opaque handle in Ext and
// leave X and Y nil. Such points flow only through their own backend's
// operations; the Type-1 arithmetic in this package never sees them.
type Point struct {
	X, Y *big.Int
	inf  bool

	// Ext is the opaque external-backend point, nil for Type-1 points.
	Ext ExtPoint
}

// ExtPoint is the handle an external (asymmetric) pairing backend
// stores inside a Point. Implementations are immutable.
type ExtPoint interface {
	// ExtBackend names the owning backend, for diagnostics.
	ExtBackend() string
	// ExtGroup returns the source group (1 or 2) the point belongs to.
	ExtGroup() int
}

// NewExtPoint wraps an external-backend point handle. isInf mirrors
// the backend's identity flag so Point.IsInfinity answers uniformly
// across backends.
func NewExtPoint(e ExtPoint, isInf bool) Point {
	return Point{Ext: e, inf: isInf}
}

// New returns a curve context after checking the structural relation
// q·h = p+1 and that p ≡ 3 (mod 4) (supersingularity of y² = x³+x).
func New(f *ff.Field, q, h *big.Int) (*Curve, error) {
	if f == nil || q == nil || h == nil {
		return nil, errors.New("curve: nil parameter")
	}
	p := f.P()
	if new(big.Int).Mod(p, big.NewInt(4)).Cmp(big3) != 0 {
		return nil, errors.New("curve: p ≡ 3 (mod 4) required for supersingular y²=x³+x")
	}
	prod := new(big.Int).Mul(q, h)
	if prod.Cmp(new(big.Int).Add(p, big1)) != 0 {
		return nil, errors.New("curve: group order mismatch, need q·h = p+1")
	}
	if q.Bit(0) == 0 {
		return nil, errors.New("curve: subgroup order q must be odd")
	}
	qf, err := ff.NewField(q)
	if err != nil {
		return nil, fmt.Errorf("curve: subgroup order: %w", err)
	}
	return &Curve{F: f, Q: new(big.Int).Set(q), H: new(big.Int).Set(h), qField: qf}, nil
}

// ScalarField returns the arithmetic context for Z_q, the scalar field
// of the working subgroup.
func (c *Curve) ScalarField() *ff.Field { return c.qField }

// Infinity returns the point at infinity (the group identity).
func Infinity() Point { return Point{inf: true} }

// NewPoint returns the affine point (x, y) after an on-curve check.
func (c *Curve) NewPoint(x, y *big.Int) (Point, error) {
	p := Point{X: c.F.Reduce(x), Y: c.F.Reduce(y)}
	if !c.IsOnCurve(p) {
		return Point{}, errors.New("curve: point is not on the curve")
	}
	return p, nil
}

// IsInfinity reports whether p is the identity.
func (p Point) IsInfinity() bool { return p.inf }

// rhs returns x³ + x mod p.
func (c *Curve) rhs(x *big.Int) *big.Int {
	x3 := c.F.Mul(c.F.Sqr(x), x)
	return c.F.Add(x3, x)
}

// IsOnCurve reports whether p satisfies the curve equation (infinity is
// on the curve).
func (c *Curve) IsOnCurve(p Point) bool {
	if p.inf {
		return true
	}
	if !c.F.IsResidue(p.X) || !c.F.IsResidue(p.Y) {
		return false
	}
	return c.F.Equal(c.F.Sqr(p.Y), c.rhs(p.X))
}

// InSubgroup reports whether p lies in the order-q subgroup.
func (c *Curve) InSubgroup(p Point) bool {
	if !c.IsOnCurve(p) {
		return false
	}
	return c.ScalarMult(c.Q, p).inf
}

// Equal reports whether two points are equal.
func (c *Curve) Equal(p, q Point) bool {
	if p.inf || q.inf {
		return p.inf == q.inf
	}
	return p.X.Cmp(q.X) == 0 && p.Y.Cmp(q.Y) == 0
}

// Neg returns -p.
func (c *Curve) Neg(p Point) Point {
	if p.inf {
		return p
	}
	return Point{X: new(big.Int).Set(p.X), Y: c.F.Neg(p.Y)}
}

// Add returns p+q using affine formulas.
func (c *Curve) Add(p, q Point) Point {
	if p.inf {
		return q
	}
	if q.inf {
		return p
	}
	if p.X.Cmp(q.X) == 0 {
		if p.Y.Cmp(q.Y) != 0 || p.Y.Sign() == 0 {
			// q = -p (or doubling a 2-torsion point): identity.
			return Infinity()
		}
		return c.Double(p)
	}
	lambda := c.F.Mul(c.F.Sub(q.Y, p.Y), c.F.Inv(c.F.Sub(q.X, p.X)))
	return c.chord(p, q, lambda)
}

// Double returns 2p using affine formulas. The tangent slope for
// y² = x³ + x is (3x² + 1)/(2y).
func (c *Curve) Double(p Point) Point {
	if p.inf || p.Y.Sign() == 0 {
		return Infinity()
	}
	num := c.F.Add(c.F.Mul(big3, c.F.Sqr(p.X)), big1)
	lambda := c.F.Mul(num, c.F.Inv(c.F.Double(p.Y)))
	return c.chord(p, p, lambda)
}

// chord completes an affine add/double given the line slope λ through
// p and q: x3 = λ² − x_p − x_q, y3 = λ(x_p − x3) − y_p.
func (c *Curve) chord(p, q Point, lambda *big.Int) Point {
	x3 := c.F.Sub(c.F.Sub(c.F.Sqr(lambda), p.X), q.X)
	y3 := c.F.Sub(c.F.Mul(lambda, c.F.Sub(p.X, x3)), p.Y)
	return Point{X: x3, Y: y3}
}

// Sub returns p−q.
func (c *Curve) Sub(p, q Point) Point { return c.Add(p, c.Neg(q)) }

// ScalarMult returns k·p. Scalars may be any non-negative integer; they
// are used as-is (callers working in the subgroup reduce mod q). The
// computation uses Jacobian coordinates with a single final inversion,
// on the Montgomery limb backend when the field provides one and on the
// big.Int reference ladder (ScalarMultBig) otherwise. The two paths
// return identical points.
func (c *Curve) ScalarMult(k *big.Int, p Point) Point {
	if k.Sign() < 0 {
		panic("curve: negative scalar")
	}
	if k.Sign() == 0 || p.inf {
		return Infinity()
	}
	if m := c.F.Mont(); m != nil {
		return c.scalarMultMont(m, k, p)
	}
	return c.ScalarMultBig(k, p)
}

// ScalarMultBig is the big.Int reference Jacobian ladder. It computes
// the same result as ScalarMult and pins the Montgomery backend in the
// differential tests and the backend ablation of experiment E4.
func (c *Curve) ScalarMultBig(k *big.Int, p Point) Point {
	if k.Sign() < 0 {
		panic("curve: negative scalar")
	}
	if k.Sign() == 0 || p.inf {
		return Infinity()
	}
	acc := jacInfinity()
	base := c.toJac(p)
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc = c.jacDouble(acc)
		if k.Bit(i) == 1 {
			acc = c.jacAdd(acc, base)
		}
	}
	return c.fromJac(acc)
}

// ScalarMultAffine is the pure-affine double-and-add ladder. It computes
// the same result as ScalarMult and exists for the coordinate-system
// ablation in experiment E4.
func (c *Curve) ScalarMultAffine(k *big.Int, p Point) Point {
	if k.Sign() < 0 {
		panic("curve: negative scalar")
	}
	acc := Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc = c.Double(acc)
		if k.Bit(i) == 1 {
			acc = c.Add(acc, p)
		}
	}
	return acc
}

// RandScalar returns a uniform scalar in Z_q^* — the range from which
// the paper draws private keys and encryption randomness. The scalar
// field context is cached on the curve (this is hit once per Encrypt
// and keygen).
func (c *Curve) RandScalar(rng io.Reader) (*big.Int, error) {
	return c.qField.RandNonZero(rng)
}

// Clone returns an independent copy of p. External-backend points are
// immutable, so their handle is shared.
func (p Point) Clone() Point {
	if p.Ext != nil {
		return p
	}
	if p.inf {
		return Infinity()
	}
	return Point{X: new(big.Int).Set(p.X), Y: new(big.Int).Set(p.Y)}
}

// String renders the point for debugging.
func (p Point) String() string {
	if p.Ext != nil {
		return fmt.Sprintf("%s/G%d point", p.Ext.ExtBackend(), p.Ext.ExtGroup())
	}
	if p.inf {
		return "∞"
	}
	return fmt.Sprintf("(%v, %v)", p.X, p.Y)
}

package curve

import "math/big"

// wnafWindow is the window width for ScalarMultWNAF. Width 4 gives
// 2^(4-2) = 4 precomputed odd multiples and cuts the expected number of
// additions from m/2 (double-and-add) to ~m/5 for an m-bit scalar.
const wnafWindow = 4

// ScalarMultWNAF computes k·p with the windowed non-adjacent form:
// precompute the odd multiples {1,3,5,7}·p, recode the scalar so that
// non-zero digits are odd, signed, and separated by ≥ w−1 zeros, then
// run one doubling per bit and one (signed) addition per non-zero
// digit. It returns exactly ScalarMult's result (property-tested) and
// exists for the E4 ablation; ScalarMult remains the plain ladder so
// the two are independently auditable.
func (c *Curve) ScalarMultWNAF(k *big.Int, p Point) Point {
	if k.Sign() < 0 {
		panic("curve: negative scalar")
	}
	if k.Sign() == 0 || p.IsInfinity() {
		return Infinity()
	}

	// Precompute odd multiples 1p, 3p, 5p, 7p in Jacobian form.
	const tableSize = 1 << (wnafWindow - 2)
	table := make([]jacPoint, tableSize)
	table[0] = c.toJac(p)
	twoP := c.jacDouble(table[0])
	for i := 1; i < tableSize; i++ {
		table[i] = c.jacAdd(table[i-1], twoP)
	}
	// Negatives are cheap: negate Y on demand.
	negate := func(j jacPoint) jacPoint {
		return jacPoint{X: j.X, Y: c.F.Neg(j.Y), Z: j.Z}
	}

	digits := wnaf(k, wnafWindow)
	acc := jacInfinity()
	for i := len(digits) - 1; i >= 0; i-- {
		acc = c.jacDouble(acc)
		switch d := digits[i]; {
		case d > 0:
			acc = c.jacAdd(acc, table[(d-1)/2])
		case d < 0:
			acc = c.jacAdd(acc, negate(table[(-d-1)/2]))
		}
	}
	return c.fromJac(acc)
}

// wnaf returns the width-w non-adjacent form of k, least significant
// digit first. Digits are zero or odd in (−2^(w−1), 2^(w−1)).
func wnaf(k *big.Int, w uint) []int {
	n := new(big.Int).Set(k)
	mod := int64(1) << w        // 2^w
	half := int64(1) << (w - 1) // 2^(w-1)
	var digits []int
	for n.Sign() > 0 {
		if n.Bit(0) == 1 {
			// d = n mod 2^w, mapped into (−2^(w−1), 2^(w−1)].
			d := int64(0)
			for i := uint(0); i < w; i++ {
				d |= int64(n.Bit(int(i))) << i
			}
			if d >= half {
				d -= mod
			}
			digits = append(digits, int(d))
			if d > 0 {
				n.Sub(n, big.NewInt(d))
			} else {
				n.Add(n, big.NewInt(-d))
			}
		} else {
			digits = append(digits, 0)
		}
		n.Rsh(n, 1)
	}
	return digits
}

package curve

import (
	"math/big"
	"testing"
	"testing/quick"

	"timedrelease/internal/ff"
)

// Small but realistic test parameters: p = h·q − 1 with p ≡ 3 (mod 4).
// Generated once with the params generator at 96/48 bits and inlined so
// this package has no dependency on internal/params (which depends on
// us).
var (
	testP = mustInt("8f98a3660038a5b78edf9f53", 16)
	testQ = mustInt("922af50d1a7f", 16)
)

func mustInt(s string, base int) *big.Int {
	n, ok := new(big.Int).SetString(s, base)
	if !ok {
		panic("bad literal: " + s)
	}
	return n
}

func testCurve(t *testing.T) *Curve {
	t.Helper()
	f, err := ff.NewField(testP)
	if err != nil {
		t.Fatalf("NewField: %v", err)
	}
	pp1 := new(big.Int).Add(testP, big.NewInt(1))
	h := new(big.Int).Quo(pp1, testQ)
	c, err := New(f, testQ, h)
	if err != nil {
		t.Fatalf("curve.New: %v", err)
	}
	return c
}

func testGen(t *testing.T, c *Curve) Point {
	t.Helper()
	g, err := c.RandomSubgroupPoint(nil)
	if err != nil {
		t.Fatalf("RandomSubgroupPoint: %v", err)
	}
	return g
}

func TestNewRejectsBadStructure(t *testing.T) {
	f, err := ff.NewField(testP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(f, testQ, big.NewInt(12)); err == nil {
		t.Fatal("wrong cofactor must be rejected")
	}
	if _, err := New(nil, testQ, testQ); err == nil {
		t.Fatal("nil field must be rejected")
	}
	// p ≡ 1 (mod 4) must be rejected.
	f5, err := ff.NewField(big.NewInt(13))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(f5, big.NewInt(7), big.NewInt(2)); err == nil {
		t.Fatal("p ≡ 1 (mod 4) must be rejected")
	}
}

func TestGroupLaws(t *testing.T) {
	c := testCurve(t)
	p1 := testGen(t, c)
	p2 := testGen(t, c)
	p3 := testGen(t, c)

	// Identity.
	if !c.Equal(c.Add(p1, Infinity()), p1) || !c.Equal(c.Add(Infinity(), p1), p1) {
		t.Fatal("infinity is not the identity")
	}
	// Inverse.
	if !c.Add(p1, c.Neg(p1)).IsInfinity() {
		t.Fatal("p + (-p) != ∞")
	}
	// Commutativity.
	if !c.Equal(c.Add(p1, p2), c.Add(p2, p1)) {
		t.Fatal("addition is not commutative")
	}
	// Associativity.
	l := c.Add(c.Add(p1, p2), p3)
	r := c.Add(p1, c.Add(p2, p3))
	if !c.Equal(l, r) {
		t.Fatal("addition is not associative")
	}
	// Doubling is p+p.
	if !c.Equal(c.Double(p1), c.Add(p1, p1.Clone())) {
		t.Fatal("Double(p) != p+p (via distinct-x path)")
	}
	// Results stay on the curve.
	for _, pt := range []Point{l, c.Double(p1), c.Neg(p2)} {
		if !c.IsOnCurve(pt) {
			t.Fatal("group operation left the curve")
		}
	}
}

func TestScalarMultProperties(t *testing.T) {
	c := testCurve(t)
	g := testGen(t, c)
	cfg := &quick.Config{MaxCount: 40}

	// (k1 + k2)·g == k1·g + k2·g
	additive := func(k1, k2 uint32) bool {
		a, b := big.NewInt(int64(k1)), big.NewInt(int64(k2))
		lhs := c.ScalarMult(new(big.Int).Add(a, b), g)
		rhs := c.Add(c.ScalarMult(a, g), c.ScalarMult(b, g))
		return c.Equal(lhs, rhs)
	}
	if err := quick.Check(additive, cfg); err != nil {
		t.Error(err)
	}

	// (k1·k2)·g == k1·(k2·g)
	multiplicative := func(k1, k2 uint32) bool {
		a, b := big.NewInt(int64(k1)), big.NewInt(int64(k2))
		lhs := c.ScalarMult(new(big.Int).Mul(a, b), g)
		rhs := c.ScalarMult(a, c.ScalarMult(b, g))
		return c.Equal(lhs, rhs)
	}
	if err := quick.Check(multiplicative, cfg); err != nil {
		t.Error(err)
	}

	// Jacobian and affine ladders agree.
	agree := func(k uint32) bool {
		s := big.NewInt(int64(k))
		return c.Equal(c.ScalarMult(s, g), c.ScalarMultAffine(s, g))
	}
	if err := quick.Check(agree, cfg); err != nil {
		t.Error(err)
	}
}

func TestScalarMultEdgeCases(t *testing.T) {
	c := testCurve(t)
	g := testGen(t, c)
	if !c.ScalarMult(new(big.Int), g).IsInfinity() {
		t.Fatal("0·g != ∞")
	}
	if !c.Equal(c.ScalarMult(big.NewInt(1), g), g) {
		t.Fatal("1·g != g")
	}
	if !c.ScalarMult(big.NewInt(5), Infinity()).IsInfinity() {
		t.Fatal("k·∞ != ∞")
	}
	// Subgroup order annihilates.
	if !c.ScalarMult(c.Q, g).IsInfinity() {
		t.Fatal("q·g != ∞")
	}
	// (q-1)·g == -g
	qm1 := new(big.Int).Sub(c.Q, big.NewInt(1))
	if !c.Equal(c.ScalarMult(qm1, g), c.Neg(g)) {
		t.Fatal("(q-1)·g != -g")
	}
	// Full group order annihilates any point.
	p, err := c.RandomPoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	n := new(big.Int).Add(c.F.P(), big.NewInt(1))
	if !c.ScalarMult(n, p).IsInfinity() {
		t.Fatal("(p+1)·P != ∞ — curve is not supersingular?")
	}
}

func TestNegativeScalarPanics(t *testing.T) {
	c := testCurve(t)
	g := testGen(t, c)
	defer func() {
		if recover() == nil {
			t.Fatal("negative scalar must panic")
		}
	}()
	c.ScalarMult(big.NewInt(-1), g)
}

func TestInSubgroup(t *testing.T) {
	c := testCurve(t)
	g := testGen(t, c)
	if !c.InSubgroup(g) || !c.InSubgroup(Infinity()) {
		t.Fatal("subgroup membership false negative")
	}
	// A random curve point is in the subgroup only with probability 1/h;
	// find one outside.
	found := false
	for i := 0; i < 64; i++ {
		p, err := c.RandomPoint(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !c.InSubgroup(p) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("could not find a point outside the subgroup (h is large, so this is a bug)")
	}
}

func TestNewPointValidates(t *testing.T) {
	c := testCurve(t)
	g := testGen(t, c)
	if _, err := c.NewPoint(g.X, g.Y); err != nil {
		t.Fatalf("NewPoint of on-curve point: %v", err)
	}
	bad := new(big.Int).Add(g.Y, big.NewInt(1))
	if _, err := c.NewPoint(g.X, bad); err == nil {
		t.Fatal("off-curve point must be rejected")
	}
}

func TestHashToGroupProperties(t *testing.T) {
	c := testCurve(t)
	h1 := c.HashToGroup("dst", []byte("message"))
	h2 := c.HashToGroup("dst", []byte("message"))
	if !c.Equal(h1, h2) {
		t.Fatal("hash must be deterministic")
	}
	if !c.InSubgroup(h1) || h1.IsInfinity() {
		t.Fatal("hash output must be a non-identity subgroup point")
	}
	h3 := c.HashToGroup("dst", []byte("other message"))
	if c.Equal(h1, h3) {
		t.Fatal("distinct messages must hash to distinct points")
	}
	h4 := c.HashToGroup("other-dst", []byte("message"))
	if c.Equal(h1, h4) {
		t.Fatal("distinct domains must hash to distinct points")
	}
}

func TestHashToGroupManyInputsStayOnCurve(t *testing.T) {
	c := testCurve(t)
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		p := c.HashToGroup("spread", []byte{byte(i), byte(i >> 4)})
		if !c.InSubgroup(p) {
			t.Fatal("hash output outside subgroup")
		}
		seen[p.String()] = true
	}
	if len(seen) != 64 {
		t.Fatalf("hash collisions among 64 inputs: %d distinct", len(seen))
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c := testCurve(t)
	pts := []Point{testGen(t, c), Infinity()}
	for i := 0; i < 16; i++ {
		pts = append(pts, c.HashToGroup("marshal", []byte{byte(i)}))
	}
	for _, p := range pts {
		enc := c.Marshal(p)
		if len(enc) != c.MarshalSize() {
			t.Fatalf("encoding size %d, want %d", len(enc), c.MarshalSize())
		}
		back, err := c.Unmarshal(enc)
		if err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		if !c.Equal(p, back) {
			t.Fatal("marshal round trip mismatch")
		}
		back2, err := c.UnmarshalSubgroup(enc)
		if err != nil {
			t.Fatalf("UnmarshalSubgroup: %v", err)
		}
		if !c.Equal(p, back2) {
			t.Fatal("subgroup unmarshal mismatch")
		}
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	c := testCurve(t)
	g := testGen(t, c)

	cases := map[string][]byte{
		"short":            {0x02, 0x01},
		"bad tag":          append([]byte{0x07}, c.Marshal(g)[1:]...),
		"nonzero infinity": func() []byte { b := c.Marshal(Infinity()); b[3] = 1; return b }(),
		"x >= p":           append([]byte{0x02}, c.F.P().FillBytes(make([]byte, c.F.ByteLen()))...),
	}
	for name, enc := range cases {
		if _, err := c.Unmarshal(enc); err == nil {
			t.Errorf("%s: Unmarshal must fail", name)
		}
	}

	// An x whose x³+x is a non-square must be rejected; find one.
	for i := 0; i < 200; i++ {
		x, err := c.F.Rand(nil)
		if err != nil {
			t.Fatal(err)
		}
		rhs := c.rhs(x)
		if rhs.Sign() != 0 && c.F.Legendre(rhs) == -1 {
			enc := append([]byte{0x02}, c.F.Bytes(x)...)
			if _, err := c.Unmarshal(enc); err == nil {
				t.Fatal("non-curve x must be rejected")
			}
			return
		}
	}
	t.Fatal("could not find non-square rhs (statistically impossible)")
}

func TestUnmarshalSubgroupRejectsCofactorPoints(t *testing.T) {
	c := testCurve(t)
	for i := 0; i < 64; i++ {
		p, err := c.RandomPoint(nil)
		if err != nil {
			t.Fatal(err)
		}
		if c.InSubgroup(p) {
			continue
		}
		enc := c.Marshal(p)
		if _, err := c.Unmarshal(enc); err != nil {
			t.Fatalf("plain Unmarshal must accept curve points: %v", err)
		}
		if _, err := c.UnmarshalSubgroup(enc); err == nil {
			t.Fatal("UnmarshalSubgroup must reject non-subgroup points")
		}
		return
	}
	t.Skip("no non-subgroup point found in 64 draws")
}

func TestRandScalarRange(t *testing.T) {
	c := testCurve(t)
	for i := 0; i < 32; i++ {
		k, err := c.RandScalar(nil)
		if err != nil {
			t.Fatal(err)
		}
		if k.Sign() <= 0 || k.Cmp(c.Q) >= 0 {
			t.Fatalf("scalar %v out of range", k)
		}
	}
}

func TestPointString(t *testing.T) {
	if Infinity().String() != "∞" {
		t.Fatal("infinity String")
	}
}

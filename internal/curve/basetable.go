package curve

import (
	"math/big"

	"timedrelease/internal/ff"
)

// baseWindow is the wNAF width for fixed-base scalar multiplication.
// Width 8 stores 2^(8-2) = 64 odd multiples and cuts the expected
// additions to ~m/9 for an m-bit scalar; the table is built once per
// base point, so the larger window pays for itself immediately on
// repeated bases (the system generator G, a server's sG).
const baseWindow = 8

// BaseTable holds the precomputed odd multiples (2i+1)·P of a fixed
// base point in affine form, plus Montgomery-domain copies when the
// field has a limb backend so ScalarMultBase runs mixed additions
// (Z = 1) without any per-call conversion of the table.
//
// A BaseTable is immutable after construction and safe for concurrent
// use by multiple goroutines.
type BaseTable struct {
	infinity bool

	// x, y are the affine coordinates of (2i+1)·P; inf marks the (only
	// theoretically reachable) identity entries of low-order bases.
	x, y []*big.Int
	inf  []bool

	// xm, ym are the same coordinates in Montgomery form (nil without a
	// limb backend).
	xm, ym []ff.MontElem
}

// PrecomputeBase builds the fixed-base table for p: the odd multiples
// 1·P, 3·P, …, 127·P, computed in Jacobian coordinates and normalised
// to affine with ONE modular inversion (ff.InvBatch).
func (c *Curve) PrecomputeBase(p Point) *BaseTable {
	if p.IsInfinity() {
		return &BaseTable{infinity: true}
	}
	const tableSize = 1 << (baseWindow - 2)
	jac := make([]jacPoint, tableSize)
	jac[0] = c.toJac(p)
	twoP := c.jacDouble(jac[0])
	for i := 1; i < tableSize; i++ {
		jac[i] = c.jacAdd(jac[i-1], twoP)
	}

	t := &BaseTable{
		x:   make([]*big.Int, tableSize),
		y:   make([]*big.Int, tableSize),
		inf: make([]bool, tableSize),
	}
	// Batch inversion rejects zeros, so identity entries (possible only
	// for bases of order < 2^baseWindow, which the subgroup never
	// produces) are masked with Z = 1 and flagged.
	zs := make([]*big.Int, tableSize)
	for i := range jac {
		if jac[i].isInf() {
			t.inf[i] = true
			zs[i] = big.NewInt(1)
		} else {
			zs[i] = jac[i].Z
		}
	}
	inv := c.F.InvBatch(zs)
	m := c.F.Mont()
	if m != nil {
		t.xm = make([]ff.MontElem, tableSize)
		t.ym = make([]ff.MontElem, tableSize)
	}
	for i := range jac {
		if t.inf[i] {
			t.x[i], t.y[i] = new(big.Int), new(big.Int)
		} else {
			zi2 := c.F.Sqr(inv[i])
			t.x[i] = c.F.Mul(jac[i].X, zi2)
			t.y[i] = c.F.Mul(jac[i].Y, c.F.Mul(zi2, inv[i]))
		}
		if m != nil {
			t.xm[i], t.ym[i] = m.NewElem(), m.NewElem()
			m.ToMont(t.xm[i], t.x[i])
			m.ToMont(t.ym[i], t.y[i])
		}
	}
	return t
}

// IsInfinity reports whether the table's base point is the identity.
func (t *BaseTable) IsInfinity() bool { return t.infinity }

// Base returns the table's base point 1·P.
func (t *BaseTable) Base() Point {
	if t.infinity {
		return Infinity()
	}
	return Point{X: new(big.Int).Set(t.x[0]), Y: new(big.Int).Set(t.y[0])}
}

// ScalarMultBase computes k·P from the fixed-base table: one doubling
// per scalar bit and one mixed addition (table entry has Z = 1) per
// non-zero wNAF digit, with negative digits costing only a Y negation.
// It returns exactly ScalarMult(k, P) (property-tested), on the
// Montgomery backend when available.
func (c *Curve) ScalarMultBase(t *BaseTable, k *big.Int) Point {
	if k.Sign() < 0 {
		panic("curve: negative scalar")
	}
	if k.Sign() == 0 || t.infinity {
		return Infinity()
	}
	digits := wnaf(k, baseWindow)
	if m := c.F.Mont(); m != nil && t.xm != nil {
		return c.scalarMultBaseMont(m, t, digits)
	}

	acc := jacInfinity()
	for i := len(digits) - 1; i >= 0; i-- {
		acc = c.jacDouble(acc)
		d := digits[i]
		if d == 0 {
			continue
		}
		j := d
		if j < 0 {
			j = -j
		}
		j = (j - 1) / 2
		if t.inf[j] {
			continue
		}
		e := jacPoint{X: t.x[j], Y: t.y[j], Z: big1}
		if d < 0 {
			e.Y = c.F.Neg(e.Y)
		}
		acc = c.jacAdd(acc, e)
	}
	return c.fromJac(acc)
}

// scalarMultBaseMont is the table ladder on Montgomery limb vectors;
// every temporary comes from a pooled arena.
func (c *Curve) scalarMultBaseMont(m *ff.Mont, t *BaseTable, digits []int) Point {
	a := m.GetArena()
	defer a.Release()
	var o jacMontOps
	jacMontOpsIn(&o, m, a)
	acc := newJacMontPointIn(a)
	o.setInfinity(acc)
	// e is the reusable addend; its Z stays 1 (mixed addition). Table
	// limbs are copied in so add never aliases immutable table storage.
	e := newJacMontPointIn(a)
	m.SetOne(e.Z)
	for i := len(digits) - 1; i >= 0; i-- {
		o.double(acc, acc)
		d := digits[i]
		if d == 0 {
			continue
		}
		j := d
		if j < 0 {
			j = -j
		}
		j = (j - 1) / 2
		if t.inf[j] {
			continue
		}
		m.Set(e.X, t.xm[j])
		if d < 0 {
			m.Neg(e.Y, t.ym[j])
		} else {
			m.Set(e.Y, t.ym[j])
		}
		o.add(acc, acc, e)
	}
	return o.fromJacMont(acc)
}

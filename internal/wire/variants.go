package wire

import (
	"fmt"

	"timedrelease/internal/backend"
	"timedrelease/internal/curve"
	"timedrelease/internal/idtre"
	"timedrelease/internal/multiserver"
	"timedrelease/internal/policylock"
)

// Encodings for the scheme variants. Same conventions as the core
// encodings: length-delimited, strict, subgroup-validated points.
//
// The variant schemes themselves (ID-TRE, multi-server, policy-lock)
// pair G1 points against each other and therefore require a Type-1
// pairing; their decoders refuse asymmetric sets with ErrSymmetricOnly
// rather than producing objects no scheme can consume.

// MarshalIDCiphertext encodes an ID-TRE ciphertext.
func (c *Codec) MarshalIDCiphertext(ct *idtre.Ciphertext) []byte {
	out := c.appendPoint(nil, backend.G1, ct.U)
	return appendBytes32(out, ct.V)
}

// UnmarshalIDCiphertext decodes an ID-TRE ciphertext.
func (c *Codec) UnmarshalIDCiphertext(data []byte) (*idtre.Ciphertext, error) {
	if c.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	r := &reader{buf: data}
	u, err := c.point(r, backend.G1)
	if err != nil {
		return nil, fmt.Errorf("wire: idtre U: %w", err)
	}
	v, err := r.bytes32()
	if err != nil {
		return nil, fmt.Errorf("wire: idtre V: %w", err)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &idtre.Ciphertext{U: u, V: v}, nil
}

// MarshalMultiCiphertext encodes a multi-server ciphertext: a u16 header
// count, the header points, and the payload.
func (c *Codec) MarshalMultiCiphertext(ct *multiserver.Ciphertext) []byte {
	out := appendU16(nil, len(ct.Us))
	for _, u := range ct.Us {
		out = c.appendPoint(out, backend.G1, u)
	}
	return appendBytes32(out, ct.V)
}

// UnmarshalMultiCiphertext decodes a multi-server ciphertext.
func (c *Codec) UnmarshalMultiCiphertext(data []byte) (*multiserver.Ciphertext, error) {
	if c.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	r := &reader{buf: data}
	n, err := r.u16()
	if err != nil {
		return nil, fmt.Errorf("wire: multiserver header count: %w", err)
	}
	if n == 0 {
		return nil, fmt.Errorf("wire: multiserver ciphertext needs at least one header")
	}
	us := make([]curve.Point, n)
	for i := 0; i < n; i++ {
		us[i], err = c.point(r, backend.G1)
		if err != nil {
			return nil, fmt.Errorf("wire: multiserver header %d: %w", i, err)
		}
	}
	v, err := r.bytes32()
	if err != nil {
		return nil, fmt.Errorf("wire: multiserver V: %w", err)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &multiserver.Ciphertext{Us: us, V: v}, nil
}

// MarshalPolicyCiphertext encodes a policy-locked ciphertext: the policy
// in its textual syntax, the clause headers, and the payload.
func (c *Codec) MarshalPolicyCiphertext(ct *policylock.Ciphertext) []byte {
	out := appendBytes16(nil, []byte(ct.Policy.String()))
	out = appendU16(out, len(ct.Headers))
	for _, h := range ct.Headers {
		out = c.appendPoint(out, backend.G1, h.U)
		out = appendBytes16(out, h.Wrap)
	}
	return appendBytes32(out, ct.V)
}

// UnmarshalPolicyCiphertext decodes a policy-locked ciphertext, checking
// that the header count matches the parsed policy's clause count.
func (c *Codec) UnmarshalPolicyCiphertext(data []byte) (*policylock.Ciphertext, error) {
	if c.Set.Asymmetric() {
		return nil, backend.ErrSymmetricOnly
	}
	r := &reader{buf: data}
	rawPolicy, err := r.bytes16()
	if err != nil {
		return nil, fmt.Errorf("wire: policy text: %w", err)
	}
	policy, err := policylock.ParsePolicy(string(rawPolicy))
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	n, err := r.u16()
	if err != nil {
		return nil, fmt.Errorf("wire: policy header count: %w", err)
	}
	if n != len(policy.Clauses) {
		return nil, fmt.Errorf("wire: %d headers for %d policy clauses", n, len(policy.Clauses))
	}
	ct := &policylock.Ciphertext{Policy: policy}
	for i := 0; i < n; i++ {
		u, err := c.point(r, backend.G1)
		if err != nil {
			return nil, fmt.Errorf("wire: policy header %d point: %w", i, err)
		}
		wrap, err := r.bytes16()
		if err != nil {
			return nil, fmt.Errorf("wire: policy header %d wrap: %w", i, err)
		}
		ct.Headers = append(ct.Headers, policylock.ClauseHeader{U: u, Wrap: wrap})
	}
	v, err := r.bytes32()
	if err != nil {
		return nil, fmt.Errorf("wire: policy V: %w", err)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	ct.V = v
	return ct, nil
}

// MarshalAttestation encodes a witness attestation.
func (c *Codec) MarshalAttestation(a policylock.Attestation) []byte {
	out := appendBytes16(nil, []byte(a.Condition))
	return c.appendPoint(out, backend.G2, a.Point)
}

// UnmarshalAttestation decodes a witness attestation (verification
// against the witness key is separate).
func (c *Codec) UnmarshalAttestation(data []byte) (policylock.Attestation, error) {
	if c.Set.Asymmetric() {
		return policylock.Attestation{}, backend.ErrSymmetricOnly
	}
	r := &reader{buf: data}
	cond, err := r.bytes16()
	if err != nil {
		return policylock.Attestation{}, fmt.Errorf("wire: attestation condition: %w", err)
	}
	pt, err := c.point(r, backend.G2)
	if err != nil {
		return policylock.Attestation{}, fmt.Errorf("wire: attestation point: %w", err)
	}
	if err := r.done(); err != nil {
		return policylock.Attestation{}, err
	}
	return policylock.Attestation{Condition: string(cond), Point: pt}, nil
}

// Package wire defines canonical binary encodings for every object that
// crosses a trust boundary: public keys, time-bound key updates,
// ciphertexts, and the application-level envelope a sender actually
// transmits. All encodings are length-delimited, versioned and strict —
// any trailing garbage, truncation, or non-canonical point encoding is
// rejected, and points are checked for subgroup membership on decode.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"timedrelease/internal/backend"
	"timedrelease/internal/core"
	"timedrelease/internal/curve"
	"timedrelease/internal/params"
)

// Version is the wire-format version byte leading every envelope.
const Version byte = 1

// ErrTruncated reports an input shorter than its structure requires.
var ErrTruncated = errors.New("wire: truncated input")

// ErrTrailing reports unconsumed bytes after a complete structure.
var ErrTrailing = errors.New("wire: trailing bytes after structure")

// ErrBackendMismatch reports a point encoding that appears to come from
// a different pairing backend than the decoding codec's: the
// compression-tag byte of the other backend family was found where this
// backend's was expected. BLS12-381 (zcash) encodings always set the
// 0x80 compression bit in the leading byte; the Type-1 reference
// encodings use plain tag bytes (0x00, 0x02, 0x03) with that bit
// clear. Decoders surface it so callers can distinguish "wrong
// backend" from mere corruption.
var ErrBackendMismatch = errors.New("wire: point encoded under a different pairing backend")

// Codec marshals and unmarshals protocol objects for one parameter set
// (point sizes depend on the field width).
type Codec struct {
	Set *params.Set
}

// NewCodec returns a codec bound to the parameter set.
func NewCodec(set *params.Set) *Codec { return &Codec{Set: set} }

// --- primitive helpers -------------------------------------------------

type reader struct {
	buf []byte
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || len(r.buf) < n {
		return nil, ErrTruncated
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out, nil
}

func (r *reader) u16() (int, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return int(binary.BigEndian.Uint16(b)), nil
}

func (r *reader) u32() (int, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(b)
	if v > 1<<31 {
		return 0, errors.New("wire: length field too large")
	}
	return int(v), nil
}

func (r *reader) bytes16() ([]byte, error) {
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	return r.take(n)
}

func (r *reader) bytes32() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	return r.take(n)
}

func (r *reader) done() error {
	if len(r.buf) != 0 {
		return ErrTrailing
	}
	return nil
}

func appendU16(b []byte, v int) []byte {
	if v < 0 || v > 0xffff {
		panic("wire: u16 overflow")
	}
	return binary.BigEndian.AppendUint16(b, uint16(v))
}

func appendU32(b []byte, v int) []byte {
	if v < 0 || int64(v) > 1<<31 {
		panic("wire: u32 overflow")
	}
	return binary.BigEndian.AppendUint32(b, uint32(v))
}

func appendBytes16(b, data []byte) []byte {
	b = appendU16(b, len(data))
	return append(b, data...)
}

func appendBytes32(b, data []byte) []byte {
	b = appendU32(b, len(data))
	return append(b, data...)
}

// point reads one compressed point of group g with subgroup validation.
func (c *Codec) point(r *reader, g backend.Group) (curve.Point, error) {
	raw, err := r.take(c.Set.B.PointLen(g))
	if err != nil {
		return curve.Point{}, err
	}
	pt, err := c.Set.B.ParsePoint(g, raw)
	if err != nil {
		if foreignTag(c.Set.Asymmetric(), raw[0]) {
			return curve.Point{}, fmt.Errorf("%w: %v", ErrBackendMismatch, err)
		}
		return curve.Point{}, err
	}
	return pt, nil
}

// foreignTag reports whether the leading byte of a failed point decode
// carries the compression tag of the other backend family: BLS12-381
// encodings always have the 0x80 bit set, Type-1 encodings never do.
// Only consulted after a parse failure — a byte that merely looks
// foreign on a point that decodes fine is not an error.
func foreignTag(asymmetric bool, tag byte) bool {
	return asymmetric != (tag&0x80 != 0)
}

// appendPoint appends the canonical encoding of a group-g point.
func (c *Codec) appendPoint(dst []byte, g backend.Group, p curve.Point) []byte {
	return c.Set.B.AppendPoint(dst, g, p)
}

// --- public keys --------------------------------------------------------

// MarshalServerPublicKey encodes (G, sG), and on asymmetric sets also
// the G2 mirror sG2 — Type-3 verification equations need the key in the
// right pairing slot. The Type-1 encoding is unchanged from the
// pre-backend format.
func (c *Codec) MarshalServerPublicKey(pk core.ServerPublicKey) []byte {
	out := c.appendPoint(nil, backend.G1, pk.G)
	out = c.appendPoint(out, backend.G1, pk.SG)
	if c.Set.Asymmetric() {
		out = c.appendPoint(out, backend.G2, pk.SG2)
	}
	return out
}

// UnmarshalServerPublicKey decodes and validates (G, sG) and, on
// asymmetric sets, sG2 — including the cross-group consistency pairing
// ê(sG, G2) = ê(G, sG2), so a decoded key can never carry mismatched
// G1/G2 halves. On symmetric sets SG2 is set to SG.
func (c *Codec) UnmarshalServerPublicKey(data []byte) (core.ServerPublicKey, error) {
	r := &reader{buf: data}
	g, err := c.point(r, backend.G1)
	if err != nil {
		return core.ServerPublicKey{}, fmt.Errorf("wire: server key G: %w", err)
	}
	sg, err := c.point(r, backend.G1)
	if err != nil {
		return core.ServerPublicKey{}, fmt.Errorf("wire: server key sG: %w", err)
	}
	if g.IsInfinity() || sg.IsInfinity() {
		return core.ServerPublicKey{}, errors.New("wire: server key contains the identity")
	}
	sg2 := sg
	if c.Set.Asymmetric() {
		sg2, err = c.point(r, backend.G2)
		if err != nil {
			return core.ServerPublicKey{}, fmt.Errorf("wire: server key sG2: %w", err)
		}
		if sg2.IsInfinity() {
			return core.ServerPublicKey{}, errors.New("wire: server key contains the identity")
		}
	}
	if err := r.done(); err != nil {
		return core.ServerPublicKey{}, err
	}
	if c.Set.Asymmetric() && !c.Set.B.SamePairing(sg, c.Set.G2, g, sg2) {
		return core.ServerPublicKey{}, errors.New("wire: server key G2 mirror does not match sG")
	}
	return core.ServerPublicKey{G: g, SG: sg, SG2: sg2}, nil
}

// MarshalUserPublicKey encodes (aG, asG); both halves live in G1.
func (c *Codec) MarshalUserPublicKey(pk core.UserPublicKey) []byte {
	out := c.appendPoint(nil, backend.G1, pk.AG)
	return c.appendPoint(out, backend.G1, pk.ASG)
}

// UnmarshalUserPublicKey decodes and validates (aG, asG). Note that the
// pairing well-formedness check is separate (core.VerifyUserPublicKey) —
// this only enforces curve/subgroup validity.
func (c *Codec) UnmarshalUserPublicKey(data []byte) (core.UserPublicKey, error) {
	r := &reader{buf: data}
	ag, err := c.point(r, backend.G1)
	if err != nil {
		return core.UserPublicKey{}, fmt.Errorf("wire: user key aG: %w", err)
	}
	asg, err := c.point(r, backend.G1)
	if err != nil {
		return core.UserPublicKey{}, fmt.Errorf("wire: user key asG: %w", err)
	}
	if err := r.done(); err != nil {
		return core.UserPublicKey{}, err
	}
	return core.UserPublicKey{AG: ag, ASG: asg}, nil
}

// --- key updates ----------------------------------------------------------

// MarshalKeyUpdate encodes a time-bound key update (label ‖ point).
// The update is a BLS signature s·H1(T), a G2 point.
func (c *Codec) MarshalKeyUpdate(u core.KeyUpdate) []byte {
	out := appendBytes16(nil, []byte(u.Label))
	return c.appendPoint(out, backend.G2, u.Point)
}

// UnmarshalKeyUpdate decodes an update. The signature itself still
// requires verification against the server public key (VerifyUpdate).
func (c *Codec) UnmarshalKeyUpdate(data []byte) (core.KeyUpdate, error) {
	r := &reader{buf: data}
	label, err := r.bytes16()
	if err != nil {
		return core.KeyUpdate{}, fmt.Errorf("wire: update label: %w", err)
	}
	pt, err := c.point(r, backend.G2)
	if err != nil {
		return core.KeyUpdate{}, fmt.Errorf("wire: update point: %w", err)
	}
	if err := r.done(); err != nil {
		return core.KeyUpdate{}, err
	}
	return core.KeyUpdate{Label: string(label), Point: pt}, nil
}

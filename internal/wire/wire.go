// Package wire defines canonical binary encodings for every object that
// crosses a trust boundary: public keys, time-bound key updates,
// ciphertexts, and the application-level envelope a sender actually
// transmits. All encodings are length-delimited, versioned and strict —
// any trailing garbage, truncation, or non-canonical point encoding is
// rejected, and points are checked for subgroup membership on decode.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"timedrelease/internal/core"
	"timedrelease/internal/curve"
	"timedrelease/internal/params"
)

// Version is the wire-format version byte leading every envelope.
const Version byte = 1

// ErrTruncated reports an input shorter than its structure requires.
var ErrTruncated = errors.New("wire: truncated input")

// ErrTrailing reports unconsumed bytes after a complete structure.
var ErrTrailing = errors.New("wire: trailing bytes after structure")

// Codec marshals and unmarshals protocol objects for one parameter set
// (point sizes depend on the field width).
type Codec struct {
	Set *params.Set
}

// NewCodec returns a codec bound to the parameter set.
func NewCodec(set *params.Set) *Codec { return &Codec{Set: set} }

// --- primitive helpers -------------------------------------------------

type reader struct {
	buf []byte
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || len(r.buf) < n {
		return nil, ErrTruncated
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out, nil
}

func (r *reader) u16() (int, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return int(binary.BigEndian.Uint16(b)), nil
}

func (r *reader) u32() (int, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(b)
	if v > 1<<31 {
		return 0, errors.New("wire: length field too large")
	}
	return int(v), nil
}

func (r *reader) bytes16() ([]byte, error) {
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	return r.take(n)
}

func (r *reader) bytes32() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	return r.take(n)
}

func (r *reader) done() error {
	if len(r.buf) != 0 {
		return ErrTrailing
	}
	return nil
}

func appendU16(b []byte, v int) []byte {
	if v < 0 || v > 0xffff {
		panic("wire: u16 overflow")
	}
	return binary.BigEndian.AppendUint16(b, uint16(v))
}

func appendU32(b []byte, v int) []byte {
	if v < 0 || int64(v) > 1<<31 {
		panic("wire: u32 overflow")
	}
	return binary.BigEndian.AppendUint32(b, uint32(v))
}

func appendBytes16(b, data []byte) []byte {
	b = appendU16(b, len(data))
	return append(b, data...)
}

func appendBytes32(b, data []byte) []byte {
	b = appendU32(b, len(data))
	return append(b, data...)
}

// point reads one compressed point with subgroup validation.
func (c *Codec) point(r *reader) (curve.Point, error) {
	raw, err := r.take(c.Set.Curve.MarshalSize())
	if err != nil {
		return curve.Point{}, err
	}
	return c.Set.Curve.UnmarshalSubgroup(raw)
}

// --- public keys --------------------------------------------------------

// MarshalServerPublicKey encodes (G, sG).
func (c *Codec) MarshalServerPublicKey(pk core.ServerPublicKey) []byte {
	out := c.Set.Curve.Marshal(pk.G)
	return append(out, c.Set.Curve.Marshal(pk.SG)...)
}

// UnmarshalServerPublicKey decodes and validates (G, sG).
func (c *Codec) UnmarshalServerPublicKey(data []byte) (core.ServerPublicKey, error) {
	r := &reader{buf: data}
	g, err := c.point(r)
	if err != nil {
		return core.ServerPublicKey{}, fmt.Errorf("wire: server key G: %w", err)
	}
	sg, err := c.point(r)
	if err != nil {
		return core.ServerPublicKey{}, fmt.Errorf("wire: server key sG: %w", err)
	}
	if g.IsInfinity() || sg.IsInfinity() {
		return core.ServerPublicKey{}, errors.New("wire: server key contains the identity")
	}
	if err := r.done(); err != nil {
		return core.ServerPublicKey{}, err
	}
	return core.ServerPublicKey{G: g, SG: sg}, nil
}

// MarshalUserPublicKey encodes (aG, asG).
func (c *Codec) MarshalUserPublicKey(pk core.UserPublicKey) []byte {
	out := c.Set.Curve.Marshal(pk.AG)
	return append(out, c.Set.Curve.Marshal(pk.ASG)...)
}

// UnmarshalUserPublicKey decodes and validates (aG, asG). Note that the
// pairing well-formedness check is separate (core.VerifyUserPublicKey) —
// this only enforces curve/subgroup validity.
func (c *Codec) UnmarshalUserPublicKey(data []byte) (core.UserPublicKey, error) {
	r := &reader{buf: data}
	ag, err := c.point(r)
	if err != nil {
		return core.UserPublicKey{}, fmt.Errorf("wire: user key aG: %w", err)
	}
	asg, err := c.point(r)
	if err != nil {
		return core.UserPublicKey{}, fmt.Errorf("wire: user key asG: %w", err)
	}
	if err := r.done(); err != nil {
		return core.UserPublicKey{}, err
	}
	return core.UserPublicKey{AG: ag, ASG: asg}, nil
}

// --- key updates ----------------------------------------------------------

// MarshalKeyUpdate encodes a time-bound key update (label ‖ point).
func (c *Codec) MarshalKeyUpdate(u core.KeyUpdate) []byte {
	out := appendBytes16(nil, []byte(u.Label))
	return append(out, c.Set.Curve.Marshal(u.Point)...)
}

// UnmarshalKeyUpdate decodes an update. The signature itself still
// requires verification against the server public key (VerifyUpdate).
func (c *Codec) UnmarshalKeyUpdate(data []byte) (core.KeyUpdate, error) {
	r := &reader{buf: data}
	label, err := r.bytes16()
	if err != nil {
		return core.KeyUpdate{}, fmt.Errorf("wire: update label: %w", err)
	}
	pt, err := c.point(r)
	if err != nil {
		return core.KeyUpdate{}, fmt.Errorf("wire: update point: %w", err)
	}
	if err := r.done(); err != nil {
		return core.KeyUpdate{}, err
	}
	return core.KeyUpdate{Label: string(label), Point: pt}, nil
}

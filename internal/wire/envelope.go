package wire

import (
	"fmt"

	"timedrelease/internal/backend"
	"timedrelease/internal/core"
)

// Kind identifies which encryption mode produced an envelope's payload.
type Kind byte

// Envelope payload kinds. Values are wire-stable; do not renumber.
const (
	KindBasic  Kind = 1 // core.Ciphertext (CPA, paper §5.1 verbatim)
	KindCCA    Kind = 2 // core.CCACiphertext (Fujisaki–Okamoto)
	KindREACT  Kind = 3 // core.REACTCiphertext
	KindHybrid Kind = 4 // core.HybridCiphertext (AES-CTR+HMAC DEM)
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindBasic:
		return "basic"
	case KindCCA:
		return "cca"
	case KindREACT:
		return "react"
	case KindHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// Envelope is the application-level message a sender transmits: a
// version, the payload kind, an OPTIONAL release label, and the
// ciphertext bytes. The core ciphertext deliberately omits the label
// (release-time privacy, paper §3); senders who are willing to reveal it
// to the receiver put it here, and senders who are not leave it empty
// and convey the label out of band.
type Envelope struct {
	Kind    Kind
	Label   string
	Payload []byte
}

// MarshalEnvelope encodes an envelope.
func (c *Codec) MarshalEnvelope(e Envelope) []byte {
	out := []byte{Version, byte(e.Kind)}
	out = appendBytes16(out, []byte(e.Label))
	return appendBytes32(out, e.Payload)
}

// UnmarshalEnvelope decodes an envelope, rejecting unknown versions and
// kinds.
func (c *Codec) UnmarshalEnvelope(data []byte) (Envelope, error) {
	r := &reader{buf: data}
	hdr, err := r.take(2)
	if err != nil {
		return Envelope{}, err
	}
	if hdr[0] != Version {
		return Envelope{}, fmt.Errorf("wire: unsupported version %d", hdr[0])
	}
	kind := Kind(hdr[1])
	switch kind {
	case KindBasic, KindCCA, KindREACT, KindHybrid:
	default:
		return Envelope{}, fmt.Errorf("wire: unknown payload kind %d", hdr[1])
	}
	label, err := r.bytes16()
	if err != nil {
		return Envelope{}, fmt.Errorf("wire: envelope label: %w", err)
	}
	payload, err := r.bytes32()
	if err != nil {
		return Envelope{}, fmt.Errorf("wire: envelope payload: %w", err)
	}
	if err := r.done(); err != nil {
		return Envelope{}, err
	}
	return Envelope{Kind: kind, Label: string(label), Payload: payload}, nil
}

// --- ciphertext encodings --------------------------------------------------

// MarshalCiphertext encodes a basic ciphertext ⟨U, V⟩.
func (c *Codec) MarshalCiphertext(ct *core.Ciphertext) []byte {
	out := c.appendPoint(nil, backend.G1, ct.U)
	return appendBytes32(out, ct.V)
}

// UnmarshalCiphertext decodes a basic ciphertext.
func (c *Codec) UnmarshalCiphertext(data []byte) (*core.Ciphertext, error) {
	r := &reader{buf: data}
	u, err := c.point(r, backend.G1)
	if err != nil {
		return nil, fmt.Errorf("wire: ciphertext U: %w", err)
	}
	v, err := r.bytes32()
	if err != nil {
		return nil, fmt.Errorf("wire: ciphertext V: %w", err)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &core.Ciphertext{U: u, V: v}, nil
}

// MarshalCCACiphertext encodes an FO ciphertext ⟨U, W, V⟩.
func (c *Codec) MarshalCCACiphertext(ct *core.CCACiphertext) []byte {
	out := c.appendPoint(nil, backend.G1, ct.U)
	out = appendBytes16(out, ct.W)
	return appendBytes32(out, ct.V)
}

// UnmarshalCCACiphertext decodes an FO ciphertext.
func (c *Codec) UnmarshalCCACiphertext(data []byte) (*core.CCACiphertext, error) {
	r := &reader{buf: data}
	u, err := c.point(r, backend.G1)
	if err != nil {
		return nil, fmt.Errorf("wire: cca U: %w", err)
	}
	w, err := r.bytes16()
	if err != nil {
		return nil, fmt.Errorf("wire: cca W: %w", err)
	}
	v, err := r.bytes32()
	if err != nil {
		return nil, fmt.Errorf("wire: cca V: %w", err)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &core.CCACiphertext{U: u, W: w, V: v}, nil
}

// MarshalREACTCiphertext encodes a REACT ciphertext ⟨U, W, V, Tag⟩.
func (c *Codec) MarshalREACTCiphertext(ct *core.REACTCiphertext) []byte {
	out := c.appendPoint(nil, backend.G1, ct.U)
	out = appendBytes16(out, ct.W)
	out = appendBytes32(out, ct.V)
	return appendBytes16(out, ct.Tag)
}

// UnmarshalREACTCiphertext decodes a REACT ciphertext.
func (c *Codec) UnmarshalREACTCiphertext(data []byte) (*core.REACTCiphertext, error) {
	r := &reader{buf: data}
	u, err := c.point(r, backend.G1)
	if err != nil {
		return nil, fmt.Errorf("wire: react U: %w", err)
	}
	w, err := r.bytes16()
	if err != nil {
		return nil, fmt.Errorf("wire: react W: %w", err)
	}
	v, err := r.bytes32()
	if err != nil {
		return nil, fmt.Errorf("wire: react V: %w", err)
	}
	tag, err := r.bytes16()
	if err != nil {
		return nil, fmt.Errorf("wire: react Tag: %w", err)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &core.REACTCiphertext{U: u, W: w, V: v, Tag: tag}, nil
}

// MarshalHybridCiphertext encodes a hybrid ciphertext ⟨U, Box⟩.
func (c *Codec) MarshalHybridCiphertext(ct *core.HybridCiphertext) []byte {
	out := c.appendPoint(nil, backend.G1, ct.U)
	return appendBytes32(out, ct.Box)
}

// UnmarshalHybridCiphertext decodes a hybrid ciphertext.
func (c *Codec) UnmarshalHybridCiphertext(data []byte) (*core.HybridCiphertext, error) {
	r := &reader{buf: data}
	u, err := c.point(r, backend.G1)
	if err != nil {
		return nil, fmt.Errorf("wire: hybrid U: %w", err)
	}
	box, err := r.bytes32()
	if err != nil {
		return nil, fmt.Errorf("wire: hybrid Box: %w", err)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &core.HybridCiphertext{U: u, Box: box}, nil
}

// SealBasic wraps a basic ciphertext into an envelope with the given
// (possibly empty) label.
func (c *Codec) SealBasic(label string, ct *core.Ciphertext) []byte {
	return c.MarshalEnvelope(Envelope{Kind: KindBasic, Label: label, Payload: c.MarshalCiphertext(ct)})
}

// SealCCA wraps an FO ciphertext into an envelope.
func (c *Codec) SealCCA(label string, ct *core.CCACiphertext) []byte {
	return c.MarshalEnvelope(Envelope{Kind: KindCCA, Label: label, Payload: c.MarshalCCACiphertext(ct)})
}

// SealREACT wraps a REACT ciphertext into an envelope.
func (c *Codec) SealREACT(label string, ct *core.REACTCiphertext) []byte {
	return c.MarshalEnvelope(Envelope{Kind: KindREACT, Label: label, Payload: c.MarshalREACTCiphertext(ct)})
}

// SealHybrid wraps a hybrid ciphertext into an envelope.
func (c *Codec) SealHybrid(label string, ct *core.HybridCiphertext) []byte {
	return c.MarshalEnvelope(Envelope{Kind: KindHybrid, Label: label, Payload: c.MarshalHybridCiphertext(ct)})
}

package wire

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"timedrelease/internal/backend"
	"timedrelease/internal/core"
	"timedrelease/internal/params"
)

// crossEnv holds one scheme per backend family so tests can encode
// under one and decode under the other.
type crossEnv struct {
	sym, asym *env
}

func newCrossEnv(t *testing.T) *crossEnv {
	t.Helper()
	mk := func(preset string) *env {
		set := params.MustPreset(preset)
		sc := core.NewScheme(set)
		server, err := sc.ServerKeyGen(nil)
		if err != nil {
			t.Fatal(err)
		}
		user, err := sc.UserKeyGen(server.Pub, nil)
		if err != nil {
			t.Fatal(err)
		}
		return &env{codec: NewCodec(set), sc: sc, server: server, user: user}
	}
	return &crossEnv{sym: mk("Test160"), asym: mk(params.PresetBLS12381)}
}

// ccaBlob encrypts a message long enough that the foreign codec's
// first point read lands entirely inside the blob (a BLS G1 point is
// 48 bytes, more than twice a Test160 point), so the decoder reaches
// the compression-tag check instead of bailing out as truncated.
func ccaBlob(t *testing.T, e *env) []byte {
	t.Helper()
	msg := bytes.Repeat([]byte("cross-backend safety "), 4)
	ct, err := e.sc.EncryptCCA(nil, e.server.Pub, e.user.Pub, "label-x", msg)
	if err != nil {
		t.Fatal(err)
	}
	return e.codec.MarshalCCACiphertext(ct)
}

// TestCrossBackendCiphertextRejected pins the typed error contract: a
// ciphertext encoded under one backend family, decoded under the
// other, fails with ErrBackendMismatch in both directions — not a
// generic parse error, so callers (and their error messages) can tell
// "wrong backend" apart from corruption.
func TestCrossBackendCiphertextRejected(t *testing.T) {
	ce := newCrossEnv(t)

	symBlob := ccaBlob(t, ce.sym)
	if _, err := ce.asym.codec.UnmarshalCCACiphertext(symBlob); !errors.Is(err, ErrBackendMismatch) {
		t.Fatalf("symmetric ciphertext under BLS codec: err=%v, want ErrBackendMismatch", err)
	}

	asymBlob := ccaBlob(t, ce.asym)
	if _, err := ce.sym.codec.UnmarshalCCACiphertext(asymBlob); !errors.Is(err, ErrBackendMismatch) {
		t.Fatalf("BLS ciphertext under symmetric codec: err=%v, want ErrBackendMismatch", err)
	}

	// Sanity: each blob still decodes fine under its own codec.
	if _, err := ce.sym.codec.UnmarshalCCACiphertext(symBlob); err != nil {
		t.Fatalf("symmetric self-decode: %v", err)
	}
	if _, err := ce.asym.codec.UnmarshalCCACiphertext(asymBlob); err != nil {
		t.Fatalf("BLS self-decode: %v", err)
	}
}

// TestCrossBackendServerKeyRejected checks the server public key path.
// The BLS encoding (192 bytes) is long enough for the symmetric
// codec's point reads, so the tag check fires; the reverse direction
// is shorter than one BLS point and surfaces as a decode error too
// (truncation), never as a silently-accepted key.
func TestCrossBackendServerKeyRejected(t *testing.T) {
	ce := newCrossEnv(t)

	asymKey := ce.asym.codec.MarshalServerPublicKey(ce.asym.server.Pub)
	if _, err := ce.sym.codec.UnmarshalServerPublicKey(asymKey); !errors.Is(err, ErrBackendMismatch) {
		t.Fatalf("BLS server key under symmetric codec: err=%v, want ErrBackendMismatch", err)
	}

	symKey := ce.sym.codec.MarshalServerPublicKey(ce.sym.server.Pub)
	if _, err := ce.asym.codec.UnmarshalServerPublicKey(symKey); err == nil {
		t.Fatal("symmetric server key must not decode under the BLS codec")
	}
}

// TestCrossBackendKeyUpdateRejected checks the key-update path with a
// label long enough that the foreign point read stays in-bounds.
func TestCrossBackendKeyUpdateRejected(t *testing.T) {
	ce := newCrossEnv(t)

	upd := ce.asym.sc.IssueUpdate(ce.asym.server, "round-000042")
	blob := ce.asym.codec.MarshalKeyUpdate(upd)
	if _, err := ce.sym.codec.UnmarshalKeyUpdate(blob); !errors.Is(err, ErrBackendMismatch) {
		t.Fatalf("BLS update under symmetric codec: err=%v, want ErrBackendMismatch", err)
	}

	symUpd := ce.sym.sc.IssueUpdate(ce.sym.server, "round-000042")
	if _, err := ce.asym.codec.UnmarshalKeyUpdate(ce.sym.codec.MarshalKeyUpdate(symUpd)); err == nil {
		t.Fatal("symmetric update must not decode under the BLS codec")
	}
}

// TestCrossBackendArmoredRejected pins the armored (TREARM01) path: an
// armored round ciphertext written under the symmetric set fails under
// a BLS codec with ErrParamsMismatch — the parameter fingerprint
// diverges because the asymmetric set's Marshal carries a backend=
// line — and vice versa.
func TestCrossBackendArmoredRejected(t *testing.T) {
	ce := newCrossEnv(t)
	genesis := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	mkArmored := func(e *env) []byte {
		ct, err := e.sc.EncryptCCA(nil, e.server.Pub, e.user.Pub, "round-000007", []byte("sealed"))
		if err != nil {
			t.Fatal(err)
		}
		return e.codec.EncodeArmored(Armored{
			Round:    7,
			Period:   time.Minute,
			Genesis:  genesis,
			Envelope: e.codec.SealCCA("round-000007", ct),
		})
	}

	symFile := mkArmored(ce.sym)
	if _, err := ce.asym.codec.DecodeArmored(symFile); !errors.Is(err, ErrParamsMismatch) {
		t.Fatalf("symmetric armored file under BLS codec: err=%v, want ErrParamsMismatch", err)
	}
	asymFile := mkArmored(ce.asym)
	if _, err := ce.sym.codec.DecodeArmored(asymFile); !errors.Is(err, ErrParamsMismatch) {
		t.Fatalf("BLS armored file under symmetric codec: err=%v, want ErrParamsMismatch", err)
	}

	// Self-decode still works and the fingerprints really differ.
	if _, err := ce.sym.codec.DecodeArmored(symFile); err != nil {
		t.Fatalf("symmetric armored self-decode: %v", err)
	}
	if _, err := ce.asym.codec.DecodeArmored(asymFile); err != nil {
		t.Fatalf("BLS armored self-decode: %v", err)
	}
	if ce.sym.codec.Fingerprint() == ce.asym.codec.Fingerprint() {
		t.Fatal("symmetric and BLS codecs share a parameter fingerprint")
	}
}

// TestVariantDecodersRefuseAsymmetric pins the Type-1-only contract of
// the variant codecs: every variant Unmarshal on an asymmetric set
// returns backend.ErrSymmetricOnly without touching the payload.
func TestVariantDecodersRefuseAsymmetric(t *testing.T) {
	codec := NewCodec(params.MustPreset(params.PresetBLS12381))
	junk := bytes.Repeat([]byte{0x5a}, 64)

	if _, err := codec.UnmarshalIDCiphertext(junk); !errors.Is(err, backend.ErrSymmetricOnly) {
		t.Fatalf("UnmarshalIDCiphertext: err=%v, want ErrSymmetricOnly", err)
	}
	if _, err := codec.UnmarshalMultiCiphertext(junk); !errors.Is(err, backend.ErrSymmetricOnly) {
		t.Fatalf("UnmarshalMultiCiphertext: err=%v, want ErrSymmetricOnly", err)
	}
	if _, err := codec.UnmarshalPolicyCiphertext(junk); !errors.Is(err, backend.ErrSymmetricOnly) {
		t.Fatalf("UnmarshalPolicyCiphertext: err=%v, want ErrSymmetricOnly", err)
	}
	if _, err := codec.UnmarshalAttestation(junk); !errors.Is(err, backend.ErrSymmetricOnly) {
		t.Fatalf("UnmarshalAttestation: err=%v, want ErrSymmetricOnly", err)
	}
}

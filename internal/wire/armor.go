package wire

import (
	"bytes"
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Armored round-ciphertext file format. This is the at-rest artifact a
// round-mode sender hands to a receiver: a self-describing header
// naming the round clock (period + genesis) and the round number, an
// 8-byte fingerprint of the pairing parameter set, and the ordinary
// wire envelope as the payload — wrapped in PEM-style armor so it
// survives mail, chat and copy/paste. The receiver reconstructs the
// release label from (period, genesis, round) locally; no out-of-band
// agreement beyond the server (or threshold group) public key is
// needed.
//
// Binary layout before armoring (all integers big-endian):
//
//	magic    8 bytes  "TREARM01"
//	fpr      8 bytes  sha256(params.Set.Marshal())[:8]
//	round    8 bytes  uint64 round number
//	period   8 bytes  int64 round duration in nanoseconds
//	genesis  8 bytes  int64 genesis instant, Unix nanoseconds UTC
//	envelope bytes32  a wire Envelope (version, kind, label, ciphertext)
//
// The decoder is strict: wrong magic, short input, trailing bytes
// after the envelope length, junk after the END line and parameter
// fingerprints that don't match the decoding codec are all rejected
// with typed errors.

// armorMagic begins every armored body; the trailing "01" is the
// format version.
const armorMagic = "TREARM01"

const (
	armorBegin = "-----BEGIN TRE ROUND CIPHERTEXT-----"
	armorEnd   = "-----END TRE ROUND CIPHERTEXT-----"
	armorCols  = 64
)

// ErrNotArmored reports input that does not carry the armor
// begin/end markers or the binary magic.
var ErrNotArmored = errors.New("wire: not an armored round ciphertext")

// ErrParamsMismatch reports an armored ciphertext produced under a
// different parameter set than the one decoding it.
var ErrParamsMismatch = errors.New("wire: armored ciphertext parameter fingerprint mismatch")

// Armored is a decoded round-ciphertext file.
type Armored struct {
	Round    uint64        // beacon round the ciphertext opens at
	Period   time.Duration // round duration of the sender's clock
	Genesis  time.Time     // round-0 start instant (UTC)
	Envelope []byte        // wire Envelope bytes (UnmarshalEnvelope)
}

// Fingerprint returns the 8-byte parameter-set fingerprint embedded in
// armored files: the leading bytes of sha256 over the canonical
// parameter marshaling.
func (c *Codec) Fingerprint() [8]byte {
	sum := sha256.Sum256(c.Set.Marshal())
	var fpr [8]byte
	copy(fpr[:], sum[:8])
	return fpr
}

// EncodeArmored renders an armored round-ciphertext file.
func (c *Codec) EncodeArmored(a Armored) []byte {
	fpr := c.Fingerprint()
	body := make([]byte, 0, 40+4+len(a.Envelope))
	body = append(body, armorMagic...)
	body = append(body, fpr[:]...)
	body = binary.BigEndian.AppendUint64(body, a.Round)
	body = binary.BigEndian.AppendUint64(body, uint64(int64(a.Period)))
	body = binary.BigEndian.AppendUint64(body, uint64(a.Genesis.UnixNano()))
	body = appendBytes32(body, a.Envelope)

	enc := base64.StdEncoding.EncodeToString(body)
	var out bytes.Buffer
	out.Grow(len(armorBegin) + len(armorEnd) + len(enc) + len(enc)/armorCols + 4)
	out.WriteString(armorBegin)
	out.WriteByte('\n')
	for len(enc) > armorCols {
		out.WriteString(enc[:armorCols])
		out.WriteByte('\n')
		enc = enc[armorCols:]
	}
	out.WriteString(enc)
	out.WriteByte('\n')
	out.WriteString(armorEnd)
	out.WriteByte('\n')
	return out.Bytes()
}

// IsArmored reports whether data looks like an armored round
// ciphertext (used by trectl to sniff the input format before
// committing to a decode path).
func IsArmored(data []byte) bool {
	return bytes.HasPrefix(bytes.TrimLeft(data, " \t\r\n"), []byte(armorBegin))
}

// DecodeArmored parses an armored round-ciphertext file and checks its
// parameter fingerprint against the codec's set. The envelope payload
// is returned as raw bytes; callers pass it to UnmarshalEnvelope.
func (c *Codec) DecodeArmored(data []byte) (Armored, error) {
	body, err := unarmor(data)
	if err != nil {
		return Armored{}, err
	}
	r := &reader{buf: body}
	magic, err := r.take(len(armorMagic))
	if err != nil || string(magic) != armorMagic {
		return Armored{}, ErrNotArmored
	}
	fpr, err := r.take(8)
	if err != nil {
		return Armored{}, fmt.Errorf("wire: armored fingerprint: %w", err)
	}
	want := c.Fingerprint()
	if !bytes.Equal(fpr, want[:]) {
		return Armored{}, fmt.Errorf("%w: file %x, codec %s %x", ErrParamsMismatch, fpr, c.Set.Name, want[:])
	}
	round, err := r.u64()
	if err != nil {
		return Armored{}, fmt.Errorf("wire: armored round: %w", err)
	}
	periodNs, err := r.u64()
	if err != nil {
		return Armored{}, fmt.Errorf("wire: armored period: %w", err)
	}
	genesisNs, err := r.u64()
	if err != nil {
		return Armored{}, fmt.Errorf("wire: armored genesis: %w", err)
	}
	if int64(periodNs) <= 0 {
		return Armored{}, errors.New("wire: armored period is not positive")
	}
	env, err := r.bytes32()
	if err != nil {
		return Armored{}, fmt.Errorf("wire: armored envelope: %w", err)
	}
	if err := r.done(); err != nil {
		return Armored{}, err
	}
	return Armored{
		Round:    round,
		Period:   time.Duration(int64(periodNs)),
		Genesis:  time.Unix(0, int64(genesisNs)).UTC(),
		Envelope: append([]byte(nil), env...),
	}, nil
}

// u64 reads a big-endian uint64 (armor header fields only; wire
// structures keep the 16/32-bit length discipline).
func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// unarmor strips the begin/end lines and decodes the base64 body. It
// tolerates surrounding whitespace and arbitrary line wrapping inside
// the body but rejects anything before BEGIN or after END.
func unarmor(data []byte) ([]byte, error) {
	text := bytes.TrimSpace(data)
	if !bytes.HasPrefix(text, []byte(armorBegin)) {
		return nil, ErrNotArmored
	}
	text = text[len(armorBegin):]
	endIdx := bytes.Index(text, []byte(armorEnd))
	if endIdx < 0 {
		return nil, fmt.Errorf("%w: missing end marker", ErrNotArmored)
	}
	if rest := bytes.TrimSpace(text[endIdx+len(armorEnd):]); len(rest) != 0 {
		return nil, fmt.Errorf("%w after armor end marker", ErrTrailing)
	}
	b64 := make([]byte, 0, endIdx)
	for _, ch := range text[:endIdx] {
		switch ch {
		case ' ', '\t', '\r', '\n':
		default:
			b64 = append(b64, ch)
		}
	}
	body, err := base64.StdEncoding.DecodeString(string(b64))
	if err != nil {
		return nil, fmt.Errorf("wire: armored body: %w", err)
	}
	return body, nil
}

package wire

import (
	"testing"

	"timedrelease/internal/core"
	"timedrelease/internal/curve"
	"timedrelease/internal/params"
)

// Fuzz targets: every decoder must reject or round-trip arbitrary
// input without panicking — the decoders sit directly on untrusted
// network bytes. Run with `go test -fuzz FuzzXxx ./internal/wire` for a
// real campaign; under plain `go test` the seed corpus acts as a
// robustness regression suite.

func fuzzCodec(tb testing.TB) (*Codec, *core.Scheme, *core.ServerKeyPair) {
	tb.Helper()
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	key, err := sc.ServerKeyGen(nil)
	if err != nil {
		tb.Fatal(err)
	}
	return NewCodec(set), sc, key
}

func FuzzUnmarshalEnvelope(f *testing.F) {
	codec, sc, key := fuzzCodec(f)
	user, err := sc.UserKeyGen(key.Pub, nil)
	if err != nil {
		f.Fatal(err)
	}
	ct, err := sc.EncryptCCA(nil, key.Pub, user.Pub, "l", []byte("seed"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(codec.SealCCA("l", ct))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := codec.UnmarshalEnvelope(data)
		if err != nil {
			return
		}
		// Valid decode must re-encode to the same bytes (canonical form).
		if got := codec.MarshalEnvelope(env); string(got) != string(data) {
			t.Fatalf("decode/encode not canonical: %x vs %x", got, data)
		}
	})
}

func FuzzUnmarshalKeyUpdate(f *testing.F) {
	codec, sc, key := fuzzCodec(f)
	f.Add(codec.MarshalKeyUpdate(sc.IssueUpdate(key, "2026-07-05T12:00:00Z")))
	f.Add([]byte{0, 1, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := codec.UnmarshalKeyUpdate(data)
		if err != nil {
			return
		}
		if got := codec.MarshalKeyUpdate(u); string(got) != string(data) {
			t.Fatalf("decode/encode not canonical")
		}
	})
}

func FuzzCatchUpDecode(f *testing.F) {
	codec, sc, key := fuzzCodec(f)
	var resp CatchUpResponse
	resp.Aggregate = curve.Infinity()
	for i := 0; i < 3; i++ {
		u := sc.IssueUpdate(key, "2026-07-05T12:0"+string(rune('0'+i))+":00Z")
		resp.Updates = append(resp.Updates, u)
		resp.Aggregate = codec.Set.Curve.Add(resp.Aggregate, u.Point)
	}
	resp.Total = 5 // a truncated page is a valid seed too
	resp.Root = [32]byte{0xaa, 0xbb}
	f.Add(codec.MarshalCatchUpResponse(resp))
	f.Add(codec.MarshalCatchUpResponse(CatchUpResponse{Aggregate: curve.Infinity()}))
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := codec.UnmarshalCatchUpResponse(data)
		if err != nil {
			return
		}
		if got := codec.MarshalCatchUpResponse(r); string(got) != string(data) {
			t.Fatalf("decode/encode not canonical")
		}
	})
}

func FuzzUnmarshalServerPublicKey(f *testing.F) {
	codec, _, key := fuzzCodec(f)
	f.Add(codec.MarshalServerPublicKey(key.Pub))
	f.Fuzz(func(t *testing.T, data []byte) {
		pk, err := codec.UnmarshalServerPublicKey(data)
		if err != nil {
			return
		}
		if got := codec.MarshalServerPublicKey(pk); string(got) != string(data) {
			t.Fatalf("decode/encode not canonical")
		}
	})
}

func FuzzUnmarshalCCACiphertext(f *testing.F) {
	codec, sc, key := fuzzCodec(f)
	user, err := sc.UserKeyGen(key.Pub, nil)
	if err != nil {
		f.Fatal(err)
	}
	ct, err := sc.EncryptCCA(nil, key.Pub, user.Pub, "l", []byte("seed message"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(codec.MarshalCCACiphertext(ct))
	f.Fuzz(func(t *testing.T, data []byte) {
		c2, err := codec.UnmarshalCCACiphertext(data)
		if err != nil {
			return
		}
		if got := codec.MarshalCCACiphertext(c2); string(got) != string(data) {
			t.Fatalf("decode/encode not canonical")
		}
	})
}

func FuzzUnmarshalPolicyCiphertext(f *testing.F) {
	codec, _, _ := fuzzCodec(f)
	f.Add([]byte{0, 1, 'a', 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		ct, err := codec.UnmarshalPolicyCiphertext(data)
		if err != nil {
			return
		}
		if got := codec.MarshalPolicyCiphertext(ct); string(got) != string(data) {
			t.Fatalf("decode/encode not canonical")
		}
	})
}

func FuzzParamsUnmarshal(f *testing.F) {
	set := params.MustPreset("Test160")
	f.Add(set.Marshal())
	f.Add([]byte("tre-params-v1\np=11\nq=3\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; errors are fine. Cap input size so the fuzzer
		// cannot spend minutes on giant primes.
		if len(data) > 4096 {
			return
		}
		_, _ = params.Unmarshal(data)
	})
}

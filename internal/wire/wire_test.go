package wire

import (
	"bytes"
	"errors"
	"testing"

	"timedrelease/internal/core"
	"timedrelease/internal/curve"
	"timedrelease/internal/params"
)

type env struct {
	codec  *Codec
	sc     *core.Scheme
	server *core.ServerKeyPair
	user   *core.UserKeyPair
}

func newEnv(t *testing.T) *env {
	t.Helper()
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	server, err := sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	user, err := sc.UserKeyGen(server.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &env{codec: NewCodec(set), sc: sc, server: server, user: user}
}

func TestServerPublicKeyRoundTrip(t *testing.T) {
	e := newEnv(t)
	enc := e.codec.MarshalServerPublicKey(e.server.Pub)
	back, err := e.codec.UnmarshalServerPublicKey(enc)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	c := e.codec.Set.Curve
	if !c.Equal(back.G, e.server.Pub.G) || !c.Equal(back.SG, e.server.Pub.SG) {
		t.Fatal("round trip mismatch")
	}
	// Truncation and trailing garbage rejected.
	if _, err := e.codec.UnmarshalServerPublicKey(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated key must be rejected")
	}
	if _, err := e.codec.UnmarshalServerPublicKey(append(enc, 0)); !errors.Is(err, ErrTrailing) {
		t.Fatalf("trailing byte: err=%v, want ErrTrailing", err)
	}
	// Identity halves rejected.
	inf := e.codec.Set.Curve.Marshal(curve.Infinity())
	bad := append(append([]byte{}, inf...), enc[len(inf):]...)
	if _, err := e.codec.UnmarshalServerPublicKey(bad); err == nil {
		t.Fatal("identity G must be rejected")
	}
}

func TestUserPublicKeyRoundTrip(t *testing.T) {
	e := newEnv(t)
	enc := e.codec.MarshalUserPublicKey(e.user.Pub)
	back, err := e.codec.UnmarshalUserPublicKey(enc)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !e.sc.VerifyUserPublicKey(e.server.Pub, back) {
		t.Fatal("decoded key must still verify")
	}
}

func TestKeyUpdateRoundTrip(t *testing.T) {
	e := newEnv(t)
	upd := e.sc.IssueUpdate(e.server, "2026-07-05T12:00:00Z")
	enc := e.codec.MarshalKeyUpdate(upd)
	back, err := e.codec.UnmarshalKeyUpdate(enc)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Label != upd.Label || !e.codec.Set.Curve.Equal(back.Point, upd.Point) {
		t.Fatal("round trip mismatch")
	}
	if !e.sc.VerifyUpdate(e.server.Pub, back) {
		t.Fatal("decoded update must verify")
	}
	// Flipping a point byte must break decoding or verification.
	enc[len(enc)-1] ^= 1
	back2, err := e.codec.UnmarshalKeyUpdate(enc)
	if err == nil && e.sc.VerifyUpdate(e.server.Pub, back2) {
		t.Fatal("tampered update must not decode-and-verify")
	}
}

func TestCiphertextRoundTrips(t *testing.T) {
	e := newEnv(t)
	const label = "2026-07-05T12:00:00Z"
	msg := []byte("wire round trip")
	upd := e.sc.IssueUpdate(e.server, label)

	t.Run("basic", func(t *testing.T) {
		ct, err := e.sc.Encrypt(nil, e.server.Pub, e.user.Pub, label, msg)
		if err != nil {
			t.Fatal(err)
		}
		back, err := e.codec.UnmarshalCiphertext(e.codec.MarshalCiphertext(ct))
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.sc.Decrypt(e.user, upd, back)
		if err != nil || !bytes.Equal(got, msg) {
			t.Fatalf("decrypt after round trip: %q %v", got, err)
		}
	})

	t.Run("cca", func(t *testing.T) {
		ct, err := e.sc.EncryptCCA(nil, e.server.Pub, e.user.Pub, label, msg)
		if err != nil {
			t.Fatal(err)
		}
		back, err := e.codec.UnmarshalCCACiphertext(e.codec.MarshalCCACiphertext(ct))
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.sc.DecryptCCA(e.server.Pub, e.user, upd, back)
		if err != nil || !bytes.Equal(got, msg) {
			t.Fatalf("decrypt after round trip: %q %v", got, err)
		}
	})

	t.Run("react", func(t *testing.T) {
		ct, err := e.sc.EncryptREACT(nil, e.server.Pub, e.user.Pub, label, msg)
		if err != nil {
			t.Fatal(err)
		}
		back, err := e.codec.UnmarshalREACTCiphertext(e.codec.MarshalREACTCiphertext(ct))
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.sc.DecryptREACT(e.user, upd, back)
		if err != nil || !bytes.Equal(got, msg) {
			t.Fatalf("decrypt after round trip: %q %v", got, err)
		}
	})

	t.Run("hybrid", func(t *testing.T) {
		ct, err := e.sc.EncryptHybrid(nil, e.server.Pub, e.user.Pub, label, msg)
		if err != nil {
			t.Fatal(err)
		}
		back, err := e.codec.UnmarshalHybridCiphertext(e.codec.MarshalHybridCiphertext(ct))
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.sc.DecryptHybrid(e.user, upd, back)
		if err != nil || !bytes.Equal(got, msg) {
			t.Fatalf("decrypt after round trip: %q %v", got, err)
		}
	})
}

func TestEnvelopeRoundTrip(t *testing.T) {
	e := newEnv(t)
	const label = "2026-07-05T12:00:00Z"
	ct, err := e.sc.EncryptCCA(nil, e.server.Pub, e.user.Pub, label, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	sealed := e.codec.SealCCA(label, ct)
	env, err := e.codec.UnmarshalEnvelope(sealed)
	if err != nil {
		t.Fatalf("UnmarshalEnvelope: %v", err)
	}
	if env.Kind != KindCCA || env.Label != label {
		t.Fatalf("envelope header: kind=%v label=%q", env.Kind, env.Label)
	}
	back, err := e.codec.UnmarshalCCACiphertext(env.Payload)
	if err != nil {
		t.Fatal(err)
	}
	upd := e.sc.IssueUpdate(e.server, label)
	got, err := e.sc.DecryptCCA(e.server.Pub, e.user, upd, back)
	if err != nil || string(got) != "hello" {
		t.Fatalf("decrypt: %q %v", got, err)
	}
}

func TestEnvelopeWithheldLabel(t *testing.T) {
	// Release-time privacy: a sender may withhold the label entirely.
	e := newEnv(t)
	ct, err := e.sc.Encrypt(nil, e.server.Pub, e.user.Pub, "secret-label", []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	sealed := e.codec.SealBasic("", ct)
	env, err := e.codec.UnmarshalEnvelope(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if env.Label != "" {
		t.Fatal("label must be withheld")
	}
}

func TestEnvelopeRejections(t *testing.T) {
	e := newEnv(t)
	good := e.codec.MarshalEnvelope(Envelope{Kind: KindBasic, Label: "l", Payload: []byte("p")})

	badVersion := append([]byte{}, good...)
	badVersion[0] = 9
	if _, err := e.codec.UnmarshalEnvelope(badVersion); err == nil {
		t.Fatal("unknown version must be rejected")
	}
	badKind := append([]byte{}, good...)
	badKind[1] = 0xEE
	if _, err := e.codec.UnmarshalEnvelope(badKind); err == nil {
		t.Fatal("unknown kind must be rejected")
	}
	if _, err := e.codec.UnmarshalEnvelope(good[:3]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated envelope: err=%v", err)
	}
	if _, err := e.codec.UnmarshalEnvelope(append(good, 1)); !errors.Is(err, ErrTrailing) {
		t.Fatalf("trailing bytes: err=%v", err)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{KindBasic: "basic", KindCCA: "cca", KindREACT: "react", KindHybrid: "hybrid", Kind(77): "kind(77)"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", byte(k), k.String(), want)
		}
	}
}

func TestUnmarshalRejectsNonSubgroupPoint(t *testing.T) {
	e := newEnv(t)
	c := e.codec.Set.Curve
	// Find a curve point outside the subgroup and try to pass it off as a
	// ciphertext header.
	for i := 0; i < 128; i++ {
		p, err := c.RandomPoint(nil)
		if err != nil {
			t.Fatal(err)
		}
		if c.InSubgroup(p) {
			continue
		}
		enc := append(c.Marshal(p), 0, 0, 0, 0) // empty V
		if _, err := e.codec.UnmarshalCiphertext(enc); err == nil {
			t.Fatal("non-subgroup U must be rejected")
		}
		return
	}
	t.Skip("no non-subgroup point found")
}

package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"timedrelease/internal/params"
)

var armorGenesis = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func armoredSample(tb testing.TB) (*Codec, Armored, []byte) {
	tb.Helper()
	codec, sc, key := fuzzCodec(tb)
	user, err := sc.UserKeyGen(key.Pub, nil)
	if err != nil {
		tb.Fatal(err)
	}
	ct, err := sc.EncryptCCA(nil, key.Pub, user.Pub, "2026-01-01T00:07:00Z", []byte("armored payload"))
	if err != nil {
		tb.Fatal(err)
	}
	a := Armored{
		Round:    7,
		Period:   time.Minute,
		Genesis:  armorGenesis,
		Envelope: codec.SealCCA("2026-01-01T00:07:00Z", ct),
	}
	return codec, a, codec.EncodeArmored(a)
}

func TestArmoredRoundTrip(t *testing.T) {
	codec, a, file := armoredSample(t)
	if !IsArmored(file) {
		t.Fatal("IsArmored(encoded file) = false")
	}
	got, err := codec.DecodeArmored(file)
	if err != nil {
		t.Fatalf("DecodeArmored: %v", err)
	}
	if got.Round != a.Round || got.Period != a.Period || !got.Genesis.Equal(a.Genesis) {
		t.Fatalf("header mismatch: got %+v want %+v", got, a)
	}
	if !bytes.Equal(got.Envelope, a.Envelope) {
		t.Fatal("envelope bytes changed through armor round trip")
	}
	// The payload must still decode as an ordinary envelope.
	env, err := codec.UnmarshalEnvelope(got.Envelope)
	if err != nil {
		t.Fatalf("UnmarshalEnvelope(armored payload): %v", err)
	}
	if env.Kind != KindCCA {
		t.Fatalf("envelope kind = %v, want cca", env.Kind)
	}
}

func TestArmoredFileShape(t *testing.T) {
	_, _, file := armoredSample(t)
	text := string(file)
	if !strings.HasPrefix(text, armorBegin+"\n") {
		t.Fatalf("missing begin line:\n%s", text)
	}
	if !strings.HasSuffix(text, armorEnd+"\n") {
		t.Fatalf("missing end line:\n%s", text)
	}
	for i, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if len(line) > armorCols && !strings.HasPrefix(line, "-----") {
			t.Fatalf("line %d exceeds %d columns: %q", i, armorCols, line)
		}
	}
}

func TestArmoredTolerantOfWhitespace(t *testing.T) {
	codec, a, file := armoredSample(t)
	mangled := "\n\n  " + strings.ReplaceAll(string(file), "\n", "\r\n") + "  \n"
	got, err := codec.DecodeArmored([]byte(mangled))
	if err != nil {
		t.Fatalf("DecodeArmored(CRLF + padding): %v", err)
	}
	if got.Round != a.Round {
		t.Fatalf("round = %d, want %d", got.Round, a.Round)
	}
}

func TestArmoredRejectsTampering(t *testing.T) {
	codec, _, file := armoredSample(t)

	t.Run("not armored", func(t *testing.T) {
		if _, err := codec.DecodeArmored([]byte("hello")); !errors.Is(err, ErrNotArmored) {
			t.Fatalf("got %v, want ErrNotArmored", err)
		}
		if IsArmored([]byte("hello")) {
			t.Fatal("IsArmored(garbage) = true")
		}
	})

	t.Run("missing end marker", func(t *testing.T) {
		cut := bytes.Index(file, []byte(armorEnd))
		if _, err := codec.DecodeArmored(file[:cut]); !errors.Is(err, ErrNotArmored) {
			t.Fatalf("got %v, want ErrNotArmored", err)
		}
	})

	t.Run("trailing junk", func(t *testing.T) {
		junk := append(append([]byte(nil), file...), []byte("PS: see attachment")...)
		if _, err := codec.DecodeArmored(junk); !errors.Is(err, ErrTrailing) {
			t.Fatalf("got %v, want ErrTrailing", err)
		}
	})

	t.Run("truncated body", func(t *testing.T) {
		lines := strings.Split(string(file), "\n")
		short := strings.Join(append(lines[:2], armorEnd, ""), "\n")
		if _, err := codec.DecodeArmored([]byte(short)); err == nil {
			t.Fatal("truncated body decoded")
		}
	})

	t.Run("bit flip", func(t *testing.T) {
		// Flipping a base64 character either breaks the decode or
		// changes a header/length field; a silent success with the
		// same header would mean the format doesn't notice corruption
		// it could have. (Envelope bytes are covered by the CCA check
		// downstream, so only count header fields here.)
		idx := bytes.IndexByte(file, '\n') + 5
		flipped := append([]byte(nil), file...)
		if flipped[idx] == 'A' {
			flipped[idx] = 'B'
		} else {
			flipped[idx] = 'A'
		}
		got, err := codec.DecodeArmored(flipped)
		if err == nil && got.Round == 7 && got.Period == time.Minute {
			t.Fatal("bit flip in header bytes went unnoticed")
		}
	})

	t.Run("params mismatch", func(t *testing.T) {
		other := NewCodec(params.MustPreset("SS512"))
		if _, err := other.DecodeArmored(file); !errors.Is(err, ErrParamsMismatch) {
			t.Fatalf("got %v, want ErrParamsMismatch", err)
		}
	})

	t.Run("zero period", func(t *testing.T) {
		a := Armored{Round: 1, Period: 0, Genesis: armorGenesis, Envelope: []byte("x")}
		bad := codec.EncodeArmored(a)
		if _, err := codec.DecodeArmored(bad); err == nil {
			t.Fatal("zero period accepted")
		}
	})
}

func TestFingerprintStableAndDistinct(t *testing.T) {
	a := NewCodec(params.MustPreset("Test160"))
	b := NewCodec(params.MustPreset("Test160"))
	c := NewCodec(params.MustPreset("SS512"))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same preset, different fingerprints")
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different presets, same fingerprint")
	}
}

// FuzzArmoredDecode throws arbitrary bytes at the armored decoder: it
// must never panic, and anything it accepts must re-encode to a file
// that decodes to the identical structure.
func FuzzArmoredDecode(f *testing.F) {
	codec, _, file := armoredSample(f)
	f.Add(file)
	f.Add([]byte{})
	f.Add([]byte(armorBegin + "\nAAAA\n" + armorEnd + "\n"))
	f.Add([]byte(armorBegin + "\n" + armorEnd + "\n"))
	// Truncation and bit-flip variants of the golden file.
	f.Add(file[:len(file)/2])
	flipped := append([]byte(nil), file...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := codec.DecodeArmored(data)
		if err != nil {
			return
		}
		back, err := codec.DecodeArmored(codec.EncodeArmored(a))
		if err != nil {
			t.Fatalf("accepted file failed to re-encode/decode: %v", err)
		}
		if back.Round != a.Round || back.Period != a.Period || !back.Genesis.Equal(a.Genesis) || !bytes.Equal(back.Envelope, a.Envelope) {
			t.Fatal("re-encoded armored file decodes differently")
		}
	})
}

package wire

import (
	"errors"
	"testing"

	"timedrelease/internal/backend"
	"timedrelease/internal/curve"
	"timedrelease/internal/params"
)

func TestTokenBatchRoundTrip(t *testing.T) {
	for _, name := range []string{"Test160", params.PresetBLS12381} {
		t.Run(name, func(t *testing.T) {
			set := params.MustPreset(name)
			codec := NewCodec(set)
			batch := testPoints(t, set, 3)
			enc := codec.MarshalTokenRequest(batch)
			dec, err := codec.UnmarshalTokenRequest(enc)
			if err != nil {
				t.Fatal(err)
			}
			if len(dec) != len(batch) {
				t.Fatalf("decoded %d points, want %d", len(dec), len(batch))
			}
			for i := range dec {
				if !set.B.Equal(backend.G2, dec[i], batch[i]) {
					t.Fatalf("point %d does not round-trip", i)
				}
			}
			// Response framing is identical.
			if got := codec.MarshalTokenResponse(batch); string(got) != string(enc) {
				t.Fatal("request/response framings diverged")
			}
		})
	}
}

func TestTokenBatchRejects(t *testing.T) {
	set := params.MustPreset("Test160")
	codec := NewCodec(set)
	if _, err := codec.UnmarshalTokenRequest(appendU16(nil, 0)); !errors.Is(err, ErrTokenBatch) {
		t.Fatalf("zero count: %v", err)
	}
	if _, err := codec.UnmarshalTokenRequest(appendU16(nil, maxTokenBatch+1)); !errors.Is(err, ErrTokenBatch) {
		t.Fatalf("oversized count: %v", err)
	}
	// Identity point in the batch.
	enc := appendU16(nil, 1)
	enc = codec.appendPoint(enc, backend.G2, set.B.Infinity(backend.G2))
	if _, err := codec.UnmarshalTokenRequest(enc); err == nil {
		t.Fatal("identity point accepted")
	}
	// Trailing garbage.
	batch := testPoints(t, set, 1)
	enc = append(codec.MarshalTokenRequest(batch), 0x00)
	if _, err := codec.UnmarshalTokenRequest(enc); !errors.Is(err, ErrTrailing) {
		t.Fatalf("trailing byte: %v", err)
	}
}

func TestTokenCredentialRoundTrip(t *testing.T) {
	for _, name := range []string{"Test160", params.PresetBLS12381} {
		t.Run(name, func(t *testing.T) {
			set := params.MustPreset(name)
			codec := NewCodec(set)
			seed := make([]byte, tokenSeedLen)
			for i := range seed {
				seed[i] = byte(i * 7)
			}
			sig := testPoints(t, set, 1)[0]
			enc := codec.MarshalToken(seed, sig)
			gotSeed, gotSig, err := codec.UnmarshalToken(enc)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotSeed) != string(seed) || !set.B.Equal(backend.G2, gotSig, sig) {
				t.Fatal("token does not round-trip")
			}
			// Wrong seed length.
			if _, _, err := codec.UnmarshalToken(codec.MarshalToken(seed[:31], sig)); err == nil {
				t.Fatal("short seed accepted")
			}
		})
	}
}

// testPoints returns n random non-identity G2 subgroup points —
// stand-ins for blinded tokens (the codec neither knows nor cares that
// a point is blinded, only that it is a valid G2 element).
func testPoints(tb testing.TB, set *params.Set, n int) []curve.Point {
	tb.Helper()
	pts := make([]curve.Point, n)
	for i := range pts {
		r, err := set.B.RandScalar(nil)
		if err != nil {
			tb.Fatal(err)
		}
		pts[i] = set.B.ScalarMult(backend.G2, r, set.G2)
	}
	return pts
}

func FuzzTokenRequestDecode(f *testing.F) {
	set := params.MustPreset("Test160")
	codec := NewCodec(set)
	f.Add(codec.MarshalTokenRequest(testPoints(f, set, 2)))
	f.Add(appendU16(nil, 0))
	f.Add([]byte{0xff, 0xff, 1, 2, 3})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		pts, err := codec.UnmarshalTokenRequest(data)
		if err != nil {
			return
		}
		// Valid decode must re-encode canonically.
		if got := codec.MarshalTokenRequest(pts); string(got) != string(data) {
			t.Fatalf("decode/encode not canonical: %x vs %x", got, data)
		}
	})
}

func FuzzTokenDecode(f *testing.F) {
	set := params.MustPreset("Test160")
	codec := NewCodec(set)
	seed := make([]byte, tokenSeedLen)
	f.Add(codec.MarshalToken(seed, testPoints(f, set, 1)[0]))
	f.Add([]byte{0, 32})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		gotSeed, gotSig, err := codec.UnmarshalToken(data)
		if err != nil {
			return
		}
		if got := codec.MarshalToken(gotSeed, gotSig); string(got) != string(data) {
			t.Fatalf("decode/encode not canonical: %x vs %x", got, data)
		}
	})
}

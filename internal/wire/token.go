package wire

import (
	"errors"
	"fmt"

	"timedrelease/internal/backend"
	"timedrelease/internal/curve"
)

// Blind-token encodings (docs/TOKENS.md). Three shapes share one
// layout discipline with the rest of the protocol — length-prefixed,
// canonical, every point subgroup-checked on decode:
//
//	token request  = u16 n ‖ n × G2 point      (blinded points, client→server)
//	token response = u16 n ‖ n × G2 point      (blind signatures, server→client)
//	token          = bytes16 seed ‖ G2 point   (redemption credential)
//
// The request/response framing is identical on purpose: both are "a
// short batch of G2 elements", and a decoder that accepts one accepts
// the other. maxTokenBatch bounds n well above any real issuance batch
// (the issuer enforces its own, smaller cap) but low enough that a
// hostile length prefix cannot make the decoder allocate unboundedly.

// maxTokenBatch bounds the points in one token request/response frame.
const maxTokenBatch = 4096

// tokenSeedLen pins the seed length: exactly token.SeedLen. The wire
// layer re-states the constant to avoid an import cycle (internal/token
// encodes through this package).
const tokenSeedLen = 32

// ErrTokenBatch reports a token request/response whose count field is
// zero or exceeds the decoder cap.
var ErrTokenBatch = errors.New("wire: token batch count out of range")

// MarshalTokenRequest encodes a batch of blinded token points.
func (c *Codec) MarshalTokenRequest(blinded []curve.Point) []byte {
	return c.marshalPointBatch(blinded)
}

// UnmarshalTokenRequest decodes a batch of blinded token points,
// rejecting identity and out-of-subgroup elements.
func (c *Codec) UnmarshalTokenRequest(data []byte) ([]curve.Point, error) {
	return c.unmarshalPointBatch(data)
}

// MarshalTokenResponse encodes a batch of blind signatures.
func (c *Codec) MarshalTokenResponse(signed []curve.Point) []byte {
	return c.marshalPointBatch(signed)
}

// UnmarshalTokenResponse decodes a batch of blind signatures.
func (c *Codec) UnmarshalTokenResponse(data []byte) ([]curve.Point, error) {
	return c.unmarshalPointBatch(data)
}

func (c *Codec) marshalPointBatch(pts []curve.Point) []byte {
	out := appendU16(nil, len(pts))
	for _, p := range pts {
		out = c.appendPoint(out, backend.G2, p)
	}
	return out
}

func (c *Codec) unmarshalPointBatch(data []byte) ([]curve.Point, error) {
	r := &reader{buf: data}
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	if n == 0 || n > maxTokenBatch {
		return nil, ErrTokenBatch
	}
	pts := make([]curve.Point, n)
	for i := range pts {
		p, err := c.point(r, backend.G2)
		if err != nil {
			return nil, err
		}
		if p.IsInfinity() {
			return nil, fmt.Errorf("wire: token point %d is the identity", i)
		}
		pts[i] = p
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return pts, nil
}

// MarshalToken encodes a redemption credential: the 32-byte seed and
// the unblinded signature point.
func (c *Codec) MarshalToken(seed []byte, sig curve.Point) []byte {
	out := appendBytes16(nil, seed)
	return c.appendPoint(out, backend.G2, sig)
}

// UnmarshalToken decodes a redemption credential, enforcing the seed
// length and signature subgroup membership.
func (c *Codec) UnmarshalToken(data []byte) ([]byte, curve.Point, error) {
	r := &reader{buf: data}
	seed, err := r.bytes16()
	if err != nil {
		return nil, curve.Point{}, err
	}
	if len(seed) != tokenSeedLen {
		return nil, curve.Point{}, fmt.Errorf("wire: token seed is %d bytes, want %d", len(seed), tokenSeedLen)
	}
	sig, err := c.point(r, backend.G2)
	if err != nil {
		return nil, curve.Point{}, err
	}
	if sig.IsInfinity() {
		return nil, curve.Point{}, errors.New("wire: token signature is the identity")
	}
	if err := r.done(); err != nil {
		return nil, curve.Point{}, err
	}
	return seed, sig, nil
}

package wire

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// Golden vectors pin the wire format: these constants were produced by
// TestPrintGoldenVectors (run with -golden-print) from fixed key scalars
// and a constant-byte "rng" over the Test160 preset. Any change to point
// compression, field widths, framing, hash domains or the FO transform
// breaks these tests — which is the point: the wire format is a
// compatibility promise, and format changes must be deliberate (bump
// wire.Version, regenerate, and note it in the commit).
const (
	goldenServerPub = "026919c2735c2738299e1a8e09a31cde73933c60220380791239d962617495bbf34f7fcd3f18da55d463"
	goldenUserPub   = "03ca22a243e0bc54a24a87d46bbb80d73c46905b7f03835173651637c042fbb13d95a65ff55f833c9dab"
	goldenUpdate    = "0014323032362d30372d30355431323a30303a30305a0222744e6c8a176c5d394c4966af2bfa7c8e80c883"
	goldenEnvelope  = "01020014323032362d30372d30355431323a30303a30305a0000004903b511344877b4fe575737175bab60921ea15b02c00020bb54679b12292d2ffbadae9b90c61c26e9b12ecd6a9bb19e95460701be4ff7350000000ea0d9db1a03298beeb6bf894f572c"
)

func TestGoldenVectorsMatch(t *testing.T) {
	sp, up, upd, env := goldenObjects(t)
	for name, pair := range map[string][2][]byte{
		"server public key": {sp, mustHex(t, goldenServerPub)},
		"user public key":   {up, mustHex(t, goldenUserPub)},
		"key update":        {upd, mustHex(t, goldenUpdate)},
		"sealed envelope":   {env, mustHex(t, goldenEnvelope)},
	} {
		if !bytes.Equal(pair[0], pair[1]) {
			t.Errorf("%s: wire format changed\n got %x\nwant %x", name, pair[0], pair[1])
		}
	}
}

func TestGoldenEnvelopeStillDecrypts(t *testing.T) {
	// The recorded envelope must decode and decrypt with the fixed keys —
	// i.e. today's code reads yesterday's ciphertexts.
	codec, sc, server, user := goldenFixtures(t)
	env, err := codec.UnmarshalEnvelope(mustHex(t, goldenEnvelope))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := codec.UnmarshalCCACiphertext(env.Payload)
	if err != nil {
		t.Fatal(err)
	}
	upd := sc.IssueUpdate(server, env.Label)
	got, err := sc.DecryptCCA(server.Pub, user, upd, ct)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "golden message" {
		t.Fatalf("golden plaintext = %q", got)
	}
}

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

package wire

import (
	"errors"
	"fmt"

	"timedrelease/internal/backend"
	"timedrelease/internal/core"
	"timedrelease/internal/curve"
)

// CatchUpResponse is the body of one /v1/catchup range response: the
// archived updates of a label range, their same-key BLS aggregate and
// the Merkle completeness commitment over the updates' wire payloads
// (internal/archive). Encoding:
//
//	u32 total ‖ u32 n ‖ n × (u16 len ‖ label ‖ point) ‖ point agg ‖ 32-byte root
//
// The per-update encoding is exactly MarshalKeyUpdate, so a leaf of the
// commitment can be recomputed from the decoded update alone. Decoding
// is strict: labels must be strictly ascending (which also bans
// duplicates), n ≤ total, and an empty range must carry the identity
// aggregate and the zero root — so every valid encoding is canonical.
type CatchUpResponse struct {
	// Total counts all archived records in the requested range; when
	// Total > len(Updates) the response was truncated (oldest first)
	// and the client must page.
	Total int
	// Updates are the returned records in ascending label order.
	Updates []core.KeyUpdate
	// Aggregate is Σ of the update points.
	Aggregate curve.Point
	// Root is the Merkle root over the updates' wire payloads.
	Root [32]byte
}

// maxCatchUpPrealloc caps the slice preallocation a decoded length
// field can cause; larger counts grow by append (a hostile header
// cannot allocate more than the body it actually ships).
const maxCatchUpPrealloc = 4096

// MarshalCatchUpResponse encodes a catch-up range response.
func (c *Codec) MarshalCatchUpResponse(r CatchUpResponse) []byte {
	ptLen := c.Set.B.PointLen(backend.G2)
	out := make([]byte, 0, 8+len(r.Updates)*(2+16+ptLen)+ptLen+32)
	out = appendU32(out, r.Total)
	out = appendU32(out, len(r.Updates))
	for _, u := range r.Updates {
		out = append(out, c.MarshalKeyUpdate(u)...)
	}
	out = c.appendPoint(out, backend.G2, r.Aggregate)
	return append(out, r.Root[:]...)
}

// UnmarshalCatchUpResponse decodes and structurally validates a
// catch-up range response. The aggregate signature and commitment are
// NOT verified here — that is the client's job against its pinned
// server key.
func (c *Codec) UnmarshalCatchUpResponse(data []byte) (CatchUpResponse, error) {
	r := &reader{buf: data}
	total, err := r.u32()
	if err != nil {
		return CatchUpResponse{}, fmt.Errorf("wire: catchup total: %w", err)
	}
	n, err := r.u32()
	if err != nil {
		return CatchUpResponse{}, fmt.Errorf("wire: catchup count: %w", err)
	}
	if n > total {
		return CatchUpResponse{}, errors.New("wire: catchup count exceeds total")
	}
	out := CatchUpResponse{Total: total}
	if n > 0 {
		out.Updates = make([]core.KeyUpdate, 0, min(n, maxCatchUpPrealloc))
	}
	for i := 0; i < n; i++ {
		label, err := r.bytes16()
		if err != nil {
			return CatchUpResponse{}, fmt.Errorf("wire: catchup update %d label: %w", i, err)
		}
		pt, err := c.point(r, backend.G2)
		if err != nil {
			return CatchUpResponse{}, fmt.Errorf("wire: catchup update %d point: %w", i, err)
		}
		u := core.KeyUpdate{Label: string(label), Point: pt}
		if i > 0 && out.Updates[i-1].Label >= u.Label {
			return CatchUpResponse{}, errors.New("wire: catchup labels not strictly ascending")
		}
		out.Updates = append(out.Updates, u)
	}
	agg, err := c.point(r, backend.G2)
	if err != nil {
		return CatchUpResponse{}, fmt.Errorf("wire: catchup aggregate: %w", err)
	}
	out.Aggregate = agg
	root, err := r.take(32)
	if err != nil {
		return CatchUpResponse{}, fmt.Errorf("wire: catchup root: %w", err)
	}
	copy(out.Root[:], root)
	if err := r.done(); err != nil {
		return CatchUpResponse{}, err
	}
	if n == 0 && (!out.Aggregate.IsInfinity() || out.Root != [32]byte{}) {
		return CatchUpResponse{}, errors.New("wire: empty catchup range must carry identity aggregate and zero root")
	}
	return out, nil
}

package wire

import (
	"bytes"
	"testing"

	"timedrelease/internal/core"
	"timedrelease/internal/idtre"
	"timedrelease/internal/multiserver"
	"timedrelease/internal/policylock"
)

func TestIDCiphertextRoundTrip(t *testing.T) {
	e := newEnv(t)
	id := idtre.NewScheme(e.codec.Set)
	const label = "2026-07-05T12:00:00Z"
	msg := []byte("identity wire trip")
	ct, err := id.Encrypt(nil, e.server.Pub, "alice", label, msg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := e.codec.UnmarshalIDCiphertext(e.codec.MarshalIDCiphertext(ct))
	if err != nil {
		t.Fatal(err)
	}
	priv := id.ExtractUserKey(e.server, "alice")
	got, err := id.Decrypt(priv, e.sc.IssueUpdate(e.server, label), back)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("decrypt after round trip: %q %v", got, err)
	}
}

func TestMultiCiphertextRoundTrip(t *testing.T) {
	e := newEnv(t)
	ms := multiserver.NewScheme(e.codec.Set)
	const label = "2026-07-05T12:00:00Z"

	server2, err := e.sc.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	group := multiserver.ServerGroup{e.server.Pub, server2.Pub}
	user, err := ms.UserKeyGen(group, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("multi wire trip")
	ct, err := ms.Encrypt(nil, group, user.Pub, label, msg)
	if err != nil {
		t.Fatal(err)
	}
	enc := e.codec.MarshalMultiCiphertext(ct)
	back, err := e.codec.UnmarshalMultiCiphertext(enc)
	if err != nil {
		t.Fatal(err)
	}
	updates := []core.KeyUpdate{
		e.sc.IssueUpdate(e.server, label),
		e.sc.IssueUpdate(server2, label),
	}
	got, err := ms.Decrypt(user, updates, back)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("decrypt after round trip: %q %v", got, err)
	}

	// Malformed inputs.
	if _, err := e.codec.UnmarshalMultiCiphertext(enc[:5]); err == nil {
		t.Fatal("truncated multi ciphertext must fail")
	}
	zeroHeaders := appendBytes32(appendU16(nil, 0), []byte("v"))
	if _, err := e.codec.UnmarshalMultiCiphertext(zeroHeaders); err == nil {
		t.Fatal("zero-header multi ciphertext must fail")
	}
}

func TestPolicyCiphertextRoundTrip(t *testing.T) {
	e := newEnv(t)
	pl := policylock.NewScheme(e.codec.Set)
	policy, err := policylock.ParsePolicy("board ok & audit ok | emergency")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("policy wire trip")
	ct, err := pl.Encrypt(nil, e.server.Pub, e.user.Pub, policy, msg)
	if err != nil {
		t.Fatal(err)
	}
	enc := e.codec.MarshalPolicyCiphertext(ct)
	back, err := e.codec.UnmarshalPolicyCiphertext(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Policy.String() != policy.String() {
		t.Fatalf("policy text changed: %q", back.Policy)
	}
	atts := []policylock.Attestation{pl.Attest(e.server, "emergency")}
	got, err := pl.Decrypt(e.user, atts, back)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("decrypt after round trip: %q %v", got, err)
	}

	// Header/clause count mismatch must be rejected.
	bad := e.codec.MarshalPolicyCiphertext(&policylock.Ciphertext{
		Policy:  policy,
		Headers: ct.Headers[:1],
		V:       ct.V,
	})
	if _, err := e.codec.UnmarshalPolicyCiphertext(bad); err == nil {
		t.Fatal("header/clause mismatch must fail")
	}
}

func TestAttestationRoundTrip(t *testing.T) {
	e := newEnv(t)
	pl := policylock.NewScheme(e.codec.Set)
	att := pl.Attest(e.server, "condition-x")
	back, err := e.codec.UnmarshalAttestation(e.codec.MarshalAttestation(att))
	if err != nil {
		t.Fatal(err)
	}
	if back.Condition != att.Condition || !e.codec.Set.Curve.Equal(back.Point, att.Point) {
		t.Fatal("round trip mismatch")
	}
	if !pl.VerifyAttestation(e.server.Pub, back) {
		t.Fatal("decoded attestation must verify")
	}
}

package wire

// This file regenerates the golden vectors when run with
//   go test ./internal/wire -run TestPrintGoldenVectors -golden-print
// The printed constants are pasted into golden_test.go.

import (
	"bytes"
	"flag"
	"fmt"
	"math/big"
	"testing"

	"timedrelease/internal/core"
	"timedrelease/internal/params"
)

var goldenPrint = flag.Bool("golden-print", false, "print golden vectors")

func goldenFixtures(tb testing.TB) (*Codec, *core.Scheme, *core.ServerKeyPair, *core.UserKeyPair) {
	tb.Helper()
	set := params.MustPreset("Test160")
	sc := core.NewScheme(set)
	// Fixed scalars: nothing random anywhere.
	server, err := newServerFromScalar(sc, big.NewInt(0x1234567))
	if err != nil {
		tb.Fatal(err)
	}
	user, err := sc.UserKeyFromScalar(server.Pub, big.NewInt(0x89abcde))
	if err != nil {
		tb.Fatal(err)
	}
	return NewCodec(set), sc, server, user
}

func newServerFromScalar(sc *core.Scheme, s *big.Int) (*core.ServerKeyPair, error) {
	set := sc.Set
	return &core.ServerKeyPair{
		S:   s,
		Pub: core.ServerPublicKey{G: set.G, SG: set.Curve.ScalarMult(s, set.G)},
	}, nil
}

// constReader yields a repeating byte pattern — a deterministic "rng".
type constReader byte

func (c constReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(c)
	}
	return len(p), nil
}

func goldenObjects(tb testing.TB) (serverPub, userPub, update, envelope []byte) {
	codec, sc, server, user := goldenFixtures(tb)
	const label = "2026-07-05T12:00:00Z"
	serverPub = codec.MarshalServerPublicKey(server.Pub)
	userPub = codec.MarshalUserPublicKey(user.Pub)
	update = codec.MarshalKeyUpdate(sc.IssueUpdate(server, label))
	ct, err := sc.EncryptCCA(constReader(0x5a), server.Pub, user.Pub, label, []byte("golden message"))
	if err != nil {
		tb.Fatal(err)
	}
	envelope = codec.SealCCA(label, ct)
	return
}

func TestPrintGoldenVectors(t *testing.T) {
	if !*goldenPrint {
		t.Skip("pass -golden-print to regenerate")
	}
	sp, up, upd, env := goldenObjects(t)
	fmt.Printf("goldenServerPub = %q\n", fmt.Sprintf("%x", sp))
	fmt.Printf("goldenUserPub = %q\n", fmt.Sprintf("%x", up))
	fmt.Printf("goldenUpdate = %q\n", fmt.Sprintf("%x", upd))
	fmt.Printf("goldenEnvelope = %q\n", fmt.Sprintf("%x", env))
}

// TestGoldenDeterminism double-checks the fixtures really are
// deterministic (two independent derivations agree) before golden_test
// compares them against the recorded constants.
func TestGoldenDeterminism(t *testing.T) {
	a1, b1, c1, d1 := goldenObjects(t)
	a2, b2, c2, d2 := goldenObjects(t)
	for i, pair := range [][2][]byte{{a1, a2}, {b1, b2}, {c1, c2}, {d1, d2}} {
		if !bytes.Equal(pair[0], pair[1]) {
			t.Fatalf("object %d is not deterministic", i)
		}
	}
}

package wire

// Regenerates the checked-in FuzzArmoredDecode seed corpus when run
// with
//   go test ./internal/wire -run TestWriteArmorFuzzCorpus -armor-corpus
// The corpus is deterministic (golden fixtures, constant "rng"), so a
// regeneration only changes the files when the format itself changes.

import (
	"encoding/base64"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var armorCorpus = flag.Bool("armor-corpus", false, "rewrite the FuzzArmoredDecode seed corpus")

func goldenArmoredFile(tb testing.TB) (*Codec, []byte) {
	tb.Helper()
	codec, sc, server, user := goldenFixtures(tb)
	const label = "2026-01-01T00:07:00Z"
	ct, err := sc.EncryptCCA(constReader(0x5a), server.Pub, user.Pub, label, []byte("golden round message"))
	if err != nil {
		tb.Fatal(err)
	}
	a := Armored{
		Round:    7,
		Period:   time.Minute,
		Genesis:  time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
		Envelope: codec.SealCCA(label, ct),
	}
	return codec, codec.EncodeArmored(a)
}

// rearmor wraps an already-built binary body in the armor framing
// (corpus generation only; production encoding goes through
// EncodeArmored).
func rearmor(body []byte) []byte {
	enc := base64.StdEncoding.EncodeToString(body)
	var b strings.Builder
	b.WriteString(armorBegin + "\n")
	for len(enc) > armorCols {
		b.WriteString(enc[:armorCols] + "\n")
		enc = enc[armorCols:]
	}
	b.WriteString(enc + "\n" + armorEnd + "\n")
	return []byte(b.String())
}

func TestWriteArmorFuzzCorpus(t *testing.T) {
	if !*armorCorpus {
		t.Skip("pass -armor-corpus to regenerate")
	}
	_, golden := goldenArmoredFile(t)

	truncated := golden[:2*len(golden)/3]

	bitflip := append([]byte(nil), golden...)
	bitflip[len(bitflip)/3] ^= 0x04

	// Same structure with the fingerprint bytes zeroed: decodes as far
	// as the fingerprint check and must stop there with
	// ErrParamsMismatch.
	body, err := unarmor(golden)
	if err != nil {
		t.Fatal(err)
	}
	mismatch := append([]byte(nil), body...)
	for i := len(armorMagic); i < len(armorMagic)+8; i++ {
		mismatch[i] = 0
	}

	dir := filepath.Join("testdata", "fuzz", "FuzzArmoredDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	seeds := map[string][]byte{
		"seed-golden":          golden,
		"seed-truncated":       truncated,
		"seed-bitflip":         bitflip,
		"seed-params-mismatch": rearmor(mismatch),
		"seed-empty-body":      []byte(armorBegin + "\n" + armorEnd + "\n"),
	}
	for name, data := range seeds {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", name, len(data))
	}
}

package wire

import (
	"fmt"
	"testing"

	"timedrelease/internal/core"
	"timedrelease/internal/curve"
)

// sampleCatchUp builds a well-formed n-update response with the true
// aggregate (the root is arbitrary bytes as far as the codec cares).
func sampleCatchUp(tb testing.TB, n int) (*Codec, CatchUpResponse) {
	tb.Helper()
	codec, sc, key := fuzzCodec(tb)
	r := CatchUpResponse{Total: n, Aggregate: curve.Infinity()}
	for i := 0; i < n; i++ {
		u := sc.IssueUpdate(key, fmt.Sprintf("2026-07-05T12:%02d:00Z", i))
		r.Updates = append(r.Updates, u)
		r.Aggregate = codec.Set.Curve.Add(r.Aggregate, u.Point)
	}
	if n > 0 {
		r.Root = [32]byte{1, 2, 3}
	}
	return codec, r
}

func TestCatchUpResponseRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 5} {
		codec, want := sampleCatchUp(t, n)
		data := codec.MarshalCatchUpResponse(want)
		got, err := codec.UnmarshalCatchUpResponse(data)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Total != want.Total || len(got.Updates) != len(want.Updates) || got.Root != want.Root {
			t.Fatalf("n=%d: round-trip shape mismatch", n)
		}
		for i := range got.Updates {
			if got.Updates[i].Label != want.Updates[i].Label ||
				!codec.Set.Curve.Equal(got.Updates[i].Point, want.Updates[i].Point) {
				t.Fatalf("n=%d: update %d differs", n, i)
			}
		}
		if !codec.Set.Curve.Equal(got.Aggregate, want.Aggregate) {
			t.Fatalf("n=%d: aggregate differs", n)
		}
		if again := codec.MarshalCatchUpResponse(got); string(again) != string(data) {
			t.Fatalf("n=%d: re-encode not canonical", n)
		}
	}
}

func TestCatchUpResponseTruncatedEncoding(t *testing.T) {
	codec, r := sampleCatchUp(t, 3)
	r.Total = 10 // a truncated page: n < total is legal
	data := codec.MarshalCatchUpResponse(r)
	got, err := codec.UnmarshalCatchUpResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != 10 || len(got.Updates) != 3 {
		t.Fatalf("got %d/%d, want 3/10", len(got.Updates), got.Total)
	}
}

func TestCatchUpResponseRejects(t *testing.T) {
	codec, r := sampleCatchUp(t, 3)
	good := codec.MarshalCatchUpResponse(r)

	cases := map[string][]byte{
		"empty":        {},
		"header only":  good[:8],
		"torn update":  good[:12],
		"torn root":    good[:len(good)-1],
		"trailing":     append(append([]byte{}, good...), 0),
		"n over total": codec.MarshalCatchUpResponse(CatchUpResponse{Total: 2, Updates: r.Updates, Aggregate: r.Aggregate, Root: r.Root}),
	}
	// Out-of-order labels (also covers duplicates: ordering is strict).
	swapped := r
	swapped.Updates = []core.KeyUpdate{r.Updates[1], r.Updates[0], r.Updates[2]}
	cases["labels out of order"] = codec.MarshalCatchUpResponse(swapped)
	dup := r
	dup.Updates = []core.KeyUpdate{r.Updates[0], r.Updates[0], r.Updates[2]}
	cases["duplicate label"] = codec.MarshalCatchUpResponse(dup)
	// Empty range must be the canonical identity/zero-root encoding.
	cases["empty range with aggregate"] = codec.MarshalCatchUpResponse(
		CatchUpResponse{Total: 4, Aggregate: r.Aggregate})
	cases["empty range with root"] = codec.MarshalCatchUpResponse(
		CatchUpResponse{Total: 4, Aggregate: curve.Infinity(), Root: [32]byte{9}})

	for name, data := range cases {
		if _, err := codec.UnmarshalCatchUpResponse(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

package bls

import (
	"fmt"
	"testing"

	"timedrelease/internal/curve"
)

// TestPreparedVerifyAgreesWithVerify runs the prepared verifier against
// the plain one on genuine, tampered, wrong-message, wrong-key and
// identity signatures — the two must accept and reject identically.
func TestPreparedVerifyAgreesWithVerify(t *testing.T) {
	set, k := testSetup(t)
	pk := PreparePublicKey(set, k.Pub)
	other, err := GenerateKey(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	otherPk := PreparePublicKey(set, other.Pub)

	msg := []byte("2026-08-06T00:00:00Z")
	sig := k.Sign(set, "time", msg)
	cases := []struct {
		name string
		pk   *PreparedPublicKey
		pub  PublicKey
		dst  string
		msg  []byte
		sig  Signature
	}{
		{"genuine", pk, k.Pub, "time", msg, sig},
		{"wrong message", pk, k.Pub, "time", []byte("other"), sig},
		{"wrong domain", pk, k.Pub, "other", msg, sig},
		{"wrong key", otherPk, other.Pub, "time", msg, sig},
		{"tampered", pk, k.Pub, "time", msg, Signature{Point: set.Curve.Add(sig.Point, set.G)}},
		{"identity", pk, k.Pub, "time", msg, Signature{Point: curve.Infinity()}},
	}
	for _, tc := range cases {
		plain := Verify(set, tc.pub, tc.dst, tc.msg, tc.sig)
		prep := tc.pk.Verify(set, tc.dst, tc.msg, tc.sig)
		if plain != prep {
			t.Errorf("%s: Verify=%v but prepared Verify=%v", tc.name, plain, prep)
		}
	}
}

func TestPreparedVerifyAggregate(t *testing.T) {
	set, k := testSetup(t)
	pk := PreparePublicKey(set, k.Pub)
	msgs := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	agg := Signature{Point: curve.Infinity()}
	for _, m := range msgs {
		agg.Point = set.Curve.Add(agg.Point, k.Sign(set, "time", m).Point)
	}
	if !pk.VerifyAggregate(set, "time", msgs, agg) {
		t.Fatal("genuine aggregate must verify on the prepared path")
	}
	if VerifyAggregate(set, k.Pub, "time", msgs, agg) != pk.VerifyAggregate(set, "time", msgs, agg) {
		t.Fatal("prepared and plain aggregate verification disagree")
	}
	bad := Signature{Point: set.Curve.Add(agg.Point, set.G)}
	if pk.VerifyAggregate(set, "time", msgs, bad) {
		t.Fatal("tampered aggregate must fail on the prepared path")
	}
}

func TestPreparedVerifyBatch(t *testing.T) {
	set, k := testSetup(t)
	pk := PreparePublicKey(set, k.Pub)
	var msgs [][]byte
	var sigs []Signature
	for i := 0; i < 8; i++ {
		m := []byte(fmt.Sprintf("epoch-%d", i))
		msgs = append(msgs, m)
		sigs = append(sigs, k.Sign(set, "time", m))
	}
	ok, err := pk.VerifyBatch(set, "time", msgs, sigs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("genuine batch must verify on the prepared path")
	}
	sigs[3].Point = set.Curve.Add(sigs[3].Point, set.G)
	ok, err = pk.VerifyBatch(set, "time", msgs, sigs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("corrupted batch must fail on the prepared path")
	}
	// Empty and mismatched inputs behave like the package function.
	ok, err = pk.VerifyBatch(set, "time", nil, nil, nil)
	if err != nil || !ok {
		t.Fatalf("empty batch: %v %v", ok, err)
	}
	if _, err := pk.VerifyBatch(set, "time", msgs[:1], nil, nil); err == nil {
		t.Fatal("length mismatch must error")
	}
}

package bls

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"

	"timedrelease/internal/backend"
	"timedrelease/internal/curve"
	"timedrelease/internal/parallel"
	"timedrelease/internal/params"
)

// batchExponentBits sizes the random blinding exponents of batch
// verification; a forged signature slips through with probability
// ~2^-batchExponentBits per batch.
const batchExponentBits = 128

// VerifyBatch checks many same-key signatures with ONE pairing equation
// instead of one per signature:
//
//	ê(G, Σ eᵢ·σᵢ) = ê(sG, Σ eᵢ·H1(mᵢ))
//
// for fresh random 128-bit blinders eᵢ. If every σᵢ = s·H1(mᵢ) the
// equation holds; if any signature is wrong, the random combination
// detects it except with probability ~2⁻¹²⁸. This is the fast path for a
// receiver catching up on many archived key updates at once: 2 Miller
// loops total instead of 2 per update (measured in E6).
//
// The per-signature work (subgroup check, message hash, two blinded
// scalar multiplications) runs across a GOMAXPROCS-bounded worker pool;
// the sums are then folded in index order, so the result is identical to
// the sequential computation.
//
// A false batch tells you *something* failed but not what; fall back to
// per-signature Verify to locate offenders.
func VerifyBatch(set *params.Set, pub PublicKey, dst string, msgs [][]byte, sigs []Signature, rng io.Reader) (bool, error) {
	return verifyBatch(set, dst, msgs, sigs, rng, func(sigSum, hashSum curve.Point) bool {
		return set.B.SamePairing(pub.G, sigSum, pub.SG, hashSum)
	})
}

// verifyBatch computes the blinded sums Σeᵢσᵢ and ΣeᵢH1(mᵢ) and hands
// them to check — the single pairing equation, prepared or not.
func verifyBatch(set *params.Set, dst string, msgs [][]byte, sigs []Signature, rng io.Reader, check func(sigSum, hashSum curve.Point) bool) (bool, error) {
	if len(msgs) != len(sigs) {
		return false, fmt.Errorf("bls: %d messages for %d signatures", len(msgs), len(sigs))
	}
	if len(msgs) == 0 {
		return true, nil
	}
	if rng == nil {
		rng = rand.Reader
	}
	// Draw all blinders first, sequentially: the rng may be a
	// deterministic test reader, and parallel sampling would make the
	// blinder assignment schedule-dependent.
	limit := new(big.Int).Lsh(big.NewInt(1), batchExponentBits)
	blinders := make([]*big.Int, len(sigs))
	for i := range blinders {
		e, err := rand.Int(rng, limit)
		if err != nil {
			return false, fmt.Errorf("bls: sampling batch blinder: %w", err)
		}
		blinders[i] = e.Add(e, big.NewInt(1)) // e ∈ [1, 2^128]
	}

	blindedSigs := make([]curve.Point, len(sigs))
	blindedHashes := make([]curve.Point, len(sigs))
	bad := make([]bool, len(sigs))
	parallel.For(len(sigs), func(i int) {
		sig := sigs[i]
		if sig.Point.IsInfinity() || !set.B.InSubgroup(backend.G2, sig.Point) {
			bad[i] = true
			return
		}
		blindedSigs[i] = set.B.ScalarMult(backend.G2, blinders[i], sig.Point)
		h := set.B.HashToG2(dst, msgs[i])
		blindedHashes[i] = set.B.ScalarMult(backend.G2, blinders[i], h)
	})

	sigSum := set.B.Infinity(backend.G2)
	hashSum := set.B.Infinity(backend.G2)
	for i := range sigs {
		if bad[i] {
			return false, nil
		}
		sigSum = set.B.Add(backend.G2, sigSum, blindedSigs[i])
		hashSum = set.B.Add(backend.G2, hashSum, blindedHashes[i])
	}
	return check(sigSum, hashSum), nil
}

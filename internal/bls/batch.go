package bls

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"

	"timedrelease/internal/curve"
	"timedrelease/internal/params"
)

// batchExponentBits sizes the random blinding exponents of batch
// verification; a forged signature slips through with probability
// ~2^-batchExponentBits per batch.
const batchExponentBits = 128

// VerifyBatch checks many same-key signatures with ONE pairing equation
// instead of one per signature:
//
//	ê(G, Σ eᵢ·σᵢ) = ê(sG, Σ eᵢ·H1(mᵢ))
//
// for fresh random 128-bit blinders eᵢ. If every σᵢ = s·H1(mᵢ) the
// equation holds; if any signature is wrong, the random combination
// detects it except with probability ~2⁻¹²⁸. This is the fast path for a
// receiver catching up on many archived key updates at once: 2 Miller
// loops total instead of 2 per update (measured in E6).
//
// A false batch tells you *something* failed but not what; fall back to
// per-signature Verify to locate offenders.
func VerifyBatch(set *params.Set, pub PublicKey, dst string, msgs [][]byte, sigs []Signature, rng io.Reader) (bool, error) {
	if len(msgs) != len(sigs) {
		return false, fmt.Errorf("bls: %d messages for %d signatures", len(msgs), len(sigs))
	}
	if len(msgs) == 0 {
		return true, nil
	}
	if rng == nil {
		rng = rand.Reader
	}
	limit := new(big.Int).Lsh(big.NewInt(1), batchExponentBits)

	sigSum := curve.Infinity()
	hashSum := curve.Infinity()
	for i, sig := range sigs {
		if sig.Point.IsInfinity() || !set.Curve.InSubgroup(sig.Point) {
			return false, nil
		}
		e, err := rand.Int(rng, limit)
		if err != nil {
			return false, fmt.Errorf("bls: sampling batch blinder: %w", err)
		}
		e.Add(e, big.NewInt(1)) // e ∈ [1, 2^128]
		sigSum = set.Curve.Add(sigSum, set.Curve.ScalarMult(e, sig.Point))
		h := set.Curve.HashToGroup(dst, msgs[i])
		hashSum = set.Curve.Add(hashSum, set.Curve.ScalarMult(e, h))
	}
	return set.Pairing.SamePairing(pub.G, sigSum, pub.SG, hashSum), nil
}

package bls

import (
	"fmt"
	"testing"
)

func TestVerifyBatchAccepts(t *testing.T) {
	set, k := testSetup(t)
	var msgs [][]byte
	var sigs []Signature
	for i := 0; i < 8; i++ {
		m := []byte(fmt.Sprintf("epoch-%d", i))
		msgs = append(msgs, m)
		sigs = append(sigs, k.Sign(set, "time", m))
	}
	ok, err := VerifyBatch(set, k.Pub, "time", msgs, sigs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("batch of genuine signatures must verify")
	}
}

func TestVerifyBatchDetectsOneBadSignature(t *testing.T) {
	set, k := testSetup(t)
	var msgs [][]byte
	var sigs []Signature
	for i := 0; i < 8; i++ {
		m := []byte(fmt.Sprintf("epoch-%d", i))
		msgs = append(msgs, m)
		sigs = append(sigs, k.Sign(set, "time", m))
	}
	// Corrupt exactly one signature in the middle.
	sigs[4].Point = set.Curve.Add(sigs[4].Point, set.G)
	ok, err := VerifyBatch(set, k.Pub, "time", msgs, sigs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("batch with a corrupted signature must fail")
	}
}

func TestVerifyBatchDetectsSwappedSignatures(t *testing.T) {
	// Two valid signatures on swapped messages: each pair is individually
	// wrong even though the sums of naive (unblinded) combinations would
	// match — the random blinders must catch it.
	set, k := testSetup(t)
	msgs := [][]byte{[]byte("a"), []byte("b")}
	sigs := []Signature{k.Sign(set, "time", msgs[1]), k.Sign(set, "time", msgs[0])}
	ok, err := VerifyBatch(set, k.Pub, "time", msgs, sigs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("swapped signatures must fail batch verification")
	}
}

func TestVerifyBatchEdgeCases(t *testing.T) {
	set, k := testSetup(t)
	// Empty batch: vacuously true.
	ok, err := VerifyBatch(set, k.Pub, "time", nil, nil, nil)
	if err != nil || !ok {
		t.Fatalf("empty batch: %v %v", ok, err)
	}
	// Length mismatch is an error, not a false.
	if _, err := VerifyBatch(set, k.Pub, "time", [][]byte{[]byte("m")}, nil, nil); err == nil {
		t.Fatal("length mismatch must error")
	}
	// Identity signature rejected.
	ok, err = VerifyBatch(set, k.Pub, "time", [][]byte{[]byte("m")}, []Signature{{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("identity signature must fail")
	}
	// Single-element batch agrees with Verify.
	m := []byte("solo")
	sig := k.Sign(set, "time", m)
	ok, err = VerifyBatch(set, k.Pub, "time", [][]byte{m}, []Signature{sig}, nil)
	if err != nil || !ok {
		t.Fatalf("single batch: %v %v", ok, err)
	}
}

package bls

import (
	"math/big"
	"testing"

	"timedrelease/internal/curve"
	"timedrelease/internal/params"
)

func testSetup(t *testing.T) (*params.Set, *PrivateKey) {
	t.Helper()
	set := params.MustPreset("Test160")
	k, err := GenerateKey(set, nil)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	return set, k
}

func TestSignVerify(t *testing.T) {
	set, k := testSetup(t)
	msg := []byte("2026-07-05T12:00:00Z")
	sig := k.Sign(set, "time", msg)
	if !Verify(set, k.Pub, "time", msg, sig) {
		t.Fatal("genuine signature must verify")
	}
}

func TestVerifyRejections(t *testing.T) {
	set, k := testSetup(t)
	msg := []byte("message")
	sig := k.Sign(set, "dst", msg)

	if Verify(set, k.Pub, "dst", []byte("other message"), sig) {
		t.Fatal("signature must not verify for a different message")
	}
	if Verify(set, k.Pub, "other-dst", msg, sig) {
		t.Fatal("signature must not verify under a different domain")
	}

	other, err := GenerateKey(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	if Verify(set, other.Pub, "dst", msg, sig) {
		t.Fatal("signature must not verify under another key")
	}

	tampered := Signature{Point: set.Curve.Add(sig.Point, set.G)}
	if Verify(set, k.Pub, "dst", msg, tampered) {
		t.Fatal("tampered signature must not verify")
	}
	if Verify(set, k.Pub, "dst", msg, Signature{Point: curve.Infinity()}) {
		t.Fatal("identity signature must not verify")
	}
}

func TestSignatureIsDeterministic(t *testing.T) {
	// s·H1(m) has no signing nonce — the same (key, message) always gives
	// the same short signature. This is what lets the time server publish
	// one canonical update per instant.
	set, k := testSetup(t)
	s1 := k.Sign(set, "time", []byte("T"))
	s2 := k.Sign(set, "time", []byte("T"))
	if !set.Curve.Equal(s1.Point, s2.Point) {
		t.Fatal("BLS signatures must be deterministic")
	}
}

func TestNewPrivateKeyValidation(t *testing.T) {
	set, _ := testSetup(t)
	if _, err := NewPrivateKey(set, set.G, new(big.Int)); err == nil {
		t.Fatal("zero scalar must be rejected")
	}
	if _, err := NewPrivateKey(set, set.G, set.Q); err == nil {
		t.Fatal("scalar = q must be rejected")
	}
	if _, err := GenerateKeyWithGenerator(set, curve.Infinity(), nil); err == nil {
		t.Fatal("identity generator must be rejected")
	}
}

func TestCustomGenerator(t *testing.T) {
	set, _ := testSetup(t)
	g, err := set.Curve.RandomSubgroupPoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	k, err := GenerateKeyWithGenerator(set, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("per-server generator")
	sig := k.Sign(set, "time", msg)
	if !Verify(set, k.Pub, "time", msg, sig) {
		t.Fatal("signature under custom generator must verify")
	}
}

func TestAggregateSameKey(t *testing.T) {
	set, k := testSetup(t)
	msgs := [][]byte{[]byte("cond-a"), []byte("cond-b"), []byte("cond-c")}
	sigs := make([]Signature, len(msgs))
	for i, m := range msgs {
		sigs[i] = k.Sign(set, "policy", m)
	}
	agg := Aggregate(set, sigs)
	if !VerifyAggregate(set, k.Pub, "policy", msgs, agg) {
		t.Fatal("aggregate of genuine signatures must verify")
	}
	// Aggregate over a different message set must fail.
	if VerifyAggregate(set, k.Pub, "policy", msgs[:2], agg) {
		t.Fatal("aggregate must not verify against a subset of messages")
	}
	// Dropping one component signature must fail.
	partial := Aggregate(set, sigs[:2])
	if VerifyAggregate(set, k.Pub, "policy", msgs, partial) {
		t.Fatal("partial aggregate must not verify")
	}
	// Point-sum identity: aggregate equals s·Σ H1(mᵢ).
	hsum := curve.Infinity()
	for _, m := range msgs {
		hsum = set.Curve.Add(hsum, set.Curve.HashToGroup("policy", m))
	}
	want := set.Curve.ScalarMult(k.S, hsum)
	if !set.Curve.Equal(agg.Point, want) {
		t.Fatal("aggregate != s·ΣH1(mᵢ)")
	}
}

func TestSignatureSize(t *testing.T) {
	// "Short signature": one compressed group element.
	set, k := testSetup(t)
	sig := k.Sign(set, "time", []byte("m"))
	enc := set.Curve.Marshal(sig.Point)
	if len(enc) != set.Curve.MarshalSize() {
		t.Fatalf("signature encodes to %d bytes, want %d", len(enc), set.Curve.MarshalSize())
	}
}

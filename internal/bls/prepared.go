package bls

import (
	"io"

	"timedrelease/internal/curve"
	"timedrelease/internal/pairing"
	"timedrelease/internal/params"
)

// PreparedPublicKey is a verification key with the Miller-loop line
// schedules of both pairing arguments that stay fixed across
// verifications — the generator G and the key sG — precomputed once.
// Every Verify/VerifyAggregate/VerifyBatch against the same key then
// skips all Miller-loop point arithmetic (one field multiplication per
// stored line instead), which is the dominant cost of verification.
//
// Preparation costs roughly one pairing; it pays for itself from the
// second verification on. A PreparedPublicKey is immutable and safe for
// concurrent use. The time-server trust anchor is the canonical
// consumer: core.Scheme caches one per server key, so update
// verification (ê(G, I_T) = ê(sG, H1(T))) is always on this path.
type PreparedPublicKey struct {
	Pub PublicKey

	// g and sg hold the prepared line schedules of Pub.G and Pub.SG.
	g, sg *pairing.PreparedPoint
}

// PreparePublicKey precomputes the fixed-argument pairing schedules of
// pub for repeated verification.
func PreparePublicKey(set *params.Set, pub PublicKey) *PreparedPublicKey {
	return &PreparedPublicKey{
		Pub: pub,
		g:   set.Pairing.Precompute(pub.G),
		sg:  set.Pairing.Precompute(pub.SG),
	}
}

// G returns the prepared schedule of the generator; core reuses it for
// checks that pair against G with a varying second argument.
func (pk *PreparedPublicKey) G() *pairing.PreparedPoint { return pk.g }

// SG returns the prepared schedule of s·G.
func (pk *PreparedPublicKey) SG() *pairing.PreparedPoint { return pk.sg }

// Verify checks ê(G, sig) = ê(sG, H1(msg)) over the precomputed
// schedules; it accepts exactly the signatures Verify accepts.
func (pk *PreparedPublicKey) Verify(set *params.Set, dst string, msg []byte, sig Signature) bool {
	return pk.VerifyHash(set, set.Curve.HashToGroup(dst, msg), sig)
}

// VerifyHash is Verify with the message already hashed onto the curve.
// Callers that memoise H1 — core's sharded label cache hashes each
// time label once per scheme — skip the try-and-increment hashing that
// otherwise dominates verification cost. h must be H1(dst, msg) for
// the check to mean anything.
func (pk *PreparedPublicKey) VerifyHash(set *params.Set, h curve.Point, sig Signature) bool {
	if sig.Point.IsInfinity() || !set.Curve.InSubgroup(sig.Point) {
		return false
	}
	return set.Pairing.SamePairingPrepared(pk.g, sig.Point, pk.sg, h)
}

// VerifyAggregate checks a same-key aggregate signature over the message
// list, like the package-level VerifyAggregate but on the prepared path.
func (pk *PreparedPublicKey) VerifyAggregate(set *params.Set, dst string, msgs [][]byte, agg Signature) bool {
	if agg.Point.IsInfinity() || !set.Curve.InSubgroup(agg.Point) {
		return false
	}
	hsum := curve.Infinity()
	for _, m := range msgs {
		hsum = set.Curve.Add(hsum, set.Curve.HashToGroup(dst, m))
	}
	return set.Pairing.SamePairingPrepared(pk.g, agg.Point, pk.sg, hsum)
}

// VerifyAggregatePrepared checks a same-key aggregate signature against
// messages that are already hashed onto the curve:
//
//	ê(G, agg) = ê(sG, Σ hᵢ)
//
// — a single prepared pairing product, however many messages the
// aggregate covers. Callers that memoise H1 (core's sharded label
// cache) pay n point additions and one PairProduct, full stop; this is
// the O(1)-pairing catch-up path. Each hᵢ must be H1(dst, mᵢ) for the
// check to mean anything.
//
// Like the other aggregate verifiers it binds the signature to the SUM
// of the hashes: it proves every listed message was signed, provided
// the list itself is honest. A transport that can alter the list can
// only be caught by the per-update checks — see the client's fallback.
func (pk *PreparedPublicKey) VerifyAggregatePrepared(set *params.Set, hashes []curve.Point, agg Signature) bool {
	if len(hashes) == 0 {
		return agg.Point.IsInfinity()
	}
	if agg.Point.IsInfinity() || !set.Curve.InSubgroup(agg.Point) {
		return false
	}
	hsum := curve.Infinity()
	for _, h := range hashes {
		hsum = set.Curve.Add(hsum, h)
	}
	return set.Pairing.SamePairingPrepared(pk.g, agg.Point, pk.sg, hsum)
}

// VerifyBatch checks many same-key signatures with one blinded pairing
// equation, like the package-level VerifyBatch but with the two Miller
// loops on the prepared path. See VerifyBatch for the security argument
// and failure semantics.
func (pk *PreparedPublicKey) VerifyBatch(set *params.Set, dst string, msgs [][]byte, sigs []Signature, rng io.Reader) (bool, error) {
	return verifyBatch(set, dst, msgs, sigs, rng, func(sigSum, hashSum curve.Point) bool {
		return set.Pairing.SamePairingPrepared(pk.g, sigSum, pk.sg, hashSum)
	})
}

package bls

import (
	"io"

	"timedrelease/internal/backend"
	"timedrelease/internal/curve"
	"timedrelease/internal/params"
)

// PreparedPublicKey is a verification key with the backend's
// fixed-argument pairing precomputation done once. On a Type-1 backend
// that is the Miller-loop line schedules of G and sG; on BLS12-381 it
// is the prepared G2 schedules of the generator and sG2. Every
// Verify/VerifyAggregate/VerifyBatch against the same key then skips
// the repeated Miller-loop point arithmetic, which is the dominant
// cost of verification.
//
// Preparation costs roughly one pairing; it pays for itself from the
// second verification on. A PreparedPublicKey is immutable and safe for
// concurrent use. The time-server trust anchor is the canonical
// consumer: core.Scheme caches one per server key, so update
// verification (ê(G, I_T) = ê(sG, H1(T))) is always on this path.
type PreparedPublicKey struct {
	Pub PublicKey

	pk backend.PreparedKey
}

// PreparePublicKey precomputes the fixed-argument pairing schedules of
// pub for repeated verification.
func PreparePublicKey(set *params.Set, pub PublicKey) *PreparedPublicKey {
	return &PreparedPublicKey{
		Pub: pub,
		pk:  set.B.PrepareKey(pub.G, pub.SG, pub.SG2),
	}
}

// SameKey checks the user-key well-formedness equation on the prepared
// path: ê(aG, sG) = ê(G, a·sG) in the symmetric setting, equivalently
// ê(aG, sG2) = ê(asG, G2) in Type-3 form — proving asg was formed with
// the same scalar a as ag. Subgroup checks are the caller's job.
func (pk *PreparedPublicKey) SameKey(ag, asg curve.Point) bool { return pk.pk.SameKey(ag, asg) }

// Verify checks ê(G, sig) = ê(sG, H1(msg)) over the precomputed
// schedules; it accepts exactly the signatures Verify accepts.
func (pk *PreparedPublicKey) Verify(set *params.Set, dst string, msg []byte, sig Signature) bool {
	return pk.VerifyHash(set, set.B.HashToG2(dst, msg), sig)
}

// VerifyHash is Verify with the message already hashed onto the curve.
// Callers that memoise H1 — core's sharded label cache hashes each
// time label once per scheme — skip the hash-to-curve work that
// otherwise dominates verification cost. h must be H1(dst, msg) for
// the check to mean anything.
func (pk *PreparedPublicKey) VerifyHash(_ *params.Set, h curve.Point, sig Signature) bool {
	return pk.pk.VerifySig(h, sig.Point)
}

// VerifyAggregate checks a same-key aggregate signature over the message
// list, like the package-level VerifyAggregate but on the prepared path.
func (pk *PreparedPublicKey) VerifyAggregate(set *params.Set, dst string, msgs [][]byte, agg Signature) bool {
	hashes := make([]curve.Point, len(msgs))
	for i, m := range msgs {
		hashes[i] = set.B.HashToG2(dst, m)
	}
	if len(hashes) == 0 {
		// Match the package-level verifier: an aggregate over no
		// messages is rejected outright rather than compared to the
		// identity.
		return false
	}
	return pk.pk.VerifyAggregate(hashes, agg.Point)
}

// VerifyAggregatePrepared checks a same-key aggregate signature against
// messages that are already hashed onto the curve:
//
//	ê(G, agg) = ê(sG, Σ hᵢ)
//
// — a single prepared pairing product, however many messages the
// aggregate covers. Callers that memoise H1 (core's sharded label
// cache) pay n point additions and one PairProduct, full stop; this is
// the O(1)-pairing catch-up path. Each hᵢ must be H1(dst, mᵢ) for the
// check to mean anything. An empty hash list verifies iff agg is the
// identity.
//
// Like the other aggregate verifiers it binds the signature to the SUM
// of the hashes: it proves every listed message was signed, provided
// the list itself is honest. A transport that can alter the list can
// only be caught by the per-update checks — see the client's fallback.
func (pk *PreparedPublicKey) VerifyAggregatePrepared(_ *params.Set, hashes []curve.Point, agg Signature) bool {
	return pk.pk.VerifyAggregate(hashes, agg.Point)
}

// VerifyBatch checks many same-key signatures with one blinded pairing
// equation, like the package-level VerifyBatch but with the fixed
// pairing arguments on the prepared path. See VerifyBatch for the
// security argument and failure semantics.
func (pk *PreparedPublicKey) VerifyBatch(set *params.Set, dst string, msgs [][]byte, sigs []Signature, rng io.Reader) (bool, error) {
	return verifyBatch(set, dst, msgs, sigs, rng, func(sigSum, hashSum curve.Point) bool {
		return pk.pk.PairCheck(hashSum, sigSum)
	})
}

package bls

import (
	"fmt"
	"testing"

	"timedrelease/internal/curve"
)

func TestAggregateIntoMatchesAggregate(t *testing.T) {
	set, k := testSetup(t)
	var sigs []Signature
	var msgs [][]byte
	for i := 0; i < 7; i++ {
		m := []byte(fmt.Sprintf("epoch-%d", i))
		msgs = append(msgs, m)
		sigs = append(sigs, k.Sign(set, "dst", m))
	}

	whole := Aggregate(set, sigs)

	// Incremental folding — one at a time from the zero Signature —
	// must land on the same point.
	var acc Signature
	for _, s := range sigs {
		acc = AggregateInto(set, acc, s)
	}
	if !set.Curve.Equal(acc.Point, whole.Point) {
		t.Fatal("incremental aggregation diverged from Aggregate")
	}

	// And in one variadic call from an explicit empty aggregate.
	batch := AggregateInto(set, Signature{Point: curve.Infinity()}, sigs...)
	if !set.Curve.Equal(batch.Point, whole.Point) {
		t.Fatal("variadic aggregation diverged from Aggregate")
	}

	if !VerifyAggregate(set, k.Pub, "dst", msgs, acc) {
		t.Fatal("incrementally built aggregate must verify")
	}
}

func TestVerifyAggregatePrepared(t *testing.T) {
	set, k := testSetup(t)
	pk := PreparePublicKey(set, k.Pub)

	var sigs []Signature
	var msgs [][]byte
	var hashes []curve.Point
	for i := 0; i < 9; i++ {
		m := []byte(fmt.Sprintf("label-%d", i))
		msgs = append(msgs, m)
		hashes = append(hashes, set.Curve.HashToGroup("dst", m))
		sigs = append(sigs, k.Sign(set, "dst", m))
	}
	agg := Aggregate(set, sigs)

	if !pk.VerifyAggregatePrepared(set, hashes, agg) {
		t.Fatal("genuine aggregate must verify on the prepared pre-hashed path")
	}
	// Differential against the unprepared verifier.
	if pk.VerifyAggregatePrepared(set, hashes, agg) != VerifyAggregate(set, k.Pub, "dst", msgs, agg) {
		t.Fatal("prepared and plain aggregate verification disagree")
	}

	// A dropped hash breaks the sum.
	if pk.VerifyAggregatePrepared(set, hashes[:len(hashes)-1], agg) {
		t.Fatal("aggregate over a shorter message list must not verify")
	}
	// A signature by another key inside the aggregate breaks it.
	other, err := GenerateKey(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	forged := make([]Signature, len(sigs))
	copy(forged, sigs)
	forged[4] = other.Sign(set, "dst", msgs[4])
	if pk.VerifyAggregatePrepared(set, hashes, Aggregate(set, forged)) {
		t.Fatal("aggregate containing a foreign-key signature must not verify")
	}

	// Empty list: verifies iff the aggregate is the identity.
	if !pk.VerifyAggregatePrepared(set, nil, Signature{Point: curve.Infinity()}) {
		t.Fatal("empty aggregate over no messages must verify")
	}
	if pk.VerifyAggregatePrepared(set, nil, agg) {
		t.Fatal("non-identity aggregate over no messages must not verify")
	}
	// Identity aggregate over a non-empty list is rejected outright.
	if pk.VerifyAggregatePrepared(set, hashes, Signature{Point: curve.Infinity()}) {
		t.Fatal("identity aggregate over messages must not verify")
	}
}

// Package bls implements Boneh–Lynn–Shacham short signatures over the
// pairing backend. In the paper, a time-bound key update I_T is
// exactly a BLS signature s·H1(T) by the time server — "self-
// authenticated" because anyone can check ê(G, I_T) = ê(sG, H1(T))
// without any additional signature (§5.3.1).
//
// Keys live in G1 and signatures (with the hashed messages) in G2; on
// the paper's Type-1 backends the two groups coincide and every
// operation below reduces bit-for-bit to the historical symmetric
// code.
//
// The package also provides same-key aggregation (point addition of
// signatures), which the policy-lock generalisation uses to combine the
// updates of all conditions in an AND clause into one decryption key.
package bls

import (
	"errors"
	"io"
	"math/big"

	"timedrelease/internal/backend"
	"timedrelease/internal/curve"
	"timedrelease/internal/params"
)

// PublicKey is a BLS verification key: the generator used, s·G, and
// the G2 mirror s·G2 that asymmetric backends need for pairing checks
// whose second slot must hold the key (the user-key well-formedness
// equation). On a symmetric backend SG2 == SG.
type PublicKey struct {
	G   curve.Point // generator of G1
	SG  curve.Point // s·G ∈ G1
	SG2 curve.Point // s·G2 ∈ G2 (same point as SG when symmetric)
}

// PrivateKey is a BLS signing key.
type PrivateKey struct {
	S   *big.Int
	Pub PublicKey
}

// Signature is a BLS short signature: a single compressed G2 element.
type Signature struct {
	Point curve.Point // s·H1(msg) ∈ G2
}

// GenerateKey creates a key pair over the canonical generator of set.
func GenerateKey(set *params.Set, rng io.Reader) (*PrivateKey, error) {
	return GenerateKeyWithGenerator(set, set.G, rng)
}

// GenerateKeyWithGenerator creates a key pair over an explicit generator
// g (the multi-server construction gives each server its own generator).
func GenerateKeyWithGenerator(set *params.Set, g curve.Point, rng io.Reader) (*PrivateKey, error) {
	if g.IsInfinity() || !set.B.InSubgroup(backend.G1, g) {
		return nil, errors.New("bls: generator must be a non-identity subgroup point")
	}
	s, err := set.B.RandScalar(rng)
	if err != nil {
		return nil, err
	}
	return NewPrivateKey(set, g, s)
}

// NewPrivateKey builds a key pair from an explicit scalar (used by
// deterministic tests and key-recovery tools). The scalar must be in
// [1, q-1].
func NewPrivateKey(set *params.Set, g curve.Point, s *big.Int) (*PrivateKey, error) {
	if s.Sign() <= 0 || s.Cmp(set.Q) >= 0 {
		return nil, errors.New("bls: scalar out of range [1, q-1]")
	}
	sg := set.B.ScalarMult(backend.G1, s, g)
	sg2 := sg
	if set.Asymmetric() {
		sg2 = set.B.ScalarMult(backend.G2, s, set.G2)
	}
	return &PrivateKey{
		S:   new(big.Int).Set(s),
		Pub: PublicKey{G: g.Clone(), SG: sg, SG2: sg2},
	}, nil
}

// Sign produces the short signature s·H1(msg) under the domain-separated
// hash oracle dst.
func (k *PrivateKey) Sign(set *params.Set, dst string, msg []byte) Signature {
	h := set.B.HashToG2(dst, msg)
	return Signature{Point: set.B.ScalarMult(backend.G2, k.S, h)}
}

// Verify checks ê(G, sig) = ê(sG, H1(msg)). It rejects identity or
// out-of-subgroup signature points.
func Verify(set *params.Set, pub PublicKey, dst string, msg []byte, sig Signature) bool {
	if sig.Point.IsInfinity() || !set.B.InSubgroup(backend.G2, sig.Point) {
		return false
	}
	h := set.B.HashToG2(dst, msg)
	return set.B.SamePairing(pub.G, sig.Point, pub.SG, h)
}

// emptyAggregate reports whether p is a zero-value Signature point —
// neither a Type-1 point, an external-backend point, nor the tagged
// identity — which the aggregate folders treat as the empty aggregate.
func emptyAggregate(p curve.Point) bool {
	return p.X == nil && p.Ext == nil && !p.IsInfinity()
}

// Aggregate sums signatures by the same key over distinct messages into
// one signature: Σ s·H1(mᵢ) = s·ΣH1(mᵢ).
func Aggregate(set *params.Set, sigs []Signature) Signature {
	acc := set.B.Infinity(backend.G2)
	for _, s := range sigs {
		acc = set.B.Add(backend.G2, acc, s.Point)
	}
	return Signature{Point: acc}
}

// AggregateInto folds more signatures into a running same-key
// aggregate: AggregateInto(acc, s₁…sₙ) = acc + Σsᵢ. Starting from the
// zero Signature (or one whose point is the identity) and folding every
// signature of a set is equivalent to Aggregate over the whole set —
// this is what the archive's checkpoint aggregates are built from, one
// append at a time, without re-summing the prefix.
func AggregateInto(set *params.Set, acc Signature, sigs ...Signature) Signature {
	p := acc.Point
	if emptyAggregate(p) {
		p = set.B.Infinity(backend.G2)
	}
	for _, s := range sigs {
		p = set.B.Add(backend.G2, p, s.Point)
	}
	return Signature{Point: p}
}

// VerifyAggregate checks a same-key aggregate over the message list:
// ê(G, agg) = ê(sG, Σ H1(mᵢ)). Messages must be distinct for the usual
// aggregate-security argument; this function does not enforce that.
func VerifyAggregate(set *params.Set, pub PublicKey, dst string, msgs [][]byte, agg Signature) bool {
	if agg.Point.IsInfinity() || !set.B.InSubgroup(backend.G2, agg.Point) {
		return false
	}
	hsum := set.B.Infinity(backend.G2)
	for _, m := range msgs {
		hsum = set.B.Add(backend.G2, hsum, set.B.HashToG2(dst, m))
	}
	return set.B.SamePairing(pub.G, agg.Point, pub.SG, hsum)
}

// Package bls implements Boneh–Lynn–Shacham short signatures over the
// Type-1 pairing group. In the paper, a time-bound key update I_T is
// exactly a BLS signature s·H1(T) by the time server — "self-
// authenticated" because anyone can check ê(G, I_T) = ê(sG, H1(T))
// without any additional signature (§5.3.1).
//
// The package also provides same-key aggregation (point addition of
// signatures), which the policy-lock generalisation uses to combine the
// updates of all conditions in an AND clause into one decryption key.
package bls

import (
	"errors"
	"io"
	"math/big"

	"timedrelease/internal/curve"
	"timedrelease/internal/params"
)

// PublicKey is a BLS verification key: the generator used and s·G.
type PublicKey struct {
	G  curve.Point // generator of the subgroup
	SG curve.Point // s·G
}

// PrivateKey is a BLS signing key.
type PrivateKey struct {
	S   *big.Int
	Pub PublicKey
}

// Signature is a BLS short signature: a single compressed group element.
type Signature struct {
	Point curve.Point // s·H1(msg)
}

// GenerateKey creates a key pair over the canonical generator of set.
func GenerateKey(set *params.Set, rng io.Reader) (*PrivateKey, error) {
	return GenerateKeyWithGenerator(set, set.G, rng)
}

// GenerateKeyWithGenerator creates a key pair over an explicit generator
// g (the multi-server construction gives each server its own generator).
func GenerateKeyWithGenerator(set *params.Set, g curve.Point, rng io.Reader) (*PrivateKey, error) {
	if g.IsInfinity() || !set.Curve.InSubgroup(g) {
		return nil, errors.New("bls: generator must be a non-identity subgroup point")
	}
	s, err := set.Curve.RandScalar(rng)
	if err != nil {
		return nil, err
	}
	return NewPrivateKey(set, g, s)
}

// NewPrivateKey builds a key pair from an explicit scalar (used by
// deterministic tests and key-recovery tools). The scalar must be in
// [1, q-1].
func NewPrivateKey(set *params.Set, g curve.Point, s *big.Int) (*PrivateKey, error) {
	if s.Sign() <= 0 || s.Cmp(set.Q) >= 0 {
		return nil, errors.New("bls: scalar out of range [1, q-1]")
	}
	return &PrivateKey{
		S:   new(big.Int).Set(s),
		Pub: PublicKey{G: g.Clone(), SG: set.Curve.ScalarMult(s, g)},
	}, nil
}

// Sign produces the short signature s·H1(msg) under the domain-separated
// hash oracle dst.
func (k *PrivateKey) Sign(set *params.Set, dst string, msg []byte) Signature {
	h := set.Curve.HashToGroup(dst, msg)
	return Signature{Point: set.Curve.ScalarMult(k.S, h)}
}

// Verify checks ê(G, sig) = ê(sG, H1(msg)). It rejects identity or
// out-of-subgroup signature points.
func Verify(set *params.Set, pub PublicKey, dst string, msg []byte, sig Signature) bool {
	if sig.Point.IsInfinity() || !set.Curve.InSubgroup(sig.Point) {
		return false
	}
	h := set.Curve.HashToGroup(dst, msg)
	return set.Pairing.SamePairing(pub.G, sig.Point, pub.SG, h)
}

// Aggregate sums signatures by the same key over distinct messages into
// one signature: Σ s·H1(mᵢ) = s·ΣH1(mᵢ).
func Aggregate(set *params.Set, sigs []Signature) Signature {
	acc := curve.Infinity()
	for _, s := range sigs {
		acc = set.Curve.Add(acc, s.Point)
	}
	return Signature{Point: acc}
}

// AggregateInto folds more signatures into a running same-key
// aggregate: AggregateInto(acc, s₁…sₙ) = acc + Σsᵢ. Starting from the
// zero Signature (or one whose point is the identity) and folding every
// signature of a set is equivalent to Aggregate over the whole set —
// this is what the archive's checkpoint aggregates are built from, one
// append at a time, without re-summing the prefix.
func AggregateInto(set *params.Set, acc Signature, sigs ...Signature) Signature {
	p := acc.Point
	if p.X == nil && !p.IsInfinity() {
		p = curve.Infinity() // zero-value Signature: empty aggregate
	}
	for _, s := range sigs {
		p = set.Curve.Add(p, s.Point)
	}
	return Signature{Point: p}
}

// VerifyAggregate checks a same-key aggregate over the message list:
// ê(G, agg) = ê(sG, Σ H1(mᵢ)). Messages must be distinct for the usual
// aggregate-security argument; this function does not enforce that.
func VerifyAggregate(set *params.Set, pub PublicKey, dst string, msgs [][]byte, agg Signature) bool {
	if agg.Point.IsInfinity() || !set.Curve.InSubgroup(agg.Point) {
		return false
	}
	hsum := curve.Infinity()
	for _, m := range msgs {
		hsum = set.Curve.Add(hsum, set.Curve.HashToGroup(dst, m))
	}
	return set.Pairing.SamePairing(pub.G, agg.Point, pub.SG, hsum)
}

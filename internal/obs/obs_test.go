package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("re-registering a counter name must return the same counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	r.GaugeFunc("polled", func() int64 { return 42 })
	s := r.Snapshot()
	if s.Counters["c"] != 5 || s.Gauges["g"] != 4 || s.Gauges["polled"] != 42 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.GaugeFunc("x", func() int64 { return 1 })
	r.Histogram("x").Observe(time.Second)
	r.Reset()
	if n := len(r.Snapshot().Names()); n != 0 {
		t.Fatalf("nil registry snapshot has %d metrics", n)
	}
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Load() != 0 {
		t.Fatal("nil counter must load 0")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Load() != 0 {
		t.Fatal("nil gauge must load 0")
	}
	var h *Histogram
	h.Observe(time.Second)
	h.Since(time.Now())
	if h.Count() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil histogram must be empty")
	}
	var l *Logger
	l.Event("ignored", "k", "v") // must not panic
}

func TestHistogramQuantiles(t *testing.T) {
	// 1..100 ms in 1 ms steps over the default buckets: p50 must land
	// near 50 ms, p99 near 100 ms (bucket interpolation is coarse by
	// design — assert the right bucket, not exact values).
	h := NewHistogram(nil)
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.P50NS < 20_000_000 || s.P50NS > 50_000_000 {
		t.Fatalf("p50 = %d ns, want within (20ms, 50ms]", s.P50NS)
	}
	if s.P95NS < 50_000_000 || s.P95NS > 100_000_000 {
		t.Fatalf("p95 = %d ns, want within (50ms, 100ms]", s.P95NS)
	}
	if s.P99NS < s.P95NS {
		t.Fatalf("p99 (%d) < p95 (%d)", s.P99NS, s.P95NS)
	}
	wantSum := int64(0)
	for i := 1; i <= 100; i++ {
		wantSum += int64(i) * 1_000_000
	}
	if s.SumNS != wantSum {
		t.Fatalf("sum = %d, want %d", s.SumNS, wantSum)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 30})
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	h.ObserveNS(-5) // clamps to 0
	h.ObserveNS(1_000_000)
	s := h.Snapshot()
	if s.Buckets[0].Count != 1 {
		t.Fatalf("negative observation not clamped into first bucket: %+v", s.Buckets)
	}
	if last := s.Buckets[len(s.Buckets)-1]; last.LE != -1 || last.Count != 1 {
		t.Fatalf("overflow bucket wrong: %+v", last)
	}
	// A rank in the overflow bucket reports the last finite bound.
	if got := s.Quantile(1); got != 30 {
		t.Fatalf("overflow quantile = %d, want 30", got)
	}
	// Unsorted/duplicate bounds are sanitised.
	h2 := NewHistogram([]int64{10, 5, 10, 20})
	if len(h2.bounds) != 2 || h2.bounds[0] != 10 || h2.bounds[1] != 20 {
		t.Fatalf("bounds not sanitised: %v", h2.bounds)
	}
}

func TestResetKeepsRegistrations(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(time.Millisecond)
	r.Reset()
	s := r.Snapshot()
	if s.Counters["c"] != 0 || s.Gauges["g"] != 0 || s.Histograms["h"].Count != 0 {
		t.Fatalf("reset left values behind: %+v", s)
	}
	if _, ok := s.Histograms["h"]; !ok {
		t.Fatal("reset dropped a registration")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").ObserveNS(int64(i) * 1000)
				if i%50 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != 8*500 || s.Histograms["h"].Count != 8*500 {
		t.Fatalf("lost updates: %+v", s.Counters)
	}
}

func TestHandlerServesJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests").Add(2)
	r.Histogram("latency").Observe(3 * time.Millisecond)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("handler body is not valid snapshot JSON: %v", err)
	}
	if s.Counters["requests"] != 2 || s.Histograms["latency"].Count != 1 {
		t.Fatalf("round-tripped snapshot mismatch: %+v", s)
	}
}

func TestLoggerEvents(t *testing.T) {
	var buf bytes.Buffer
	fixed := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	l := NewLogger(&buf).WithClock(func() time.Time { return fixed })
	l.Event("publish", "label", "2026-08-06T12:00:00Z", "n", 3)
	l.Event("odd-tail", "graceful")
	l.Event("bad-value", "ch", make(chan int)) // unencodable → %v string

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if first["event"] != "publish" || first["n"] != float64(3) || first["ts"] != "2026-08-06T12:00:00Z" {
		t.Fatalf("event fields wrong: %v", first)
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if second["graceful"] != true {
		t.Fatalf("odd trailing key not defaulted to true: %v", second)
	}
	var third map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &third); err != nil {
		t.Fatalf("line 2 not JSON despite unencodable field: %v", err)
	}
	if _, ok := third["ch"].(string); !ok {
		t.Fatalf("unencodable value not stringified: %v", third)
	}
	if NewLogger(nil) != nil {
		t.Fatal("NewLogger(nil) must return nil")
	}
}

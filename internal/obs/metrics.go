package obs

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; all methods no-op on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be non-negative; negative deltas belong on a
// Gauge).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current value (0 on nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, live workers).
// The zero value is ready to use; all methods no-op on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add applies a signed delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets are the histogram upper bounds used when none
// are given: 1–2–5 decades from 1µs to 30s, wide enough for a cached
// archive read at the bottom and an SS1024 pairing (or a stalled disk)
// at the top. Values are nanoseconds.
var DefaultLatencyBuckets = []int64{
	1_000, 2_000, 5_000, // 1, 2, 5 µs
	10_000, 20_000, 50_000, // 10, 20, 50 µs
	100_000, 200_000, 500_000, // 0.1, 0.2, 0.5 ms
	1_000_000, 2_000_000, 5_000_000, // 1, 2, 5 ms
	10_000_000, 20_000_000, 50_000_000, // 10, 20, 50 ms
	100_000_000, 200_000_000, 500_000_000, // 0.1, 0.2, 0.5 s
	1_000_000_000, 2_000_000_000, 5_000_000_000, // 1, 2, 5 s
	10_000_000_000, 30_000_000_000, // 10, 30 s
}

// Histogram counts observations into fixed buckets and keeps the total
// count and sum, all atomically — one Observe is a few atomic adds, no
// locks, safe for any number of concurrent observers. Quantiles are
// estimated from the bucket counts at snapshot time.
//
// All methods no-op on a nil receiver.
type Histogram struct {
	bounds []int64 // ascending upper bounds (ns); +Inf implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds in nanoseconds (nil selects DefaultLatencyBuckets). Bounds
// that are unsorted or duplicated are sanitised by dropping the
// offenders, so a histogram is always well-formed.
func NewHistogram(boundsNS []int64) *Histogram {
	if boundsNS == nil {
		boundsNS = DefaultLatencyBuckets
	}
	clean := make([]int64, 0, len(boundsNS))
	for _, b := range boundsNS {
		if len(clean) == 0 || b > clean[len(clean)-1] {
			clean = append(clean, b)
		}
	}
	return &Histogram{
		bounds: clean,
		counts: make([]atomic.Int64, len(clean)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNS(d.Nanoseconds()) }

// Since records the time elapsed from start — the usual call shape is
//
//	defer h.Since(time.Now())
//
// (the argument is evaluated at defer time, the elapsed time at return).
func (h *Histogram) Since(start time.Time) { h.Observe(time.Since(start)) }

// ObserveNS records one value in nanoseconds. Negative values clamp to
// zero (a clock step mid-measurement should not corrupt the buckets).
func (h *Histogram) ObserveNS(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.counts[h.bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// bucketOf returns the index of the first bucket whose bound is ≥ ns
// (len(bounds) for the overflow bucket). Binary search: bucket counts
// are small and fixed.
func (h *Histogram) bucketOf(ns int64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

func (h *Histogram) reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// Snapshot copies the histogram state and derives the p50/p95/p99
// estimates. Empty buckets are included so consumers always see the
// full layout.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		SumNS:   h.sum.Load(),
		Buckets: make([]Bucket, len(h.counts)),
	}
	for i := range h.counts {
		le := int64(-1) // the +Inf overflow bucket
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = Bucket{LE: le, Count: h.counts[i].Load()}
	}
	// Concurrent observers may have bumped a bucket after count was
	// read; quantiles are computed over what the buckets actually hold.
	s.P50NS = s.Quantile(0.50)
	s.P95NS = s.Quantile(0.95)
	s.P99NS = s.Quantile(0.99)
	return s
}

// Bucket is one histogram bucket in a snapshot. LE is the inclusive
// upper bound in nanoseconds, or -1 for the overflow (+Inf) bucket.
type Bucket struct {
	LE    int64 `json:"le_ns"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	SumNS   int64    `json:"sum_ns"`
	P50NS   int64    `json:"p50_ns"`
	P95NS   int64    `json:"p95_ns"`
	P99NS   int64    `json:"p99_ns"`
	Buckets []Bucket `json:"buckets"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) in nanoseconds by
// linear interpolation inside the bucket containing the target rank.
// The overflow bucket has no upper bound, so ranks landing there
// report the last finite bound — a deliberate floor, read "≥ this".
// Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var seen int64
	for i, b := range s.Buckets {
		if float64(seen+b.Count) < rank {
			seen += b.Count
			continue
		}
		if b.LE < 0 { // overflow bucket
			if i > 0 {
				return s.Buckets[i-1].LE
			}
			return 0
		}
		lower := int64(0)
		if i > 0 {
			lower = s.Buckets[i-1].LE
		}
		if b.Count == 0 {
			return b.LE
		}
		frac := (rank - float64(seen)) / float64(b.Count)
		return lower + int64(frac*float64(b.LE-lower))
	}
	// Unreachable: total > 0 guarantees the loop returns.
	return 0
}

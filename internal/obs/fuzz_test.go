package obs

import (
	"encoding/json"
	"testing"
)

// FuzzMetricsSnapshot drives the /metrics JSON encoder with arbitrary
// metric names (including control characters and invalid UTF-8, which
// encoding/json must escape or replace) and arbitrary values, and
// asserts the emitted document is always valid JSON that decodes back
// into a Snapshot. Run a campaign with
//
//	go test -fuzz FuzzMetricsSnapshot ./internal/obs
//
// Under plain `go test` the seed corpus acts as an encoder regression
// suite.
func FuzzMetricsSnapshot(f *testing.F) {
	f.Add("requests", int64(1), int64(1000), int64(-7), uint(2))
	f.Add("", int64(-1), int64(0), int64(1<<62), uint(0))
	f.Add("weird\x00name\xff\"quote", int64(42), int64(-1), int64(5), uint(100))
	f.Add("nested.dots.and spaces", int64(0), int64(1), int64(1), uint(7))
	f.Fuzz(func(t *testing.T, name string, cval, bound, obsNS int64, n uint) {
		r := NewRegistry()
		r.Counter(name).Add(cval)
		r.Counter(name + ".twice").Add(cval)
		r.Gauge(name).Set(cval)
		r.GaugeFunc(name+".fn", func() int64 { return cval })
		h := r.HistogramWith(name, []int64{bound, bound + 1, bound * 2})
		for i := uint(0); i < n%256; i++ {
			h.ObserveNS(obsNS + int64(i))
		}

		out := r.Snapshot().JSON()
		if !json.Valid(out) {
			t.Fatalf("snapshot JSON invalid: %q", out)
		}
		var back Snapshot
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("snapshot does not round-trip: %v\n%s", err, out)
		}
		// The histogram must carry every observation; json escaping may
		// rewrite invalid UTF-8 in the name, so locate it by count
		// rather than by key.
		var found bool
		for _, hs := range back.Histograms {
			if hs.Count == int64(n%256) {
				found = true
				// Quantiles must be monotone for any bucket layout.
				if hs.P50NS > hs.P95NS || hs.P95NS > hs.P99NS {
					t.Fatalf("non-monotone quantiles: %+v", hs)
				}
			}
		}
		if !found {
			t.Fatalf("no histogram with %d observations in decoded snapshot", n%256)
		}
		// Reset must empty values but keep the document valid.
		r.Reset()
		if !json.Valid(r.Snapshot().JSON()) {
			t.Fatal("post-reset snapshot JSON invalid")
		}
	})
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Logger emits structured events as one JSON object per line:
//
//	{"ts":"2026-08-06T12:00:00.000000001Z","event":"publish","label":"...","n":3}
//
// It is deliberately tiny: no levels beyond the event name, no
// hierarchy, no buffering. The time server's privacy posture (§3: the
// server learns nothing about requesters) is preserved by construction
// — callers log what THEY did (published an update, finished a load
// cell), never who asked.
//
// All methods are safe for concurrent use and no-op on a nil receiver,
// so components carry a *Logger unconditionally.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time
}

// NewLogger returns a logger writing to w (nil w yields a logger that
// drops everything, same as a nil *Logger).
func NewLogger(w io.Writer) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{w: w, now: time.Now}
}

// WithClock substitutes the timestamp source (tests).
func (l *Logger) WithClock(now func() time.Time) *Logger {
	if l != nil && now != nil {
		l.now = now
	}
	return l
}

// Event writes one event line. kv are alternating key, value pairs;
// values must be JSON-encodable (anything that is not encodes as its
// fmt %v string). A trailing odd key gets the value true, so
// l.Event("shutdown", "graceful") still emits something useful.
func (l *Logger) Event(event string, kv ...any) {
	if l == nil {
		return
	}
	obj := make(map[string]any, 2+len(kv)/2)
	obj["ts"] = l.now().UTC().Format(time.RFC3339Nano)
	obj["event"] = event
	for i := 0; i < len(kv); i += 2 {
		key := fmt.Sprint(kv[i])
		if i+1 >= len(kv) {
			obj[key] = true
			break
		}
		obj[key] = jsonable(kv[i+1])
	}
	line, err := json.Marshal(obj)
	if err != nil {
		// jsonable guarantees encodability; keep the event anyway.
		line = []byte(fmt.Sprintf(`{"ts":%q,"event":%q,"error":"unencodable fields"}`,
			obj["ts"], event))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(append(line, '\n'))
}

// jsonable returns v if encoding/json can handle it, else its %v
// rendering — an event line must never be lost to a bad field.
func jsonable(v any) any {
	if _, err := json.Marshal(v); err != nil {
		return fmt.Sprint(v)
	}
	return v
}

// Package obs provides the repository's observability primitives:
// atomic counters, gauges, fixed-bucket latency histograms and a
// structured event logger, all on the standard library alone.
//
// The serving path (internal/timeserver, internal/core,
// internal/parallel) is instrumented against these types so that the
// scalability claims of the paper — one passive broadcast serves every
// user (§3) — can be measured rather than asserted: per-endpoint
// request counts and latencies, archive and verification cache hit
// rates, pairing-operation counts and worker-pool utilisation all end
// up in one JSON snapshot served at /metrics by cmd/treserver and
// consumed by the cmd/treload load harness.
//
// Every method is safe on a nil receiver and does nothing there, so
// instrumented code needs no "is observability enabled?" branches: an
// uninstrumented Scheme or Client simply carries nil metrics and pays
// one predictable branch per event.
package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// Registry owns a flat namespace of metrics. Metric constructors are
// idempotent: asking twice for the same name returns the same metric,
// so independent components can share a registry without coordination.
// All methods are safe for concurrent use and on a nil receiver (every
// constructor then returns nil, which the metric types tolerate).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram
}

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		hists:      make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is polled at snapshot time —
// for state owned elsewhere (e.g. the parallel pool's live worker
// count). fn must be safe for concurrent use. Re-registering a name
// replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns the latency histogram registered under name with
// the default bucket bounds, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, nil)
}

// HistogramWith is Histogram with explicit bucket upper bounds in
// nanoseconds (ascending; an implicit +Inf bucket is appended). A nil
// bounds slice selects DefaultLatencyBuckets. Bounds are fixed at
// first registration; later calls ignore the argument.
func (r *Registry) HistogramWith(name string, boundsNS []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(boundsNS)
		r.hists[name] = h
	}
	return h
}

// Snapshot captures a point-in-time copy of every registered metric.
// The copy is internally consistent per metric (each histogram is read
// bucket-by-bucket while observations may continue, so totals can lag
// bucket sums by in-flight observations — never the reverse).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	gaugeFuncs := make(map[string]func() int64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		gaugeFuncs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Load()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Load()
	}
	for k, fn := range gaugeFuncs {
		s.Gauges[k] = fn()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

// Reset zeroes every registered metric while keeping registrations
// (and bucket layouts) intact. Polled gauge functions are untouched —
// their state belongs to the component that registered them.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Handler serves the registry snapshot as indented JSON — the /metrics
// endpoint of cmd/treserver. It is read-only and, like every handler
// on the time server, reveals nothing about individual requesters.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(r.Snapshot().JSON())
	})
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// JSON renders the snapshot with stable key order (encoding/json sorts
// map keys) and trailing newline.
func (s Snapshot) JSON() []byte {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Only unrepresentable values can fail here, and the snapshot
		// holds nothing but strings and int64s.
		panic("obs: snapshot marshal: " + err.Error())
	}
	return append(out, '\n')
}

// Names returns the sorted metric names of one snapshot section —
// convenience for tests and docs.
func (s Snapshot) Names() []string {
	var names []string
	for k := range s.Counters {
		names = append(names, k)
	}
	for k := range s.Gauges {
		names = append(names, k)
	}
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

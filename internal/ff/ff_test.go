package ff

import (
	"bytes"
	"crypto/rand"
	"errors"
	"math/big"
	"testing"
	"testing/quick"
)

// testPrime is a 64-bit prime ≡ 3 (mod 4), large enough to exercise
// multi-word arithmetic paths while keeping quick-check rounds cheap.
var testPrime = func() *big.Int {
	p, ok := new(big.Int).SetString("ffffffffffffff43", 16) // largest 64-bit prime ≡ 3 (mod 4)
	if !ok {
		panic("bad test prime literal")
	}
	if !p.ProbablyPrime(64) {
		panic("test prime is not prime")
	}
	if new(big.Int).Mod(p, big.NewInt(4)).Int64() != 3 {
		panic("test prime is not ≡ 3 mod 4")
	}
	return p
}()

func testField(t *testing.T) *Field {
	t.Helper()
	f, err := NewField(testPrime)
	if err != nil {
		t.Fatalf("NewField: %v", err)
	}
	return f
}

// randElem adapts quick.Check's int64 source into a field element.
func randElem(f *Field, seed int64) *big.Int {
	return f.Reduce(new(big.Int).SetInt64(seed).Abs(new(big.Int).SetInt64(seed)))
}

func TestNewFieldRejectsBadModulus(t *testing.T) {
	for _, p := range []*big.Int{nil, big.NewInt(0), big.NewInt(-7), big.NewInt(1), big.NewInt(4), big.NewInt(2)} {
		if _, err := NewField(p); err == nil {
			t.Errorf("NewField(%v) must fail", p)
		}
	}
	if _, err := NewField(big.NewInt(7)); err != nil {
		t.Errorf("NewField(7): %v", err)
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	f := testField(t)
	cfg := &quick.Config{MaxCount: 200}

	commutative := func(x, y int64) bool {
		a, b := randElem(f, x), randElem(f, y)
		return f.Equal(f.Add(a, b), f.Add(b, a)) && f.Equal(f.Mul(a, b), f.Mul(b, a))
	}
	if err := quick.Check(commutative, cfg); err != nil {
		t.Error(err)
	}

	associative := func(x, y, z int64) bool {
		a, b, c := randElem(f, x), randElem(f, y), randElem(f, z)
		return f.Equal(f.Add(f.Add(a, b), c), f.Add(a, f.Add(b, c))) &&
			f.Equal(f.Mul(f.Mul(a, b), c), f.Mul(a, f.Mul(b, c)))
	}
	if err := quick.Check(associative, cfg); err != nil {
		t.Error(err)
	}

	distributive := func(x, y, z int64) bool {
		a, b, c := randElem(f, x), randElem(f, y), randElem(f, z)
		return f.Equal(f.Mul(a, f.Add(b, c)), f.Add(f.Mul(a, b), f.Mul(a, c)))
	}
	if err := quick.Check(distributive, cfg); err != nil {
		t.Error(err)
	}

	inverses := func(x int64) bool {
		a := randElem(f, x)
		if !f.Equal(f.Add(a, f.Neg(a)), new(big.Int)) {
			return false
		}
		if a.Sign() == 0 {
			return true
		}
		return f.Equal(f.Mul(a, f.Inv(a)), big.NewInt(1))
	}
	if err := quick.Check(inverses, cfg); err != nil {
		t.Error(err)
	}

	subIsAddNeg := func(x, y int64) bool {
		a, b := randElem(f, x), randElem(f, y)
		return f.Equal(f.Sub(a, b), f.Add(a, f.Neg(b)))
	}
	if err := quick.Check(subIsAddNeg, cfg); err != nil {
		t.Error(err)
	}

	sqrMatchesMul := func(x int64) bool {
		a := randElem(f, x)
		return f.Equal(f.Sqr(a), f.Mul(a, a)) && f.Equal(f.Double(a), f.Add(a, a))
	}
	if err := quick.Check(sqrMatchesMul, cfg); err != nil {
		t.Error(err)
	}
}

func TestExpMatchesRepeatedMul(t *testing.T) {
	f := testField(t)
	a, err := f.RandNonZero(nil)
	if err != nil {
		t.Fatal(err)
	}
	acc := big.NewInt(1)
	for e := 0; e < 20; e++ {
		got := f.Exp(a, big.NewInt(int64(e)))
		if !f.Equal(got, acc) {
			t.Fatalf("Exp(a, %d) mismatch", e)
		}
		acc = f.Mul(acc, a)
	}
}

func TestFermatLittleTheorem(t *testing.T) {
	f := testField(t)
	for i := 0; i < 10; i++ {
		a, err := f.RandNonZero(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Equal(f.Exp(a, f.pMinus1), big.NewInt(1)) {
			t.Fatal("a^(p-1) != 1")
		}
	}
}

func TestSqrtAndLegendre(t *testing.T) {
	f := testField(t)
	squares, nonSquares := 0, 0
	for i := 0; i < 64; i++ {
		a, err := f.RandNonZero(nil)
		if err != nil {
			t.Fatal(err)
		}
		sq := f.Sqr(a)
		if f.Legendre(sq) != 1 {
			t.Fatal("square has Legendre symbol != 1")
		}
		r, err := f.Sqrt(sq)
		if err != nil {
			t.Fatalf("Sqrt of a square: %v", err)
		}
		if !f.Equal(f.Sqr(r), sq) {
			t.Fatal("Sqrt result does not square back")
		}
		switch f.Legendre(a) {
		case 1:
			squares++
			if _, err := f.Sqrt(a); err != nil {
				t.Fatalf("Sqrt of declared square failed: %v", err)
			}
		case -1:
			nonSquares++
			if _, err := f.Sqrt(a); !errors.Is(err, ErrNotSquare) {
				t.Fatalf("Sqrt of non-square: err=%v, want ErrNotSquare", err)
			}
		}
	}
	if squares == 0 || nonSquares == 0 {
		t.Fatalf("suspicious Legendre distribution: %d squares, %d non-squares", squares, nonSquares)
	}
	if f.Legendre(new(big.Int)) != 0 {
		t.Fatal("Legendre(0) != 0")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := testField(t)
	for i := 0; i < 32; i++ {
		a, err := f.Rand(nil)
		if err != nil {
			t.Fatal(err)
		}
		enc := f.Bytes(a)
		if len(enc) != f.ByteLen() {
			t.Fatalf("encoding length %d, want %d", len(enc), f.ByteLen())
		}
		back, err := f.SetBytes(enc)
		if err != nil {
			t.Fatalf("SetBytes: %v", err)
		}
		if !f.Equal(a, back) {
			t.Fatal("byte round trip mismatch")
		}
	}
	// Non-canonical encodings are rejected.
	if _, err := f.SetBytes(f.P().FillBytes(make([]byte, f.ByteLen()))); err == nil {
		t.Fatal("encoding of p itself must be rejected")
	}
	if _, err := f.SetBytes(make([]byte, f.ByteLen()+1)); err == nil {
		t.Fatal("wrong-length encoding must be rejected")
	}
}

func TestRandIsInRangeAndVaried(t *testing.T) {
	f := testField(t)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		a, err := f.Rand(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if !f.IsResidue(a) {
			t.Fatal("Rand out of range")
		}
		seen[a.String()] = true
	}
	if len(seen) < 45 {
		t.Fatalf("suspiciously repetitive randomness: %d distinct of 50", len(seen))
	}
	nz, err := f.RandNonZero(nil)
	if err != nil {
		t.Fatal(err)
	}
	if nz.Sign() == 0 {
		t.Fatal("RandNonZero returned zero")
	}
}

func TestInvZeroPanics(t *testing.T) {
	f := testField(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) must panic")
		}
	}()
	f.Inv(new(big.Int))
}

func TestReduceAndIsResidue(t *testing.T) {
	f := testField(t)
	big := new(big.Int).Add(f.P(), big.NewInt(5))
	r := f.Reduce(big)
	if !f.IsResidue(r) || r.Int64() != 5 {
		t.Fatalf("Reduce(p+5) = %v", r)
	}
	if f.IsResidue(f.P()) {
		t.Fatal("p itself must not be a residue")
	}
	if f.IsResidue(nil) {
		t.Fatal("nil must not be a residue")
	}
}

func TestBytesIsFixedWidth(t *testing.T) {
	f := testField(t)
	small := f.Bytes(big.NewInt(1))
	if len(small) != f.ByteLen() || !bytes.HasPrefix(small, make([]byte, f.ByteLen()-1)) {
		t.Fatal("small values must be left-padded to fixed width")
	}
}

package ff

import (
	"math/big"
	"testing"
)

func intoTestField(t *testing.T) *Field {
	t.Helper()
	p, _ := new(big.Int).SetString("8f98a3660038a5b78edf9f53", 16)
	f, err := NewField(p)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *Field) mustRand(t *testing.T) *big.Int {
	t.Helper()
	r, err := f.Rand(nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFieldIntoOpsMatchAllocating(t *testing.T) {
	f := intoTestField(t)
	for i := 0; i < 50; i++ {
		a, b := f.mustRand(t), f.mustRand(t)
		dst := new(big.Int)
		if f.AddInto(dst, a, b).Cmp(f.Add(a, b)) != 0 {
			t.Fatal("AddInto != Add")
		}
		if f.SubInto(dst, a, b).Cmp(f.Sub(a, b)) != 0 {
			t.Fatal("SubInto != Sub")
		}
		if f.MulInto(dst, a, b).Cmp(f.Mul(a, b)) != 0 {
			t.Fatal("MulInto != Mul")
		}
		if f.SqrInto(dst, a).Cmp(f.Sqr(a)) != 0 {
			t.Fatal("SqrInto != Sqr")
		}
		if f.DoubleInto(dst, a).Cmp(f.Double(a)) != 0 {
			t.Fatal("DoubleInto != Double")
		}
	}
}

func TestFieldIntoOpsTolerateAliasing(t *testing.T) {
	f := intoTestField(t)
	a, b := f.mustRand(t), f.mustRand(t)
	want := f.Mul(a, b)
	x := new(big.Int).Set(a)
	if f.MulInto(x, x, b).Cmp(want) != 0 {
		t.Fatal("MulInto with dst==a wrong")
	}
	x.Set(b)
	if f.MulInto(x, a, x).Cmp(want) != 0 {
		t.Fatal("MulInto with dst==b wrong")
	}
	x.Set(a)
	if f.SqrInto(x, x).Cmp(f.Sqr(a)) != 0 {
		t.Fatal("SqrInto with dst==a wrong")
	}
	x.Set(a)
	if f.SubInto(x, x, b).Cmp(f.Sub(a, b)) != 0 {
		t.Fatal("SubInto with dst==a wrong")
	}
}

func TestInvBatch(t *testing.T) {
	f := intoTestField(t)
	for _, n := range []int{0, 1, 2, 17} {
		xs := make([]*big.Int, n)
		for i := range xs {
			x, err := f.RandNonZero(nil)
			if err != nil {
				t.Fatal(err)
			}
			xs[i] = x
		}
		invs := f.InvBatch(xs)
		if len(invs) != n {
			t.Fatalf("InvBatch returned %d results for %d inputs", len(invs), n)
		}
		for i := range xs {
			if invs[i].Cmp(f.Inv(xs[i])) != 0 {
				t.Fatalf("InvBatch[%d] != Inv", i)
			}
		}
	}
}

func TestInvBatchPanicsOnZero(t *testing.T) {
	f := intoTestField(t)
	defer func() {
		if recover() == nil {
			t.Fatal("InvBatch with a zero element must panic like Inv")
		}
	}()
	f.InvBatch([]*big.Int{big.NewInt(5), new(big.Int)})
}

func TestFp2IntoOpsMatchAllocating(t *testing.T) {
	f := intoTestField(t)
	e2, err := NewFp2(f)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch()
	for i := 0; i < 50; i++ {
		x, err := e2.Rand(nil)
		if err != nil {
			t.Fatal(err)
		}
		y, err := e2.Rand(nil)
		if err != nil {
			t.Fatal(err)
		}
		dst := e2.Zero()
		e2.MulInto(&dst, x, y, s)
		if !e2.Equal(dst, e2.Mul(x, y)) {
			t.Fatal("Fp2 MulInto != Mul")
		}
		e2.SqrInto(&dst, x, s)
		if !e2.Equal(dst, e2.Sqr(x)) {
			t.Fatal("Fp2 SqrInto != Sqr")
		}
		// Aliased accumulator, the Miller-loop pattern f = f·x then f = f².
		acc := e2.New(x.A, x.B)
		e2.MulInto(&acc, acc, y, s)
		if !e2.Equal(acc, e2.Mul(x, y)) {
			t.Fatal("Fp2 MulInto with dst==x wrong")
		}
		e2.SqrInto(&acc, acc, s)
		if !e2.Equal(acc, e2.Sqr(e2.Mul(x, y))) {
			t.Fatal("Fp2 SqrInto with dst==x wrong")
		}
	}
}

package ff

import (
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Fp2 is an arithmetic context for the quadratic extension
// F_{p²} = F_p[i]/(i²+1). The construction requires -1 to be a quadratic
// non-residue mod p, i.e. p ≡ 3 (mod 4) — exactly the condition the
// supersingular curve y² = x³ + x needs anyway.
type Fp2 struct {
	Fp *Field

	// mont is the limb-vector twin of this context (nil when the base
	// field has no Montgomery backend); Exp and ExpUnitary run on it
	// end-to-end, converting once at the boundary.
	mont *Fp2Mont
}

// Fp2Elem is an element a + b·i of F_{p²} with a, b reduced mod p.
// The zero value is NOT usable; construct elements through an *Fp2
// context so both limbs are non-nil.
type Fp2Elem struct {
	A *big.Int // real part
	B *big.Int // coefficient of i
}

// NewFp2 returns an extension-field context over fp. It fails unless
// p ≡ 3 (mod 4), the condition for x²+1 to be irreducible over F_p.
func NewFp2(fp *Field) (*Fp2, error) {
	if new(big.Int).Mod(fp.p, big4).Cmp(big3) != 0 {
		return nil, errors.New("ff: F_{p²} = F_p[i]/(i²+1) needs p ≡ 3 (mod 4)")
	}
	e := &Fp2{Fp: fp}
	if fp.mont != nil {
		e.mont = &Fp2Mont{M: fp.mont}
	}
	return e, nil
}

// Zero returns the additive identity.
func (e *Fp2) Zero() Fp2Elem { return Fp2Elem{A: new(big.Int), B: new(big.Int)} }

// One returns the multiplicative identity.
func (e *Fp2) One() Fp2Elem { return Fp2Elem{A: big.NewInt(1), B: new(big.Int)} }

// New constructs the element a + b·i, reducing both parts mod p.
func (e *Fp2) New(a, b *big.Int) Fp2Elem {
	return Fp2Elem{A: e.Fp.Reduce(a), B: e.Fp.Reduce(b)}
}

// IsZero reports whether x == 0.
func (e *Fp2) IsZero(x Fp2Elem) bool { return x.A.Sign() == 0 && x.B.Sign() == 0 }

// IsOne reports whether x == 1.
func (e *Fp2) IsOne(x Fp2Elem) bool { return x.A.Cmp(big1) == 0 && x.B.Sign() == 0 }

// Equal reports whether x == y.
func (e *Fp2) Equal(x, y Fp2Elem) bool {
	return x.A.Cmp(y.A) == 0 && x.B.Cmp(y.B) == 0
}

// Add returns x + y.
func (e *Fp2) Add(x, y Fp2Elem) Fp2Elem {
	return Fp2Elem{A: e.Fp.Add(x.A, y.A), B: e.Fp.Add(x.B, y.B)}
}

// Sub returns x - y.
func (e *Fp2) Sub(x, y Fp2Elem) Fp2Elem {
	return Fp2Elem{A: e.Fp.Sub(x.A, y.A), B: e.Fp.Sub(x.B, y.B)}
}

// Neg returns -x.
func (e *Fp2) Neg(x Fp2Elem) Fp2Elem {
	return Fp2Elem{A: e.Fp.Neg(x.A), B: e.Fp.Neg(x.B)}
}

// Conj returns the conjugate a - b·i. Conjugation is the p-power
// Frobenius automorphism of F_{p²} (since i^p = -i when p ≡ 3 mod 4),
// which the pairing's final exponentiation exploits.
func (e *Fp2) Conj(x Fp2Elem) Fp2Elem {
	return Fp2Elem{A: new(big.Int).Set(x.A), B: e.Fp.Neg(x.B)}
}

// Mul returns x·y using the Karatsuba-style 3-multiplication schedule:
// (a+bi)(c+di) = (ac - bd) + ((a+b)(c+d) - ac - bd)·i.
func (e *Fp2) Mul(x, y Fp2Elem) Fp2Elem {
	ac := e.Fp.Mul(x.A, y.A)
	bd := e.Fp.Mul(x.B, y.B)
	cross := e.Fp.Mul(e.Fp.Add(x.A, x.B), e.Fp.Add(y.A, y.B))
	return Fp2Elem{
		A: e.Fp.Sub(ac, bd),
		B: e.Fp.Sub(cross, e.Fp.Add(ac, bd)),
	}
}

// MulScalar returns x·c for c ∈ F_p.
func (e *Fp2) MulScalar(x Fp2Elem, c *big.Int) Fp2Elem {
	return Fp2Elem{A: e.Fp.Mul(x.A, c), B: e.Fp.Mul(x.B, c)}
}

// Sqr returns x² using (a+bi)² = (a+b)(a-b) + 2ab·i.
func (e *Fp2) Sqr(x Fp2Elem) Fp2Elem {
	re := e.Fp.Mul(e.Fp.Add(x.A, x.B), e.Fp.Sub(x.A, x.B))
	im := e.Fp.Double(e.Fp.Mul(x.A, x.B))
	return Fp2Elem{A: re, B: im}
}

// Norm returns the norm a² + b² ∈ F_p (the product of x and its
// conjugate).
func (e *Fp2) Norm(x Fp2Elem) *big.Int {
	return e.Fp.Add(e.Fp.Sqr(x.A), e.Fp.Sqr(x.B))
}

// Inv returns x⁻¹ = conj(x)/norm(x). It panics on zero, which indicates
// a logic error in the caller.
func (e *Fp2) Inv(x Fp2Elem) Fp2Elem {
	if e.IsZero(x) {
		panic("ff: inverse of zero in F_{p²}")
	}
	nInv := e.Fp.Inv(e.Norm(x))
	return Fp2Elem{A: e.Fp.Mul(x.A, nInv), B: e.Fp.Mul(e.Fp.Neg(x.B), nInv)}
}

// Scratch holds the temporaries the destination-passing F_{p²}
// operations need. One Scratch serves any number of sequential MulInto/
// SqrInto calls; it must not be shared between goroutines.
type Scratch struct {
	t0, t1, t2 *big.Int
}

// NewScratch allocates a scratch space for MulInto/SqrInto.
func NewScratch() *Scratch {
	return &Scratch{t0: new(big.Int), t1: new(big.Int), t2: new(big.Int)}
}

// MulInto sets dst = x·y, reusing dst's limbs and the scratch space, and
// performing no heap allocation beyond what math/big grows internally.
// dst may alias x or y. This is the hot-path variant of Mul used by the
// Miller loop, where the accumulator is multiplied twice per iteration.
func (e *Fp2) MulInto(dst *Fp2Elem, x, y Fp2Elem, s *Scratch) {
	fp := e.Fp
	fp.MulInto(s.t0, x.A, y.A) // ac
	fp.MulInto(s.t1, x.B, y.B) // bd
	s.t2.Add(x.A, x.B)
	dst.A.Add(y.A, y.B) // dst.A as a 4th temp: all reads of x, y are done
	fp.MulInto(s.t2, s.t2, dst.A)
	fp.AddInto(dst.A, s.t0, s.t1)
	fp.SubInto(dst.B, s.t2, dst.A) // (a+b)(c+d) − ac − bd
	fp.SubInto(dst.A, s.t0, s.t1)  // ac − bd
}

// SqrInto sets dst = x² in place; dst may alias x.
func (e *Fp2) SqrInto(dst *Fp2Elem, x Fp2Elem, s *Scratch) {
	fp := e.Fp
	s.t0.Add(x.A, x.B)
	fp.SubInto(s.t1, x.A, x.B)
	fp.MulInto(s.t2, x.A, x.B)
	fp.MulInto(dst.A, s.t0, s.t1) // (a+b)(a−b); t0 < 2p is fine, MulInto reduces
	fp.DoubleInto(dst.B, s.t2)
}

// Exp returns x^k for a non-negative exponent k. With a Montgomery
// backend available the whole ladder runs on limb vectors (one
// conversion each way at the boundary, no big.Int work per bit);
// otherwise it falls back to destination-passing square-and-multiply
// over Scratch, which allocates nothing per bit either.
func (e *Fp2) Exp(x Fp2Elem, k *big.Int) Fp2Elem {
	if k.Sign() < 0 {
		panic("ff: negative exponent in F_{p²}")
	}
	if em := e.mont; em != nil {
		xm := em.NewElem()
		em.ToMont(&xm, x)
		em.ExpInto(&xm, xm, k, em.NewScratch())
		return em.FromMont(xm)
	}
	return e.ExpBig(x, k)
}

// expBig is the big.Int reference ladder behind Exp.
func (e *Fp2) ExpBig(x Fp2Elem, k *big.Int) Fp2Elem {
	r := e.One()
	s := NewScratch()
	for i := k.BitLen() - 1; i >= 0; i-- {
		e.SqrInto(&r, r, s)
		if k.Bit(i) == 1 {
			e.MulInto(&r, r, x, s)
		}
	}
	return r
}

// ExpUnitary returns x^k for a UNITARY x — an element of norm 1, such
// as any pairing output — exploiting that inversion is a free
// conjugation there: the exponent is recoded in width-5 signed NAF,
// roughly a third fewer multiplications than Exp. The unitarity
// precondition is the caller's responsibility (the result is wrong
// otherwise); it is preserved by every GT operation, so scheme-level
// callers exponentiate pairing values with it (Decrypt, Encryptor,
// the final exponentiation's cofactor step).
func (e *Fp2) ExpUnitary(x Fp2Elem, k *big.Int) Fp2Elem {
	if k.Sign() < 0 {
		panic("ff: negative exponent in F_{p²}")
	}
	if em := e.mont; em != nil {
		xm := em.NewElem()
		em.ToMont(&xm, x)
		em.ExpUnitaryInto(&xm, xm, k, em.NewScratch())
		return em.FromMont(xm)
	}
	return e.ExpUnitaryBig(x, k)
}

// ExpUnitaryBig is the big.Int reference ladder behind ExpUnitary: the
// same signed-window recoding, conjugating table entries for negative
// digits. Exported for differential tests and the backend ablation.
func (e *Fp2) ExpUnitaryBig(x Fp2Elem, k *big.Int) Fp2Elem {
	if k.Sign() < 0 {
		panic("ff: negative exponent in F_{p²}")
	}
	if k.Sign() == 0 {
		return e.One()
	}
	const tableSize = 1 << (expUnitaryWindow - 2)
	s := NewScratch()
	var table [tableSize]Fp2Elem
	table[0] = Fp2Elem{A: new(big.Int).Set(x.A), B: new(big.Int).Set(x.B)}
	sq := e.Sqr(x)
	for i := 1; i < tableSize; i++ {
		table[i] = e.Mul(table[i-1], sq)
	}
	digits := wnafDigits(k, expUnitaryWindow)
	r := e.One()
	for i := len(digits) - 1; i >= 0; i-- {
		e.SqrInto(&r, r, s)
		switch d := digits[i]; {
		case d > 0:
			e.MulInto(&r, r, table[(d-1)/2], s)
		case d < 0:
			e.MulInto(&r, r, e.Conj(table[(-d-1)/2]), s)
		}
	}
	return r
}

// Rand returns a uniformly random element of F_{p²}.
func (e *Fp2) Rand(rng io.Reader) (Fp2Elem, error) {
	a, err := e.Fp.Rand(rng)
	if err != nil {
		return Fp2Elem{}, err
	}
	b, err := e.Fp.Rand(rng)
	if err != nil {
		return Fp2Elem{}, err
	}
	return Fp2Elem{A: a, B: b}, nil
}

// Bytes returns the fixed-width encoding A ‖ B (2·ByteLen bytes).
func (e *Fp2) Bytes(x Fp2Elem) []byte {
	out := make([]byte, 0, 2*e.Fp.byteLen)
	out = append(out, e.Fp.Bytes(x.A)...)
	return append(out, e.Fp.Bytes(x.B)...)
}

// SetBytes decodes an encoding produced by Bytes, rejecting malformed or
// non-canonical input.
func (e *Fp2) SetBytes(b []byte) (Fp2Elem, error) {
	if len(b) != 2*e.Fp.byteLen {
		return Fp2Elem{}, fmt.Errorf("ff: F_{p²} encoding is %d bytes, want %d", len(b), 2*e.Fp.byteLen)
	}
	a, err := e.Fp.SetBytes(b[:e.Fp.byteLen])
	if err != nil {
		return Fp2Elem{}, err
	}
	bb, err := e.Fp.SetBytes(b[e.Fp.byteLen:])
	if err != nil {
		return Fp2Elem{}, err
	}
	return Fp2Elem{A: a, B: bb}, nil
}

// String renders the element as "a + b·i" for debugging.
func (x Fp2Elem) String() string {
	return fmt.Sprintf("%v + %v·i", x.A, x.B)
}

package ff

import (
	"math/big"
	"math/bits"
	"sync"
)

// maxMontLimbs bounds the modulus size the fixed-limb backend accepts
// (32 × 64 = 2048 bits, comfortably above the largest preset). Larger
// moduli silently fall back to the big.Int reference path.
const maxMontLimbs = 32

// MontElem is a field element as a little-endian vector of 64-bit limbs
// in the Montgomery domain: the element x is stored as x·R mod p with
// R = 2^(64·n). Values are always fully reduced into [0, p). Elements
// are only meaningful relative to the *Mont context that created them.
type MontElem []uint64

// Mont is the fixed-width-limb Montgomery arithmetic context for F_p.
// It is the performance backend underneath the big.Int reference
// implementation: the pairing's Miller loops, the final exponentiation
// and the curve's Jacobian ladders all run on MontElem vectors
// end-to-end and convert to big.Int only at API boundaries.
//
// A Mont context is immutable after construction and safe for
// concurrent use; per-call scratch lives on the callers' stacks.
// Like the rest of the package it is NOT constant time: the word-level
// primitives are, but reductions branch on comparisons and the
// exponentiation ladders branch on exponent bits (see docs/FIELD.md and
// the README threat model).
type Mont struct {
	n   int      // limb count
	p   []uint64 // modulus, little-endian limbs
	n0  uint64   // -p⁻¹ mod 2^64 (the REDC constant)
	one MontElem // R mod p, the Montgomery form of 1
	r2  []uint64 // R² mod p, the to-Montgomery conversion factor
	pm2 *big.Int // p-2, the Fermat inversion exponent

	// arenas recycles scratch arenas (arena.go) across hot-path calls;
	// the pool is safe for concurrent use, so a Mont context stays
	// shareable between goroutines.
	arenas sync.Pool
}

// newMont builds the Montgomery context for an odd modulus p, or
// returns nil when p is unsupported (even, or wider than maxMontLimbs).
func newMont(p *big.Int) *Mont {
	if p.Bit(0) == 0 {
		return nil
	}
	n := (p.BitLen() + 63) / 64
	if n == 0 || n > maxMontLimbs {
		return nil
	}
	m := &Mont{
		n:   n,
		p:   make([]uint64, n),
		pm2: new(big.Int).Sub(p, big2),
	}
	limbsFromBig(m.p, p)

	// n0 = -p⁻¹ mod 2^64 by Newton iteration: x ← x(2 − p₀x) doubles
	// the number of correct low bits each round; x = p₀ starts with 3.
	p0 := m.p[0]
	inv := p0
	for i := 0; i < 5; i++ {
		inv *= 2 - p0*inv
	}
	m.n0 = -inv

	// R mod p and R² mod p via big.Int, once at construction.
	r := new(big.Int).Lsh(big1, uint(64*n))
	m.one = make(MontElem, n)
	limbsFromBig(m.one, new(big.Int).Mod(r, p))
	m.r2 = make([]uint64, n)
	limbsFromBig(m.r2, new(big.Int).Mod(new(big.Int).Mul(r, r), p))
	m.arenas.New = func() any { return &Arena{m: m} }
	return m
}

// Mont returns the field's Montgomery backend, or nil when the modulus
// does not support one (see newMont). Callers must treat a nil return
// as "use the big.Int reference path".
func (f *Field) Mont() *Mont { return f.mont }

// Limbs returns the limb count of elements of this context.
func (m *Mont) Limbs() int { return m.n }

// NewElem returns a fresh zero element.
func (m *Mont) NewElem() MontElem { return make(MontElem, m.n) }

// Set copies src into dst.
func (m *Mont) Set(dst, src MontElem) { copy(dst, src) }

// SetZero sets dst to 0.
func (m *Mont) SetZero(dst MontElem) {
	for i := range dst {
		dst[i] = 0
	}
}

// SetOne sets dst to the Montgomery form of 1 (R mod p).
func (m *Mont) SetOne(dst MontElem) { copy(dst, m.one) }

// IsZero reports whether x == 0.
func (m *Mont) IsZero(x MontElem) bool {
	var acc uint64
	for _, w := range x {
		acc |= w
	}
	return acc == 0
}

// IsOne reports whether x == 1 (i.e. equals R mod p).
func (m *Mont) IsOne(x MontElem) bool { return m.Equal(x, m.one) }

// Equal reports whether x == y. Montgomery form is canonical (both
// sides reduced into [0, p)), so limb equality is element equality.
func (m *Mont) Equal(x, y MontElem) bool {
	var acc uint64
	for i := range x {
		acc |= x[i] ^ y[i]
	}
	return acc == 0
}

// geqP reports whether x >= p.
func (m *Mont) geqP(x []uint64) bool {
	for i := m.n - 1; i >= 0; i-- {
		if x[i] != m.p[i] {
			return x[i] > m.p[i]
		}
	}
	return true
}

// subP sets dst = x - p (caller guarantees x >= p, possibly with an
// implicit carry word that the final borrow cancels).
func (m *Mont) subP(dst, x []uint64) {
	var borrow uint64
	for i := 0; i < m.n; i++ {
		dst[i], borrow = bits.Sub64(x[i], m.p[i], borrow)
	}
}

// Add sets dst = x + y mod p. The reduction is lazy in the Montgomery
// sense: one conditional subtraction of p, never a division.
func (m *Mont) Add(dst, x, y MontElem) {
	var carry uint64
	for i := 0; i < m.n; i++ {
		dst[i], carry = bits.Add64(x[i], y[i], carry)
	}
	if carry != 0 || m.geqP(dst) {
		m.subP(dst, dst)
	}
}

// Double sets dst = 2x mod p.
func (m *Mont) Double(dst, x MontElem) { m.Add(dst, x, x) }

// Sub sets dst = x - y mod p (one conditional add-back of p).
func (m *Mont) Sub(dst, x, y MontElem) {
	var borrow uint64
	for i := 0; i < m.n; i++ {
		dst[i], borrow = bits.Sub64(x[i], y[i], borrow)
	}
	if borrow != 0 {
		var carry uint64
		for i := 0; i < m.n; i++ {
			dst[i], carry = bits.Add64(dst[i], m.p[i], carry)
		}
	}
}

// Neg sets dst = -x mod p.
func (m *Mont) Neg(dst, x MontElem) {
	if m.IsZero(x) {
		m.SetZero(dst)
		return
	}
	var borrow uint64
	for i := 0; i < m.n; i++ {
		dst[i], borrow = bits.Sub64(m.p[i], x[i], borrow)
	}
}

// Mul sets dst = x·y·R⁻¹ mod p — the Montgomery product, which for
// Montgomery-form operands is exactly the Montgomery form of the field
// product. This is the CIOS (coarsely integrated operand scanning)
// word-by-word reduction: the interleaved t ← (t + x·yᵢ + mᵢ·p)/2^64
// keeps the accumulator at n+2 words, so it lives on the stack. dst may
// alias x or y.
func (m *Mont) Mul(dst, x, y MontElem) {
	var t [maxMontLimbs + 2]uint64
	n := m.n
	for i := 0; i < n; i++ {
		// t += x · y[i]
		var c uint64
		yi := y[i]
		for j := 0; j < n; j++ {
			hi, lo := bits.Mul64(x[j], yi)
			var c1, c2 uint64
			t[j], c1 = bits.Add64(t[j], lo, 0)
			t[j], c2 = bits.Add64(t[j], c, 0)
			c = hi + c1 + c2 // cannot overflow: hi <= 2^64-2
		}
		var c1 uint64
		t[n], c1 = bits.Add64(t[n], c, 0)
		t[n+1] = c1

		// t ← (t + w·p) / 2^64 with w chosen so the low word cancels.
		w := t[0] * m.n0
		hi, lo := bits.Mul64(w, m.p[0])
		_, c1 = bits.Add64(t[0], lo, 0)
		c = hi + c1
		for j := 1; j < n; j++ {
			hi, lo := bits.Mul64(w, m.p[j])
			var c2, c3 uint64
			t[j-1], c2 = bits.Add64(t[j], lo, 0)
			t[j-1], c3 = bits.Add64(t[j-1], c, 0)
			c = hi + c2 + c3
		}
		t[n-1], c1 = bits.Add64(t[n], c, 0)
		t[n] = t[n+1] + c1
		t[n+1] = 0
	}
	if t[n] != 0 || m.geqP(t[:n]) {
		m.subP(dst, t[:n])
		return
	}
	copy(dst, t[:n])
}

// Sqr sets dst = x² (Montgomery product of x with itself).
func (m *Mont) Sqr(dst, x MontElem) { m.Mul(dst, x, x) }

// Exp sets dst = x^e mod p for a non-negative big.Int exponent, by
// left-to-right square-and-multiply entirely on limb vectors. dst may
// alias x.
func (m *Mont) Exp(dst, x MontElem, e *big.Int) {
	if e.Sign() < 0 {
		panic("ff: negative exponent in Montgomery Exp")
	}
	// Fixed-size stack buffers: the ladder performs zero heap
	// allocations (Mul's accumulator is already stack-resident).
	var baseBuf, accBuf [maxMontLimbs]uint64
	base := MontElem(baseBuf[:m.n])
	copy(base, x)
	acc := MontElem(accBuf[:m.n])
	copy(acc, m.one)
	for i := e.BitLen() - 1; i >= 0; i-- {
		m.Sqr(acc, acc)
		if e.Bit(i) == 1 {
			m.Mul(acc, acc, base)
		}
	}
	copy(dst, acc)
}

// Inv sets dst = x⁻¹ mod p via Fermat's little theorem (x^(p−2)),
// keeping the whole computation on limb vectors. It panics on zero,
// matching Field.Inv.
func (m *Mont) Inv(dst, x MontElem) {
	if m.IsZero(x) {
		panic("ff: inverse of zero (Montgomery backend)")
	}
	m.Exp(dst, x, m.pm2)
}

// ToMont converts a reduced big.Int in [0, p) into Montgomery form:
// REDC(x · R²) = x·R mod p.
func (m *Mont) ToMont(dst MontElem, x *big.Int) {
	limbsFromBig(dst, x)
	m.Mul(dst, dst, m.r2)
}

// FromMont converts a Montgomery-form element back to a reduced
// big.Int, writing into dst (allocated when nil) and returning it.
// REDC(x·1) = x·R⁻¹ mod p undoes the domain shift.
func (m *Mont) FromMont(dst *big.Int, x MontElem) *big.Int {
	var plain [maxMontLimbs]uint64
	tmp := MontElem(plain[:m.n])
	var lit [maxMontLimbs]uint64
	lit[0] = 1
	m.Mul(tmp, x, lit[:m.n])
	if dst == nil {
		dst = new(big.Int)
	}
	return bigFromLimbs(dst, tmp)
}

// limbsFromBig fills dst with the little-endian 64-bit limbs of the
// non-negative x (which must fit; callers pass reduced values). It
// handles both 64- and 32-bit big.Word sizes.
func limbsFromBig(dst []uint64, x *big.Int) {
	words := x.Bits()
	if bits.UintSize == 64 {
		for i := range dst {
			if i < len(words) {
				dst[i] = uint64(words[i])
			} else {
				dst[i] = 0
			}
		}
		return
	}
	for i := range dst {
		var lo, hi uint64
		if 2*i < len(words) {
			lo = uint64(words[2*i])
		}
		if 2*i+1 < len(words) {
			hi = uint64(words[2*i+1])
		}
		dst[i] = lo | hi<<32
	}
}

// bigFromLimbs sets dst to the non-negative integer with the given
// little-endian limbs and returns dst, reusing dst's storage when it is
// large enough.
func bigFromLimbs(dst *big.Int, src []uint64) *big.Int {
	if bits.UintSize == 64 {
		words := dst.Bits()
		if cap(words) >= len(src) {
			words = words[:len(src)]
		} else {
			words = make([]big.Word, len(src))
		}
		for i, v := range src {
			words[i] = big.Word(v)
		}
		return dst.SetBits(words)
	}
	words := make([]big.Word, 2*len(src))
	for i, v := range src {
		words[2*i] = big.Word(uint32(v))
		words[2*i+1] = big.Word(v >> 32)
	}
	return dst.SetBits(words)
}

package ff

import (
	"math/big"
	"testing"
)

// fuzzField builds the SS512 field once; the full-width modulus is the
// harshest carry/borrow shape the backend supports.
var fuzzFieldOnce *Field

func fuzzSetup(f *testing.F) *Field {
	f.Helper()
	if fuzzFieldOnce == nil {
		p, _ := new(big.Int).SetString(montTestPrimes[1], 16)
		fld, err := NewField(p)
		if err != nil {
			f.Fatal(err)
		}
		fuzzFieldOnce = fld
	}
	return fuzzFieldOnce
}

// fuzzReduce maps arbitrary fuzzer bytes to a canonical field element.
func fuzzReduce(fld *Field, b []byte) *big.Int {
	return fld.Reduce(new(big.Int).SetBytes(b))
}

// FuzzFpArith cross-checks every Montgomery base-field operation
// against the big.Int reference on fuzzer-chosen operands.
func FuzzFpArith(f *testing.F) {
	fld := fuzzSetup(f)
	f.Add([]byte{0}, []byte{1})
	f.Add(fld.P().Bytes(), new(big.Int).Sub(fld.P(), big.NewInt(1)).Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, []byte{2})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		if len(ab) > 128 || len(bb) > 128 {
			return
		}
		a, b := fuzzReduce(fld, ab), fuzzReduce(fld, bb)
		m := fld.Mont()
		am, bm, rm := m.NewElem(), m.NewElem(), m.NewElem()
		m.ToMont(am, a)
		m.ToMont(bm, b)
		if got := m.FromMont(nil, am); got.Cmp(a) != 0 {
			t.Fatalf("round trip: got %v want %v", got, a)
		}
		check := func(op string, want *big.Int) {
			t.Helper()
			if got := m.FromMont(nil, rm); got.Cmp(want) != 0 {
				t.Fatalf("%s(%v, %v) = %v, want %v", op, a, b, got, want)
			}
		}
		m.Add(rm, am, bm)
		check("Add", fld.Add(a, b))
		m.Sub(rm, am, bm)
		check("Sub", fld.Sub(a, b))
		m.Mul(rm, am, bm)
		check("Mul", fld.Mul(a, b))
		m.Sqr(rm, am)
		check("Sqr", fld.Sqr(a))
		m.Neg(rm, am)
		check("Neg", fld.Neg(a))
		if a.Sign() != 0 {
			m.Inv(rm, am)
			check("Inv", fld.Inv(a))
		}
		m.Exp(rm, am, b)
		check("Exp", fld.Exp(a, b))
	})
}

// FuzzFp2Arith cross-checks the extension-field limb operations against
// the big.Int Fp2 reference on fuzzer-chosen operands.
func FuzzFp2Arith(f *testing.F) {
	fld := fuzzSetup(f)
	e2, err := NewFp2(fld)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{0}, []byte{1}, []byte{2}, []byte{3})
	f.Add([]byte{1}, []byte{0}, []byte{0}, []byte{0})
	f.Fuzz(func(t *testing.T, xa, xb, ya, yb []byte) {
		if len(xa) > 128 || len(xb) > 128 || len(ya) > 128 || len(yb) > 128 {
			return
		}
		x := Fp2Elem{A: fuzzReduce(fld, xa), B: fuzzReduce(fld, xb)}
		y := Fp2Elem{A: fuzzReduce(fld, ya), B: fuzzReduce(fld, yb)}
		em := e2.Mont()
		s := em.NewScratch()
		xm, ym, rm := em.NewElem(), em.NewElem(), em.NewElem()
		em.ToMont(&xm, x)
		em.ToMont(&ym, y)
		check := func(op string, want Fp2Elem) {
			t.Helper()
			if got := em.FromMont(rm); !e2.Equal(got, want) {
				t.Fatalf("%s mismatch: got %v want %v", op, got, want)
			}
		}
		em.MulInto(&rm, xm, ym, s)
		check("Mul", e2.Mul(x, y))
		em.SqrInto(&rm, xm, s)
		check("Sqr", e2.Sqr(x))
		em.AddInto(&rm, xm, ym)
		check("Add", e2.Add(x, y))
		em.SubInto(&rm, xm, ym)
		check("Sub", e2.Sub(x, y))
		em.ConjInto(&rm, xm)
		check("Conj", e2.Conj(x))
		if !e2.IsZero(x) {
			em.InvInto(&rm, xm, s)
			check("Inv", e2.Inv(x))
		}
		k := new(big.Int).SetBytes(yb)
		em.ExpInto(&rm, xm, k, s)
		check("Exp", e2.ExpBig(x, k))
	})
}

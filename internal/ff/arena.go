package ff

import "math/big"

// arenaInitialElems sizes a fresh arena slab: enough limb vectors for a
// full Montgomery-backend pairing (Miller state, line coefficients,
// F_{p²} accumulators, final-exponentiation window table) so the slab
// almost never grows after the first use.
const arenaInitialElems = 96

// Arena is a bump allocator of Montgomery limb vectors, recycled
// through a per-context sync.Pool. It exists so the steady-state hot
// paths (Miller loops, final exponentiation, Jacobian ladders) perform
// zero heap allocations per operation: a caller takes one arena for the
// whole operation, carves every temporary out of it, and releases it at
// the end.
//
// Lifecycle rules (see docs/PERFORMANCE.md):
//
//   - An Arena belongs to exactly one goroutine between GetArena and
//     Release; it must not be shared.
//   - Every MontElem obtained from Elem (directly or via ElemIn/OneIn/
//     ScratchIn) is INVALID after Release — the storage is reused by the
//     next holder. Results that outlive the call must be copied out
//     (FromMont, Set into caller-owned elements) before releasing.
//   - Release is idempotent per Get: call it exactly once, typically
//     via defer.
type Arena struct {
	m    *Mont
	slab []uint64
	off  int

	// scratches are reusable F_{p²} scratch blocks. Their limb vectors
	// are owned by the scratch structs (not carved from the slab), so
	// recycling them across Release cycles can never alias slab-handed
	// elements.
	scratches []*Fp2MontScratch
	scrOff    int
}

// GetArena returns a recycled (or fresh) arena for this context. The
// caller must Release it when the operation completes.
func (m *Mont) GetArena() *Arena {
	a := m.arenas.Get().(*Arena)
	return a
}

// Release resets the arena and returns it to the context's pool. All
// elements carved from it become invalid.
func (a *Arena) Release() {
	a.off = 0
	a.scrOff = 0
	a.m.arenas.Put(a)
}

// Elem carves a fresh zeroed element out of the arena. The element is
// valid until Release.
func (a *Arena) Elem() MontElem {
	n := a.m.n
	if a.off+n > len(a.slab) {
		// Grow by replacing the slab; outstanding elements keep the old
		// slab alive through their own slices, so this is safe mid-use.
		size := 2 * len(a.slab)
		if size < n*arenaInitialElems {
			size = n * arenaInitialElems
		}
		a.slab = make([]uint64, size)
		a.off = 0
	}
	e := MontElem(a.slab[a.off : a.off+n : a.off+n])
	a.off += n
	for i := range e {
		e[i] = 0
	}
	return e
}

// ElemIn carves a zeroed F_{p²} element out of a.
func (e *Fp2Mont) ElemIn(a *Arena) Fp2MontElem {
	return Fp2MontElem{A: a.Elem(), B: a.Elem()}
}

// OneIn carves the multiplicative identity out of a.
func (e *Fp2Mont) OneIn(a *Arena) Fp2MontElem {
	x := e.ElemIn(a)
	e.M.SetOne(x.A)
	return x
}

// ScratchIn returns an F_{p²} scratch block tied to a's lifecycle: it
// may be reused freely until Release and must not be retained after.
// Steady state it allocates nothing (blocks are recycled with the
// arena).
func (e *Fp2Mont) ScratchIn(a *Arena) *Fp2MontScratch {
	if a.scrOff < len(a.scratches) {
		s := a.scratches[a.scrOff]
		a.scrOff++
		return s
	}
	m := a.m
	s := &Fp2MontScratch{t0: m.NewElem(), t1: m.NewElem(), t2: m.NewElem(), t3: m.NewElem()}
	a.scratches = append(a.scratches, s)
	a.scrOff++
	return s
}

// UnitaryWNAF returns the signed-window recoding ExpUnitary and
// ExpUnitaryWNAFInto consume. Fixed exponents (the pairing's cofactor,
// a long-lived private scalar) should be recoded once and the digits
// reused, which removes the big.Int work from the exponentiation hot
// path entirely.
func UnitaryWNAF(k *big.Int) []int {
	if k.Sign() < 0 {
		panic("ff: negative exponent in F_{p²}")
	}
	return wnafDigits(k, expUnitaryWindow)
}

// ExpUnitaryWNAFInto is ExpUnitaryInto with the exponent already
// recoded (UnitaryWNAF) and every temporary carved from a: zero heap
// allocations in steady state. digits must be a UnitaryWNAF recoding of
// a non-negative exponent; x must be unitary, as for ExpUnitaryInto.
// dst may alias x.
func (e *Fp2Mont) ExpUnitaryWNAFInto(dst *Fp2MontElem, x Fp2MontElem, digits []int, s *Fp2MontScratch, a *Arena) {
	if len(digits) == 0 {
		e.SetOne(dst)
		return
	}
	// Odd powers x, x³, …, x^(2·tableSize−1).
	const tableSize = 1 << (expUnitaryWindow - 2)
	var table [tableSize]Fp2MontElem
	table[0] = e.ElemIn(a)
	e.Set(&table[0], x)
	sq := e.ElemIn(a)
	e.SqrInto(&sq, x, s)
	for i := 1; i < tableSize; i++ {
		table[i] = e.ElemIn(a)
		e.MulInto(&table[i], table[i-1], sq, s)
	}
	acc := e.OneIn(a)
	neg := e.ElemIn(a)
	for i := len(digits) - 1; i >= 0; i-- {
		e.SqrInto(&acc, acc, s)
		switch d := digits[i]; {
		case d > 0:
			e.MulInto(&acc, acc, table[(d-1)/2], s)
		case d < 0:
			e.ConjInto(&neg, table[(-d-1)/2])
			e.MulInto(&acc, acc, neg, s)
		}
	}
	e.Set(dst, acc)
}

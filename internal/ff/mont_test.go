package ff

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// montTestPrimes covers the Test160 and SS512 preset moduli (duplicated
// here so ff does not import params) plus two edge shapes: a tiny prime
// and a full-limb-width prime where additions carry out of n limbs.
var montTestPrimes = []string{
	"cab69233645ff2ec9acee7e93cf76c09cab9c52f", // Test160 p
	"ad1b4018db0dcf94ca80575c821b9aefd402ad39db7a7d85fb0f8e71989659c2af8599a5b178cf01ddb933717119e7db4055e2b5e452590b660633ca3f0897b7", // SS512 p
	"7fffffff",                         // 31-bit prime, single limb
	"ffffffffffffffffffffffffffffff61", // 128-bit prime with both limbs full
}

func montFields(t *testing.T) []*Field {
	t.Helper()
	var out []*Field
	for _, hexp := range montTestPrimes {
		p, ok := new(big.Int).SetString(hexp, 16)
		if !ok {
			t.Fatalf("bad prime literal %q", hexp)
		}
		f, err := NewField(p)
		if err != nil {
			t.Fatalf("NewField(%s): %v", hexp, err)
		}
		if f.Mont() == nil {
			t.Fatalf("NewField(%s): no Montgomery backend", hexp)
		}
		out = append(out, f)
	}
	return out
}

func randFieldElem(t *testing.T, f *Field) *big.Int {
	t.Helper()
	x, err := f.Rand(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// TestMontRoundTrip pins ToMont/FromMont as exact inverses, including
// the edge values 0, 1 and p-1.
func TestMontRoundTrip(t *testing.T) {
	for _, f := range montFields(t) {
		m := f.Mont()
		cases := []*big.Int{big.NewInt(0), big.NewInt(1), f.pMinus1}
		for i := 0; i < 50; i++ {
			cases = append(cases, randFieldElem(t, f))
		}
		e := m.NewElem()
		for _, x := range cases {
			m.ToMont(e, x)
			if got := m.FromMont(nil, e); got.Cmp(x) != 0 {
				t.Fatalf("p=%v: round trip of %v gave %v", f.P(), x, got)
			}
		}
		m.ToMont(e, big.NewInt(1))
		if !m.IsOne(e) {
			t.Fatalf("p=%v: ToMont(1) is not the cached R mod p", f.P())
		}
	}
}

// TestMontArithmeticMatchesBig cross-checks every backend operation
// against the big.Int reference on random operands.
func TestMontArithmeticMatchesBig(t *testing.T) {
	for _, f := range montFields(t) {
		m := f.Mont()
		am, bm, rm := m.NewElem(), m.NewElem(), m.NewElem()
		for i := 0; i < 200; i++ {
			a, b := randFieldElem(t, f), randFieldElem(t, f)
			m.ToMont(am, a)
			m.ToMont(bm, b)

			check := func(op string, want *big.Int) {
				t.Helper()
				if got := m.FromMont(nil, rm); got.Cmp(want) != 0 {
					t.Fatalf("p=%v %s(%v, %v) = %v, want %v", f.P(), op, a, b, got, want)
				}
			}
			m.Add(rm, am, bm)
			check("Add", f.Add(a, b))
			m.Sub(rm, am, bm)
			check("Sub", f.Sub(a, b))
			m.Mul(rm, am, bm)
			check("Mul", f.Mul(a, b))
			m.Sqr(rm, am)
			check("Sqr", f.Sqr(a))
			m.Double(rm, am)
			check("Double", f.Double(a))
			m.Neg(rm, am)
			check("Neg", f.Neg(a))
			if a.Sign() != 0 {
				m.Inv(rm, am)
				check("Inv", f.Inv(a))
			}
			e := new(big.Int).Rsh(b, uint(b.BitLen()/2))
			m.Exp(rm, am, e)
			check("Exp", f.Exp(a, e))
		}
	}
}

// TestMontAliasing verifies dst may alias operands in every op.
func TestMontAliasing(t *testing.T) {
	for _, f := range montFields(t) {
		m := f.Mont()
		a, b := randFieldElem(t, f), randFieldElem(t, f)
		am, bm := m.NewElem(), m.NewElem()
		m.ToMont(am, a)
		m.ToMont(bm, b)

		x := m.NewElem()
		m.Set(x, am)
		m.Mul(x, x, bm) // dst aliases first operand
		if got := m.FromMont(nil, x); got.Cmp(f.Mul(a, b)) != 0 {
			t.Fatalf("aliased Mul mismatch")
		}
		m.Set(x, am)
		m.Sqr(x, x)
		if got := m.FromMont(nil, x); got.Cmp(f.Sqr(a)) != 0 {
			t.Fatalf("aliased Sqr mismatch")
		}
		m.Set(x, am)
		m.Add(x, x, x)
		if got := m.FromMont(nil, x); got.Cmp(f.Double(a)) != 0 {
			t.Fatalf("aliased Add mismatch")
		}
		m.Set(x, am)
		m.Sub(x, x, bm)
		if got := m.FromMont(nil, x); got.Cmp(f.Sub(a, b)) != 0 {
			t.Fatalf("aliased Sub mismatch")
		}
	}
}

// TestFp2MontMatchesBig cross-checks the extension-field limb ops
// against the big.Int Fp2 reference.
func TestFp2MontMatchesBig(t *testing.T) {
	for _, f := range montFields(t) {
		if new(big.Int).Mod(f.P(), big4).Cmp(big3) != 0 {
			continue // Fp2 needs p ≡ 3 (mod 4)
		}
		e2, err := NewFp2(f)
		if err != nil {
			t.Fatal(err)
		}
		em := e2.Mont()
		if em == nil {
			t.Fatal("no Fp2 Montgomery context")
		}
		s := em.NewScratch()
		xm, ym, rm := em.NewElem(), em.NewElem(), em.NewElem()
		for i := 0; i < 100; i++ {
			x, err := e2.Rand(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			y, err := e2.Rand(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			em.ToMont(&xm, x)
			em.ToMont(&ym, y)

			check := func(op string, want Fp2Elem) {
				t.Helper()
				if got := em.FromMont(rm); !e2.Equal(got, want) {
					t.Fatalf("p=%v %s mismatch: got %v want %v", f.P(), op, got, want)
				}
			}
			em.MulInto(&rm, xm, ym, s)
			check("Mul", e2.Mul(x, y))
			em.SqrInto(&rm, xm, s)
			check("Sqr", e2.Sqr(x))
			em.AddInto(&rm, xm, ym)
			check("Add", e2.Add(x, y))
			em.SubInto(&rm, xm, ym)
			check("Sub", e2.Sub(x, y))
			em.ConjInto(&rm, xm)
			check("Conj", e2.Conj(x))
			if !e2.IsZero(x) {
				em.InvInto(&rm, xm, s)
				check("Inv", e2.Inv(x))
			}
			k := new(big.Int).SetBytes(e2.Fp.Bytes(y.A)[:4])
			em.ExpInto(&rm, xm, k, s)
			check("Exp", e2.ExpBig(x, k))
		}
	}
}

// TestFp2ExpRoutesMatch pins Fp2.Exp (mont-routed) against the big.Int
// ladder, and ExpUnitary against Exp on unitary elements built as
// z/conj(z) — which always has norm 1.
func TestFp2ExpRoutesMatch(t *testing.T) {
	for _, f := range montFields(t) {
		if new(big.Int).Mod(f.P(), big4).Cmp(big3) != 0 {
			continue
		}
		e2, err := NewFp2(f)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			x, err := e2.Rand(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			k, err := f.Rand(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := e2.Exp(x, k), e2.ExpBig(x, k); !e2.Equal(got, want) {
				t.Fatalf("Exp route mismatch: got %v want %v", got, want)
			}
			if e2.IsZero(x) {
				continue
			}
			u := e2.Mul(x, e2.Inv(e2.Conj(x))) // norm(u) = 1
			if !f.Equal(e2.Norm(u), big.NewInt(1)) {
				t.Fatalf("test element is not unitary")
			}
			if got, want := e2.ExpUnitary(u, k), e2.ExpBig(u, k); !e2.Equal(got, want) {
				t.Fatalf("ExpUnitary mismatch on unitary element: got %v want %v", got, want)
			}
		}
		// Edge exponents.
		u := e2.One()
		for _, k := range []*big.Int{big.NewInt(0), big.NewInt(1), big.NewInt(2)} {
			if got := e2.ExpUnitary(u, k); !e2.IsOne(got) {
				t.Fatalf("ExpUnitary(1, %v) != 1", k)
			}
		}
	}
}

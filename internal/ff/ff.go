// Package ff implements arithmetic in the prime field F_p and its
// quadratic extension F_{p²} = F_p[i]/(i²+1), the two fields underlying
// the supersingular pairing group used throughout this repository.
//
// Elements of F_p are represented as fully reduced *big.Int values in
// [0, p). All operations go through a *Field context that carries the
// modulus and derived constants, so multiple parameter sets (e.g. test
// and production sizes) can coexist in one process.
//
// The implementation favours clarity and auditability over raw speed and
// is NOT constant time; see the repository README for the threat-model
// discussion.
package ff

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

var (
	// ErrNotSquare is returned by Sqrt when the operand is a quadratic
	// non-residue.
	ErrNotSquare = errors.New("ff: element is not a square")

	big1 = big.NewInt(1)
	big2 = big.NewInt(2)
	big3 = big.NewInt(3)
	big4 = big.NewInt(4)
)

// Field is an arithmetic context for the prime field F_p.
type Field struct {
	p       *big.Int // modulus, an odd prime
	byteLen int      // fixed-width encoding length

	pMinus1 *big.Int // p-1, cached for Rand and exponent reductions

	// mont is the fixed-limb Montgomery backend, built automatically
	// for every supported (odd, <= 2048-bit) modulus. The big.Int
	// methods on Field remain the executable reference; hot paths
	// (pairing, Jacobian ladders, F_{p²} exponentiation) run on the
	// backend end-to-end. Nil when the modulus is unsupported.
	mont *Mont
}

// NewField returns a field context for the odd prime p. The primality of
// p is the caller's responsibility (parameter generation checks it); only
// structural requirements are validated here.
func NewField(p *big.Int) (*Field, error) {
	if p == nil || p.Sign() <= 0 {
		return nil, errors.New("ff: modulus must be a positive integer")
	}
	if p.Bit(0) == 0 || p.Cmp(big3) < 0 {
		return nil, errors.New("ff: modulus must be an odd prime >= 3")
	}
	f := &Field{
		p:       new(big.Int).Set(p),
		byteLen: (p.BitLen() + 7) / 8,
		pMinus1: new(big.Int).Sub(p, big1),
	}
	f.mont = newMont(f.p)
	return f, nil
}

// P returns a copy of the field modulus.
func (f *Field) P() *big.Int { return new(big.Int).Set(f.p) }

// BitLen returns the bit length of the modulus.
func (f *Field) BitLen() int { return f.p.BitLen() }

// ByteLen returns the fixed-width byte length used by Bytes/SetBytes.
func (f *Field) ByteLen() int { return f.byteLen }

// IsResidue reports whether x (reduced or not) is in [0, p).
func (f *Field) IsResidue(x *big.Int) bool {
	return x != nil && x.Sign() >= 0 && x.Cmp(f.p) < 0
}

// Reduce returns x mod p as a new integer.
func (f *Field) Reduce(x *big.Int) *big.Int {
	return new(big.Int).Mod(x, f.p)
}

// Add returns a+b mod p.
func (f *Field) Add(a, b *big.Int) *big.Int {
	r := new(big.Int).Add(a, b)
	if r.Cmp(f.p) >= 0 {
		r.Sub(r, f.p)
	}
	return r
}

// Sub returns a-b mod p.
func (f *Field) Sub(a, b *big.Int) *big.Int {
	r := new(big.Int).Sub(a, b)
	if r.Sign() < 0 {
		r.Add(r, f.p)
	}
	return r
}

// Neg returns -a mod p.
func (f *Field) Neg(a *big.Int) *big.Int {
	if a.Sign() == 0 {
		return new(big.Int)
	}
	return new(big.Int).Sub(f.p, a)
}

// Mul returns a*b mod p.
func (f *Field) Mul(a, b *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Mul(a, b), f.p)
}

// Sqr returns a² mod p.
func (f *Field) Sqr(a *big.Int) *big.Int { return f.Mul(a, a) }

// Double returns 2a mod p.
func (f *Field) Double(a *big.Int) *big.Int { return f.Add(a, a) }

// Inv returns a⁻¹ mod p. It panics if a ≡ 0, which indicates a logic
// error in the caller (all call sites guard the zero case).
func (f *Field) Inv(a *big.Int) *big.Int {
	r := new(big.Int).ModInverse(a, f.p)
	if r == nil {
		panic("ff: inverse of zero (or modulus not prime)")
	}
	return r
}

// Exp returns a^e mod p for a non-negative exponent e.
func (f *Field) Exp(a, e *big.Int) *big.Int {
	return new(big.Int).Exp(a, e, f.p)
}

// Destination-passing variants of the core operations. They write the
// result into dst (which may alias either operand — math/big handles
// aliasing) and return dst, so hot loops can reuse a fixed set of
// integers instead of allocating one per operation. The Miller loop in
// package pairing is the primary consumer.

// AddInto sets dst = a+b mod p and returns dst.
func (f *Field) AddInto(dst, a, b *big.Int) *big.Int {
	dst.Add(a, b)
	if dst.Cmp(f.p) >= 0 {
		dst.Sub(dst, f.p)
	}
	return dst
}

// SubInto sets dst = a-b mod p and returns dst.
func (f *Field) SubInto(dst, a, b *big.Int) *big.Int {
	dst.Sub(a, b)
	if dst.Sign() < 0 {
		dst.Add(dst, f.p)
	}
	return dst
}

// DoubleInto sets dst = 2a mod p and returns dst.
func (f *Field) DoubleInto(dst, a *big.Int) *big.Int {
	return f.AddInto(dst, a, a)
}

// MulInto sets dst = a·b mod p and returns dst.
func (f *Field) MulInto(dst, a, b *big.Int) *big.Int {
	dst.Mul(a, b)
	return dst.Mod(dst, f.p)
}

// SqrInto sets dst = a² mod p and returns dst.
func (f *Field) SqrInto(dst, a *big.Int) *big.Int {
	return f.MulInto(dst, a, a)
}

// InvBatch returns the inverses of all xs with a single modular
// inversion (Montgomery's trick: invert the running product, then peel
// the prefix products back off). It panics if any element is zero, like
// Inv. The one inversion plus 3(n-1) multiplications replace n
// inversions, which is what makes fixed-argument pairing precomputation
// cheap to normalise.
func (f *Field) InvBatch(xs []*big.Int) []*big.Int {
	n := len(xs)
	out := make([]*big.Int, n)
	if n == 0 {
		return out
	}
	// prefix[i] = x_0·…·x_{i-1}; prefix[0] = 1.
	prefix := make([]*big.Int, n)
	acc := big.NewInt(1)
	for i, x := range xs {
		prefix[i] = new(big.Int).Set(acc)
		f.MulInto(acc, acc, x)
	}
	inv := f.Inv(acc) // panics on zero product, i.e. any zero input
	for i := n - 1; i >= 0; i-- {
		out[i] = f.Mul(inv, prefix[i])
		f.MulInto(inv, inv, xs[i])
	}
	return out
}

// Legendre returns the Legendre symbol (a/p): 1 if a is a non-zero
// square, -1 if a non-square, 0 if a ≡ 0 (mod p).
func (f *Field) Legendre(a *big.Int) int {
	return big.Jacobi(new(big.Int).Mod(a, f.p), f.p)
}

// Sqrt returns a square root of a mod p, or ErrNotSquare if none exists.
// Of the two roots ±y it returns the one computed by big.Int.ModSqrt
// (callers that need a canonical choice normalise via parity).
func (f *Field) Sqrt(a *big.Int) (*big.Int, error) {
	r := new(big.Int).ModSqrt(new(big.Int).Mod(a, f.p), f.p)
	if r == nil {
		return nil, ErrNotSquare
	}
	return r, nil
}

// Rand returns a uniformly random field element drawn from rng
// (crypto/rand.Reader if rng is nil).
func (f *Field) Rand(rng io.Reader) (*big.Int, error) {
	if rng == nil {
		rng = rand.Reader
	}
	r, err := rand.Int(rng, f.p)
	if err != nil {
		return nil, fmt.Errorf("ff: sampling field element: %w", err)
	}
	return r, nil
}

// RandNonZero returns a uniformly random non-zero field element.
func (f *Field) RandNonZero(rng io.Reader) (*big.Int, error) {
	for {
		r, err := f.Rand(rng)
		if err != nil {
			return nil, err
		}
		if r.Sign() != 0 {
			return r, nil
		}
	}
}

// Bytes returns the fixed-width big-endian encoding of a reduced element.
func (f *Field) Bytes(a *big.Int) []byte {
	return a.FillBytes(make([]byte, f.byteLen))
}

// SetBytes decodes a fixed-width big-endian encoding produced by Bytes.
// It rejects encodings of the wrong length or values >= p, so every
// field element has exactly one valid encoding.
func (f *Field) SetBytes(b []byte) (*big.Int, error) {
	if len(b) != f.byteLen {
		return nil, fmt.Errorf("ff: encoding is %d bytes, want %d", len(b), f.byteLen)
	}
	r := new(big.Int).SetBytes(b)
	if r.Cmp(f.p) >= 0 {
		return nil, errors.New("ff: encoded value is not reduced mod p")
	}
	return r, nil
}

// Equal reports whether two reduced elements are equal.
func (f *Field) Equal(a, b *big.Int) bool { return a.Cmp(b) == 0 }

package ff

import "math/big"

// Fp2MontElem is an element a + b·i of F_{p²} with both coordinates in
// Montgomery form. It is the limb-vector twin of Fp2Elem: the pairing's
// Miller loops, the final exponentiation and the G2 exponentiation hot
// paths all work on this representation and convert at the boundary.
type Fp2MontElem struct {
	A, B MontElem
}

// Fp2Mont bundles the quadratic-extension operations over the
// Montgomery backend. Obtain one from Fp2.Mont; it is immutable and
// safe for concurrent use (scratch is caller-provided, as with
// Fp2.MulInto).
type Fp2Mont struct {
	M *Mont
}

// Mont returns the limb-vector backend of the extension field, or nil
// when the base field has none.
func (e *Fp2) Mont() *Fp2Mont { return e.mont }

// NewElem returns a fresh zero element.
func (e *Fp2Mont) NewElem() Fp2MontElem {
	return Fp2MontElem{A: e.M.NewElem(), B: e.M.NewElem()}
}

// One returns a fresh multiplicative identity.
func (e *Fp2Mont) One() Fp2MontElem {
	x := e.NewElem()
	e.M.SetOne(x.A)
	return x
}

// Set copies src into dst.
func (e *Fp2Mont) Set(dst *Fp2MontElem, src Fp2MontElem) {
	copy(dst.A, src.A)
	copy(dst.B, src.B)
}

// SetOne sets dst = 1.
func (e *Fp2Mont) SetOne(dst *Fp2MontElem) {
	e.M.SetOne(dst.A)
	e.M.SetZero(dst.B)
}

// IsZero reports whether x == 0.
func (e *Fp2Mont) IsZero(x Fp2MontElem) bool { return e.M.IsZero(x.A) && e.M.IsZero(x.B) }

// IsOne reports whether x == 1.
func (e *Fp2Mont) IsOne(x Fp2MontElem) bool { return e.M.IsOne(x.A) && e.M.IsZero(x.B) }

// Equal reports whether x == y (Montgomery form is canonical).
func (e *Fp2Mont) Equal(x, y Fp2MontElem) bool {
	return e.M.Equal(x.A, y.A) && e.M.Equal(x.B, y.B)
}

// ToMont converts a reduced Fp2Elem into Montgomery form.
func (e *Fp2Mont) ToMont(dst *Fp2MontElem, x Fp2Elem) {
	e.M.ToMont(dst.A, x.A)
	e.M.ToMont(dst.B, x.B)
}

// FromMont converts back to the big.Int representation.
func (e *Fp2Mont) FromMont(x Fp2MontElem) Fp2Elem {
	return Fp2Elem{A: e.M.FromMont(nil, x.A), B: e.M.FromMont(nil, x.B)}
}

// AddInto sets dst = x + y; dst may alias either operand.
func (e *Fp2Mont) AddInto(dst *Fp2MontElem, x, y Fp2MontElem) {
	e.M.Add(dst.A, x.A, y.A)
	e.M.Add(dst.B, x.B, y.B)
}

// SubInto sets dst = x - y; dst may alias either operand.
func (e *Fp2Mont) SubInto(dst *Fp2MontElem, x, y Fp2MontElem) {
	e.M.Sub(dst.A, x.A, y.A)
	e.M.Sub(dst.B, x.B, y.B)
}

// NegInto sets dst = -x; dst may alias x.
func (e *Fp2Mont) NegInto(dst *Fp2MontElem, x Fp2MontElem) {
	e.M.Neg(dst.A, x.A)
	e.M.Neg(dst.B, x.B)
}

// ConjInto sets dst = conj(x) = a - b·i; dst may alias x. As in the
// big.Int path, conjugation is the p-power Frobenius of F_{p²}, and for
// unitary elements (norm 1) it equals inversion — the identity behind
// ExpUnitaryInto and the Frobenius final-exponentiation step.
func (e *Fp2Mont) ConjInto(dst *Fp2MontElem, x Fp2MontElem) {
	if &dst.A[0] != &x.A[0] {
		copy(dst.A, x.A)
	}
	e.M.Neg(dst.B, x.B)
}

// Fp2MontScratch holds the temporaries of the destination-passing
// F_{p²} limb operations; one per goroutine, exactly like Scratch.
type Fp2MontScratch struct {
	t0, t1, t2, t3 MontElem
}

// NewScratch allocates scratch space sized for this context.
func (e *Fp2Mont) NewScratch() *Fp2MontScratch {
	return &Fp2MontScratch{
		t0: e.M.NewElem(), t1: e.M.NewElem(), t2: e.M.NewElem(), t3: e.M.NewElem(),
	}
}

// MulInto sets dst = x·y with the 3-multiplication Karatsuba schedule
// on limb vectors; dst may alias x or y.
func (e *Fp2Mont) MulInto(dst *Fp2MontElem, x, y Fp2MontElem, s *Fp2MontScratch) {
	m := e.M
	m.Mul(s.t0, x.A, y.A) // ac
	m.Mul(s.t1, x.B, y.B) // bd
	m.Add(s.t2, x.A, x.B)
	m.Add(s.t3, y.A, y.B)
	m.Mul(s.t2, s.t2, s.t3) // (a+b)(c+d)
	m.Add(s.t3, s.t0, s.t1) // ac + bd; all reads of x, y are done
	m.Sub(dst.B, s.t2, s.t3)
	m.Sub(dst.A, s.t0, s.t1)
}

// SqrInto sets dst = x² via (a+b)(a−b) + 2ab·i; dst may alias x.
func (e *Fp2Mont) SqrInto(dst *Fp2MontElem, x Fp2MontElem, s *Fp2MontScratch) {
	m := e.M
	m.Add(s.t0, x.A, x.B)
	m.Sub(s.t1, x.A, x.B)
	m.Mul(s.t2, x.A, x.B)
	m.Mul(dst.A, s.t0, s.t1)
	m.Double(dst.B, s.t2)
}

// MulScalarInto sets dst = x·c for a base-field (Montgomery-form)
// scalar c; dst may alias x.
func (e *Fp2Mont) MulScalarInto(dst *Fp2MontElem, x Fp2MontElem, c MontElem) {
	e.M.Mul(dst.A, x.A, c)
	e.M.Mul(dst.B, x.B, c)
}

// InvInto sets dst = x⁻¹ = conj(x)/norm(x), with the one base-field
// inversion on the Fermat limb path; dst may alias x. Panics on zero.
func (e *Fp2Mont) InvInto(dst *Fp2MontElem, x Fp2MontElem, s *Fp2MontScratch) {
	if e.IsZero(x) {
		panic("ff: inverse of zero in F_{p²} (Montgomery backend)")
	}
	m := e.M
	m.Sqr(s.t0, x.A)
	m.Sqr(s.t1, x.B)
	m.Add(s.t0, s.t0, s.t1) // norm = a² + b²
	m.Inv(s.t0, s.t0)
	m.Mul(dst.A, x.A, s.t0)
	m.Mul(dst.B, x.B, s.t0)
	m.Neg(dst.B, dst.B)
}

// ExpInto sets dst = x^k for a non-negative exponent, square-and-
// multiply on limb vectors; dst may alias x.
func (e *Fp2Mont) ExpInto(dst *Fp2MontElem, x Fp2MontElem, k *big.Int, s *Fp2MontScratch) {
	if k.Sign() < 0 {
		panic("ff: negative exponent in F_{p²}")
	}
	base := e.NewElem()
	e.Set(&base, x)
	acc := e.One()
	for i := k.BitLen() - 1; i >= 0; i-- {
		e.SqrInto(&acc, acc, s)
		if k.Bit(i) == 1 {
			e.MulInto(&acc, acc, base, s)
		}
	}
	e.Set(dst, acc)
}

// expUnitaryWindow is the wNAF window width of ExpUnitaryInto. Width 5
// precomputes 2^(5-2) = 8 odd powers and cuts the multiplication count
// from k/2 (square-and-multiply) to ~k/6 for a k-bit exponent.
const expUnitaryWindow = 5

// ExpUnitaryInto sets dst = x^k for a UNITARY x (norm(x) = 1, i.e.
// x·conj(x) = 1 — every pairing output and every f^(p−1) value
// qualifies) and non-negative k. Because inversion is a free
// conjugation for unitary elements, the exponent is recoded in signed
// windowed NAF: negative digits multiply by a conjugated table entry
// instead of requiring a stored inverse. dst may alias x. The
// precondition is the caller's responsibility; for non-unitary x the
// result is simply wrong (differential tests pin the unitary case
// against ExpInto).
func (e *Fp2Mont) ExpUnitaryInto(dst *Fp2MontElem, x Fp2MontElem, k *big.Int, s *Fp2MontScratch) {
	if k.Sign() < 0 {
		panic("ff: negative exponent in F_{p²}")
	}
	if k.Sign() == 0 {
		e.SetOne(dst)
		return
	}
	// One-shot exponent: recode here and run the arena-backed ladder.
	// Callers with a FIXED exponent should recode once with UnitaryWNAF
	// and call ExpUnitaryWNAFInto directly (see arena.go).
	a := e.M.GetArena()
	defer a.Release()
	e.ExpUnitaryWNAFInto(dst, x, wnafDigits(k, expUnitaryWindow), s, a)
}

// wnafDigits returns the width-w non-adjacent form of k, least
// significant digit first: digits are zero or odd in
// (−2^(w−1), 2^(w−1)), and non-zero digits are separated by at least
// w−1 zeros.
func wnafDigits(k *big.Int, w uint) []int {
	n := new(big.Int).Set(k)
	mod := int64(1) << w
	half := int64(1) << (w - 1)
	digits := make([]int, 0, k.BitLen()+1)
	tmp := new(big.Int)
	for n.Sign() > 0 {
		if n.Bit(0) == 1 {
			d := int64(0)
			for i := uint(0); i < w; i++ {
				d |= int64(n.Bit(int(i))) << i
			}
			if d >= half {
				d -= mod
			}
			digits = append(digits, int(d))
			if d > 0 {
				n.Sub(n, tmp.SetInt64(d))
			} else {
				n.Add(n, tmp.SetInt64(-d))
			}
		} else {
			digits = append(digits, 0)
		}
		n.Rsh(n, 1)
	}
	return digits
}

package ff

import (
	"math/big"
	"testing"
	"testing/quick"
)

func testFp2(t *testing.T) *Fp2 {
	t.Helper()
	e, err := NewFp2(testField(t))
	if err != nil {
		t.Fatalf("NewFp2: %v", err)
	}
	return e
}

func (e *Fp2) randQuick(x, y int64) Fp2Elem {
	return Fp2Elem{A: randElem(e.Fp, x), B: randElem(e.Fp, y)}
}

func TestNewFp2RequiresPMod4(t *testing.T) {
	// p = 5 ≡ 1 (mod 4): x²+1 is reducible, construction must fail.
	f, err := NewField(big.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFp2(f); err == nil {
		t.Fatal("NewFp2 must reject p ≡ 1 (mod 4)")
	}
}

func TestFp2FieldAxiomsQuick(t *testing.T) {
	e := testFp2(t)
	cfg := &quick.Config{MaxCount: 150}

	ring := func(x1, y1, x2, y2, x3, y3 int64) bool {
		a, b, c := e.randQuick(x1, y1), e.randQuick(x2, y2), e.randQuick(x3, y3)
		if !e.Equal(e.Add(a, b), e.Add(b, a)) || !e.Equal(e.Mul(a, b), e.Mul(b, a)) {
			return false
		}
		if !e.Equal(e.Mul(e.Mul(a, b), c), e.Mul(a, e.Mul(b, c))) {
			return false
		}
		return e.Equal(e.Mul(a, e.Add(b, c)), e.Add(e.Mul(a, b), e.Mul(a, c)))
	}
	if err := quick.Check(ring, cfg); err != nil {
		t.Error(err)
	}

	inverse := func(x, y int64) bool {
		a := e.randQuick(x, y)
		if e.IsZero(a) {
			return true
		}
		return e.IsOne(e.Mul(a, e.Inv(a)))
	}
	if err := quick.Check(inverse, cfg); err != nil {
		t.Error(err)
	}

	sqr := func(x, y int64) bool {
		a := e.randQuick(x, y)
		return e.Equal(e.Sqr(a), e.Mul(a, a))
	}
	if err := quick.Check(sqr, cfg); err != nil {
		t.Error(err)
	}

	conj := func(x1, y1, x2, y2 int64) bool {
		a, b := e.randQuick(x1, y1), e.randQuick(x2, y2)
		// Conjugation is a field automorphism.
		if !e.Equal(e.Conj(e.Mul(a, b)), e.Mul(e.Conj(a), e.Conj(b))) {
			return false
		}
		// Norm = a·conj(a) lands in F_p (imaginary part 0).
		n := e.Mul(a, e.Conj(a))
		return n.B.Sign() == 0 && e.Fp.Equal(n.A, e.Norm(a))
	}
	if err := quick.Check(conj, cfg); err != nil {
		t.Error(err)
	}
}

func TestConjIsFrobenius(t *testing.T) {
	// conj(z) must equal z^p — this identity is what FinalExp relies on.
	e := testFp2(t)
	for i := 0; i < 8; i++ {
		z, err := e.Rand(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !e.Equal(e.Conj(z), e.Exp(z, e.Fp.P())) {
			t.Fatal("conj(z) != z^p")
		}
	}
}

func TestIUnitSquaresToMinusOne(t *testing.T) {
	e := testFp2(t)
	i := e.New(new(big.Int), big.NewInt(1))
	minusOne := e.New(e.Fp.Neg(big.NewInt(1)), new(big.Int))
	if !e.Equal(e.Sqr(i), minusOne) {
		t.Fatal("i² != -1")
	}
}

func TestFp2ExpLaws(t *testing.T) {
	e := testFp2(t)
	z, err := e.Rand(nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := big.NewInt(12345), big.NewInt(67891)
	// z^(a+b) == z^a · z^b
	sum := new(big.Int).Add(a, b)
	if !e.Equal(e.Exp(z, sum), e.Mul(e.Exp(z, a), e.Exp(z, b))) {
		t.Fatal("exponent addition law fails")
	}
	// (z^a)^b == z^(ab)
	prod := new(big.Int).Mul(a, b)
	if !e.Equal(e.Exp(e.Exp(z, a), b), e.Exp(z, prod)) {
		t.Fatal("exponent multiplication law fails")
	}
	if !e.IsOne(e.Exp(z, new(big.Int))) {
		t.Fatal("z^0 != 1")
	}
}

func TestFp2OrderOfMultiplicativeGroup(t *testing.T) {
	// z^(p²−1) = 1 for all z ≠ 0.
	e := testFp2(t)
	p2m1 := new(big.Int).Mul(e.Fp.P(), e.Fp.P())
	p2m1.Sub(p2m1, big.NewInt(1))
	for i := 0; i < 5; i++ {
		z, err := e.Rand(nil)
		if err != nil {
			t.Fatal(err)
		}
		if e.IsZero(z) {
			continue
		}
		if !e.IsOne(e.Exp(z, p2m1)) {
			t.Fatal("z^(p²-1) != 1")
		}
	}
}

func TestFp2BytesRoundTrip(t *testing.T) {
	e := testFp2(t)
	for i := 0; i < 16; i++ {
		z, err := e.Rand(nil)
		if err != nil {
			t.Fatal(err)
		}
		enc := e.Bytes(z)
		back, err := e.SetBytes(enc)
		if err != nil {
			t.Fatalf("SetBytes: %v", err)
		}
		if !e.Equal(z, back) {
			t.Fatal("round trip mismatch")
		}
	}
	if _, err := e.SetBytes([]byte{1, 2, 3}); err == nil {
		t.Fatal("wrong-length encoding must be rejected")
	}
}

func TestMulScalar(t *testing.T) {
	e := testFp2(t)
	z, err := e.Rand(nil)
	if err != nil {
		t.Fatal(err)
	}
	three := big.NewInt(3)
	if !e.Equal(e.MulScalar(z, three), e.Add(z, e.Add(z, z))) {
		t.Fatal("MulScalar(z,3) != z+z+z")
	}
}

func TestFp2InvZeroPanics(t *testing.T) {
	e := testFp2(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) must panic")
		}
	}()
	e.Inv(e.Zero())
}

func TestFp2String(t *testing.T) {
	e := testFp2(t)
	s := e.New(big.NewInt(3), big.NewInt(7)).String()
	if s != "3 + 7·i" {
		t.Fatalf("String() = %q", s)
	}
}

package timefmt

import (
	"testing"
	"time"
)

func TestNewScheduleValidation(t *testing.T) {
	valid := []time.Duration{time.Second, time.Minute, time.Hour, 24 * time.Hour, 500 * time.Millisecond, 90 * time.Second}
	for _, g := range valid {
		if _, err := NewSchedule(g); err != nil {
			t.Errorf("NewSchedule(%v): %v", g, err)
		}
	}
	invalid := []time.Duration{0, -time.Second, 7 * time.Hour, 25 * time.Hour, 7 * time.Second}
	for _, g := range invalid {
		if _, err := NewSchedule(g); err == nil {
			t.Errorf("NewSchedule(%v) must fail", g)
		}
	}
}

func TestLabelRoundTrip(t *testing.T) {
	s := MustSchedule(time.Minute)
	now := time.Date(2026, 7, 5, 12, 34, 56, 789, time.UTC)
	label := s.Label(now)
	if label != "2026-07-05T12:34:00Z" {
		t.Fatalf("Label = %q", label)
	}
	start, err := s.ParseLabel(label)
	if err != nil {
		t.Fatalf("ParseLabel: %v", err)
	}
	if !start.Equal(time.Date(2026, 7, 5, 12, 34, 0, 0, time.UTC)) {
		t.Fatalf("ParseLabel start = %v", start)
	}
}

func TestIndexStartInverse(t *testing.T) {
	s := MustSchedule(time.Hour)
	for _, tm := range []time.Time{
		time.Unix(0, 0),
		time.Date(2026, 7, 5, 23, 59, 59, 999999999, time.UTC),
		time.Date(1969, 12, 31, 11, 0, 0, 0, time.UTC), // pre-epoch
	} {
		i := s.Index(tm)
		st := s.Start(i)
		if st.After(tm) {
			t.Fatalf("Start(Index(%v)) = %v is after input", tm, st)
		}
		if !st.Add(s.Granularity).After(tm) {
			t.Fatalf("%v is not inside epoch starting %v", tm, st)
		}
		if s.Index(st) != i {
			t.Fatalf("Index(Start(%d)) = %d", i, s.Index(st))
		}
	}
}

func TestPreEpochIndexing(t *testing.T) {
	s := MustSchedule(time.Hour)
	before := time.Date(1969, 12, 31, 23, 30, 0, 0, time.UTC)
	if idx := s.Index(before); idx != -1 {
		t.Fatalf("Index(23:30 Dec 31 1969) = %d, want -1", idx)
	}
}

func TestNextIsStrictlyFuture(t *testing.T) {
	s := MustSchedule(time.Minute)
	now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC) // exactly on a boundary
	next := s.Next(now)
	start, err := s.ParseLabel(next)
	if err != nil {
		t.Fatal(err)
	}
	if !start.After(now) {
		t.Fatalf("Next(%v) = %v is not in the future", now, start)
	}
}

func TestParseLabelRejectsOffGrid(t *testing.T) {
	s := MustSchedule(time.Minute)
	cases := []string{
		"2026-07-05T12:34:30Z",     // not on minute grid
		"2026-07-05T12:34:00.5Z",   // sub-second
		"not a time",               //
		"2026-07-05T12:34:00+0200", // bad offset syntax
	}
	for _, c := range cases {
		if _, err := s.ParseLabel(c); err == nil {
			t.Errorf("ParseLabel(%q) must fail", c)
		}
	}
}

func TestParseLabelNormalisesZone(t *testing.T) {
	s := MustSchedule(time.Hour)
	// A non-UTC rendering of an on-grid instant is NOT canonical and must
	// be rejected — there is exactly one label per epoch.
	if _, err := s.ParseLabel("2026-07-05T14:00:00+02:00"); err == nil {
		t.Fatal("non-UTC label must be rejected as non-canonical")
	}
}

func TestSubSecondLabels(t *testing.T) {
	s := MustSchedule(250 * time.Millisecond)
	tm := time.Date(2026, 7, 5, 12, 0, 0, 600_000_000, time.UTC)
	label := s.Label(tm)
	start, err := s.ParseLabel(label)
	if err != nil {
		t.Fatalf("ParseLabel(%q): %v", label, err)
	}
	if start.Nanosecond() != 500_000_000 {
		t.Fatalf("epoch start = %v, want .5s", start)
	}
}

func TestLabelsBetween(t *testing.T) {
	s := MustSchedule(time.Minute)
	from := time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)
	to := time.Date(2026, 7, 5, 12, 4, 0, 0, time.UTC)
	got := s.LabelsBetween(from, to, 0)
	want := []string{
		"2026-07-05T12:01:00Z",
		"2026-07-05T12:02:00Z",
		"2026-07-05T12:03:00Z",
	}
	if len(got) != len(want) {
		t.Fatalf("LabelsBetween = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LabelsBetween[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Inclusive start when exactly on a boundary.
	exact := s.LabelsBetween(s.Start(100), s.Start(102), 0)
	if len(exact) != 2 || exact[0] != s.LabelAt(100) {
		t.Fatalf("boundary handling: %v", exact)
	}
	// Limit applies.
	if got := s.LabelsBetween(from, to, 1); len(got) != 1 {
		t.Fatalf("limit ignored: %v", got)
	}
	// Empty range.
	if got := s.LabelsBetween(to, from, 0); got != nil {
		t.Fatalf("reversed range must be empty: %v", got)
	}
}

func TestLabelsAreSortable(t *testing.T) {
	// Lexicographic order of canonical labels must equal chronological
	// order — the archive relies on this.
	s := MustSchedule(time.Hour)
	prev := s.LabelAt(1000)
	for i := int64(1001); i < 1100; i++ {
		cur := s.LabelAt(i)
		if !(prev < cur) {
			t.Fatalf("labels out of order: %q then %q", prev, cur)
		}
		prev = cur
	}
}

// Package timefmt defines the canonical absolute-time labels the time
// server signs. The paper requires "a precise absolute release time ...
// down to whatever granularity is needed" (§3); a Schedule carves the
// timeline into fixed-width epochs and gives each epoch boundary a
// canonical string label (RFC 3339, UTC) that sender, receiver and
// server all derive independently — no interaction needed to agree on
// what "2026-07-05T12:00:00Z" means, which is exactly the GPS analogy of
// the paper's model.
package timefmt

import (
	"errors"
	"fmt"
	"time"
)

// Schedule is an epoch grid: labels are issued every Granularity,
// aligned to the Unix epoch in UTC.
type Schedule struct {
	Granularity time.Duration
}

// NewSchedule returns a schedule with the given epoch width. The width
// must be positive and divide evenly into the day (so labels align with
// human-readable boundaries and any two parties compute identical
// grids).
func NewSchedule(granularity time.Duration) (Schedule, error) {
	if granularity <= 0 {
		return Schedule{}, errors.New("timefmt: granularity must be positive")
	}
	if granularity > 24*time.Hour {
		return Schedule{}, errors.New("timefmt: granularity must not exceed 24h")
	}
	if (24*time.Hour)%granularity != 0 {
		return Schedule{}, fmt.Errorf("timefmt: granularity %v does not divide 24h", granularity)
	}
	return Schedule{Granularity: granularity}, nil
}

// MustSchedule is NewSchedule for known-good constants.
func MustSchedule(granularity time.Duration) Schedule {
	s, err := NewSchedule(granularity)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the epoch number containing t (epochs count from the
// Unix epoch; times before it give negative indexes).
func (s Schedule) Index(t time.Time) int64 {
	ns := t.UnixNano()
	g := int64(s.Granularity)
	idx := ns / g
	if ns%g < 0 {
		idx--
	}
	return idx
}

// Start returns the UTC start instant of epoch i.
func (s Schedule) Start(i int64) time.Time {
	return time.Unix(0, i*int64(s.Granularity)).UTC()
}

// Label returns the canonical label of the epoch containing t.
func (s Schedule) Label(t time.Time) string {
	return s.LabelAt(s.Index(t))
}

// LabelAt returns the canonical label of epoch i.
func (s Schedule) LabelAt(i int64) string {
	st := s.Start(i)
	if s.Granularity < time.Second {
		return st.Format(time.RFC3339Nano)
	}
	return st.Format(time.RFC3339)
}

// Next returns the label of the epoch after the one containing t — the
// earliest release label still in the future at time t.
func (s Schedule) Next(t time.Time) string {
	return s.LabelAt(s.Index(t) + 1)
}

// ParseLabel parses a canonical label back into its epoch start. It
// rejects strings that are not exactly on the schedule's grid, so a
// label uniquely identifies an epoch.
func (s Schedule) ParseLabel(label string) (time.Time, error) {
	t, err := time.Parse(time.RFC3339Nano, label)
	if err != nil {
		return time.Time{}, fmt.Errorf("timefmt: bad label %q: %w", label, err)
	}
	idx := s.Index(t)
	if !s.Start(idx).Equal(t) {
		return time.Time{}, fmt.Errorf("timefmt: label %q is not on the %v grid", label, s.Granularity)
	}
	if s.LabelAt(idx) != label {
		return time.Time{}, fmt.Errorf("timefmt: label %q is not canonical (want %q)", label, s.LabelAt(idx))
	}
	return t.UTC(), nil
}

// LabelsBetween returns the labels of all epochs whose start lies in
// [from, to) in chronological order. It caps the result at limit labels
// (0 means no cap) to protect callers from accidental huge ranges.
func (s Schedule) LabelsBetween(from, to time.Time, limit int) []string {
	if !from.Before(to) {
		return nil
	}
	start := s.Index(from)
	if !s.Start(start).Equal(from.UTC()) {
		start++ // first epoch boundary at or after from
	}
	var out []string
	for i := start; s.Start(i).Before(to); i++ {
		if limit > 0 && len(out) >= limit {
			break
		}
		out = append(out, s.LabelAt(i))
	}
	return out
}

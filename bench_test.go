// Package timedrelease's root benchmark suite: one testing.B family per
// experiment in DESIGN.md §3 (E1–E10). The formatted tables in
// EXPERIMENTS.md come from cmd/trebench; these benchmarks expose the
// same workloads to `go test -bench` so regressions are visible in
// standard tooling.
//
// Most benchmarks run on the fast Test160 parameters; E4 additionally
// pins the paper-era SS512 size for the headline primitive numbers.
package timedrelease

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"timedrelease/internal/baseline/bfibe"
	"timedrelease/internal/baseline/hybrid"
	"timedrelease/internal/baseline/rsw"
	"timedrelease/internal/bls"
	"timedrelease/internal/core"
	"timedrelease/internal/multiserver"
	"timedrelease/internal/pairing"
	"timedrelease/internal/resilient"
	"timedrelease/internal/simnet"
	"timedrelease/internal/threshold"
	"timedrelease/internal/timefmt"
	"timedrelease/internal/timeserver"
	"timedrelease/tre"
)

const benchLabel = "2026-07-05T12:00:00Z"

type benchEnv struct {
	set    *tre.Params
	scheme *tre.Scheme
	server *tre.ServerKeyPair
	user   *tre.UserKeyPair
	upd    tre.KeyUpdate
}

func newBenchEnv(b *testing.B, preset string) *benchEnv {
	b.Helper()
	set := tre.MustPreset(preset)
	scheme := tre.NewScheme(set)
	server, err := scheme.ServerKeyGen(nil)
	if err != nil {
		b.Fatal(err)
	}
	user, err := scheme.UserKeyGen(server.Pub, nil)
	if err != nil {
		b.Fatal(err)
	}
	return &benchEnv{
		set:    set,
		scheme: scheme,
		server: server,
		user:   user,
		upd:    scheme.IssueUpdate(server, benchLabel),
	}
}

// --- E1: TRE vs hybrid PKE+IBE --------------------------------------------

func BenchmarkE1_TREEncrypt(b *testing.B) {
	e := newBenchEnv(b, "Test160")
	msg := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.scheme.Encrypt(nil, e.server.Pub, e.user.Pub, benchLabel, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_TREDecrypt(b *testing.B) {
	e := newBenchEnv(b, "Test160")
	ct, err := e.scheme.Encrypt(nil, e.server.Pub, e.user.Pub, benchLabel, make([]byte, 32))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.scheme.Decrypt(e.user, e.upd, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_HybridEncrypt(b *testing.B) {
	set := tre.MustPreset("Test160")
	hyb := hybrid.NewScheme(set)
	ibe := bfibe.NewScheme(set)
	mk, err := ibe.MasterKeyGen(nil)
	if err != nil {
		b.Fatal(err)
	}
	rk, err := hyb.ReceiverKeyGen(nil)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hyb.Encrypt(nil, mk.Pub, rk.Pub, benchLabel, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_HybridDecrypt(b *testing.B) {
	set := tre.MustPreset("Test160")
	hyb := hybrid.NewScheme(set)
	ibe := bfibe.NewScheme(set)
	mk, err := ibe.MasterKeyGen(nil)
	if err != nil {
		b.Fatal(err)
	}
	rk, err := hyb.ReceiverKeyGen(nil)
	if err != nil {
		b.Fatal(err)
	}
	ct, err := hyb.Encrypt(nil, mk.Pub, rk.Pub, benchLabel, make([]byte, 32))
	if err != nil {
		b.Fatal(err)
	}
	labelKey := ibe.Extract(mk, benchLabel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hyb.Decrypt(rk, labelKey, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_IDTREEncrypt(b *testing.B) {
	set := tre.MustPreset("Test160")
	id := tre.NewIDScheme(set)
	scheme := tre.NewScheme(set)
	server, err := scheme.ServerKeyGen(nil)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := id.Encrypt(nil, server.Pub, "receiver", benchLabel, msg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: server epoch cost --------------------------------------------------

func BenchmarkE2_TREEpochBroadcast(b *testing.B) {
	e := newBenchEnv(b, "Test160")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simnet.TREEpoch(e.set, e.server, benchLabel, 10_000)
	}
}

func BenchmarkE2_MontIBEEpoch100(b *testing.B) {
	set := tre.MustPreset("Test160")
	ibe := bfibe.NewScheme(set)
	mk, err := ibe.MasterKeyGen(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simnet.MontIBEEpoch(set, mk, benchLabel, 100)
	}
}

// --- E3: RSW time-lock puzzle -----------------------------------------------

func BenchmarkE3_RSWCreate(b *testing.B) {
	msg := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rsw.New(nil, 512, 1_000_000, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3_RSWSolve10k(b *testing.B) {
	pz, err := rsw.New(nil, 512, 10_000, make([]byte, 32))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pz.Solve()
	}
}

// --- E4: primitives -----------------------------------------------------------

func benchmarkPrimitives(b *testing.B, preset string) {
	set := tre.MustPreset(preset)
	c, pr := set.Curve, set.Pairing
	p := c.HashToGroup("bench", []byte("P"))
	q := c.HashToGroup("bench", []byte("Q"))
	k, err := c.RandScalar(nil)
	if err != nil {
		b.Fatal(err)
	}
	key, err := bls.GenerateKey(set, nil)
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte(benchLabel)
	sig := key.Sign(set, "time", msg)

	b.Run("Pairing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr.Pair(p, q)
		}
	})
	b.Run("ScalarMultJacobian", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.ScalarMult(k, p)
		}
	})
	b.Run("ScalarMultWNAF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.ScalarMultWNAF(k, p)
		}
	})
	b.Run("ScalarMultAffine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.ScalarMultAffine(k, p)
		}
	})
	b.Run("HashToGroup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.HashToGroup("bench-h1", msg)
		}
	})
	b.Run("BLSSign", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			key.Sign(set, "time", msg)
		}
	})
	b.Run("BLSVerify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !bls.Verify(set, key.Pub, "time", msg, sig) {
				b.Fatal("verify failed")
			}
		}
	})
}

func BenchmarkE4_Test160(b *testing.B) { benchmarkPrimitives(b, "Test160") }
func BenchmarkE4_SS512(b *testing.B)   { benchmarkPrimitives(b, "SS512") }

// --- Pairing paths: affine reference vs optimised implementations -----------

// benchmarkPairingPaths compares every Miller-loop evaluation strategy on
// one point pair: the affine reference (one field inversion per loop
// iteration), the inversion-free projective loop (the default Pair), the
// fixed-argument prepared path, and the n-pair product with its shared
// final exponentiation. `make bench-pairing` renders the same comparison
// into BENCH_pairing.json.
func benchmarkPairingPaths(b *testing.B, preset string) {
	set := tre.MustPreset(preset)
	pr := set.Pairing
	p := set.Curve.HashToGroup("bench-pairing", []byte("P"))
	q := set.Curve.HashToGroup("bench-pairing", []byte("Q"))
	prep := pr.Precompute(p)
	pairs := make([]pairing.PointPair, 4)
	for i := range pairs {
		pairs[i] = pairing.PointPair{
			P: set.Curve.HashToGroup("bench-pairing", []byte{byte(i)}),
			Q: set.Curve.HashToGroup("bench-pairing", []byte{byte(16 + i)}),
		}
	}

	b.Run("Affine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr.PairAffine(p, q)
		}
	})
	b.Run("Projective", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr.Pair(p, q)
		}
	})
	b.Run("Precompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr.Precompute(p)
		}
	})
	b.Run("Prepared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr.PairPrepared(prep, q)
		}
	})
	b.Run("Product4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr.PairProduct(pairs)
		}
	})
}

func BenchmarkPairing_Test160(b *testing.B) { benchmarkPairingPaths(b, "Test160") }
func BenchmarkPairing_SS512(b *testing.B)   { benchmarkPairingPaths(b, "SS512") }

// --- E5: multi-server ---------------------------------------------------------

func benchMultiEnv(b *testing.B, n int) (*multiserver.Scheme, *multiserver.UserKeyPair, []core.KeyUpdate, *multiserver.Ciphertext) {
	b.Helper()
	set := tre.MustPreset("Test160")
	sc := multiserver.NewScheme(set)
	scheme := core.NewScheme(set)
	var (
		group   multiserver.ServerGroup
		updates []core.KeyUpdate
	)
	for i := 0; i < n; i++ {
		g, err := set.Curve.RandomSubgroupPoint(nil)
		if err != nil {
			b.Fatal(err)
		}
		s, err := set.Curve.RandScalar(nil)
		if err != nil {
			b.Fatal(err)
		}
		kp := &core.ServerKeyPair{S: s, Pub: core.ServerPublicKey{G: g, SG: set.Curve.ScalarMult(s, g)}}
		group = append(group, kp.Pub)
		updates = append(updates, scheme.IssueUpdate(kp, benchLabel))
	}
	user, err := sc.UserKeyGen(group, nil)
	if err != nil {
		b.Fatal(err)
	}
	ct, err := sc.Encrypt(nil, group, user.Pub, benchLabel, make([]byte, 64))
	if err != nil {
		b.Fatal(err)
	}
	return sc, user, updates, ct
}

func BenchmarkE5_MultiDecryptShared3(b *testing.B) {
	sc, user, updates, ct := benchMultiEnv(b, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Decrypt(user, updates, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5_MultiDecryptSeparate3(b *testing.B) {
	sc, user, updates, ct := benchMultiEnv(b, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.DecryptSeparate(user, updates, ct); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: update issue/verify ----------------------------------------------------

func BenchmarkE6_IssueUpdate(b *testing.B) {
	e := newBenchEnv(b, "Test160")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.scheme.IssueUpdate(e.server, benchLabel)
	}
}

func BenchmarkE6_VerifyUpdate(b *testing.B) {
	e := newBenchEnv(b, "Test160")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.scheme.VerifyUpdate(e.server.Pub, e.upd) {
			b.Fatal("verify failed")
		}
	}
}

// --- E7: key insulation ------------------------------------------------------------

func BenchmarkE7_DeriveEpochKey(b *testing.B) {
	e := newBenchEnv(b, "Test160")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.scheme.DeriveEpochKey(e.user, e.upd)
	}
}

func BenchmarkE7_DecryptInsulated(b *testing.B) {
	e := newBenchEnv(b, "Test160")
	ek := e.scheme.DeriveEpochKey(e.user, e.upd)
	ct, err := e.scheme.Encrypt(nil, e.server.Pub, e.user.Pub, benchLabel, make([]byte, 64))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.scheme.DecryptWithEpochKey(ek, ct); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: live HTTP update fetch ------------------------------------------------------

func BenchmarkE8_UpdateFetchVerify(b *testing.B) {
	set := tre.MustPreset("Test160")
	scheme := core.NewScheme(set)
	key, err := scheme.ServerKeyGen(nil)
	if err != nil {
		b.Fatal(err)
	}
	sched := timefmt.MustSchedule(time.Minute)
	now := time.Date(2026, 7, 5, 12, 0, 30, 0, time.UTC)
	srv := timeserver.NewServer(set, key, sched, timeserver.WithClock(func() time.Time { return now }))
	if _, err := srv.PublishUpTo(now); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	label := sched.Label(now)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh client each iteration so the fetch is not served from the
		// verification cache.
		client := timeserver.NewClient(ts.URL, set, key.Pub, timeserver.WithHTTPClient(ts.Client()))
		if _, err := client.Update(ctx, label); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: Rivest horizon --------------------------------------------------------------

func BenchmarkE9_RivestHorizon1Day(b *testing.B) {
	set := tre.MustPreset("Test160")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simnet.RivestHorizon(set, 1440); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E10: HIBE time tree ----------------------------------------------------------------

func benchTree(b *testing.B) (*resilient.Scheme, []tre.TreeNodeKey, *tre.TreeCiphertext, uint64) {
	b.Helper()
	set := tre.MustPreset("Test160")
	rs, err := resilient.NewScheme(set, 16)
	if err != nil {
		b.Fatal(err)
	}
	root, err := rs.H.RootKeyGen(nil)
	if err != nil {
		b.Fatal(err)
	}
	const epoch, now = 39995, 40000
	ct, err := rs.Encrypt(nil, root.Pub, epoch, make([]byte, 64))
	if err != nil {
		b.Fatal(err)
	}
	cover, err := rs.PublishCover(root, now)
	if err != nil {
		b.Fatal(err)
	}
	return rs, cover, ct, epoch
}

func BenchmarkE10_TreeLeafDerive(b *testing.B) {
	rs, cover, _, epoch := benchTree(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rs.LeafKey(cover, epoch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10_TreeDecrypt(b *testing.B) {
	rs, cover, ct, epoch := benchTree(b)
	leaf, err := rs.LeafKey(cover, epoch)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rs.H.Decrypt(leaf, ct); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11: amortised encryption ------------------------------------------------------------

func BenchmarkE11_EncryptDirect(b *testing.B) {
	e := newBenchEnv(b, "Test160")
	msg := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.scheme.Encrypt(nil, e.server.Pub, e.user.Pub, benchLabel, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11_EncryptAmortised(b *testing.B) {
	e := newBenchEnv(b, "Test160")
	enc, err := e.scheme.NewEncryptor(e.server.Pub, e.user.Pub)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 64)
	if _, err := enc.Encrypt(nil, benchLabel, msg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encrypt(nil, benchLabel, msg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E12: threshold servers ------------------------------------------------------------------

func BenchmarkE12_IssuePartial(b *testing.B) {
	set := tre.MustPreset("Test160")
	setup, err := threshold.Deal(set, nil, 3, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		threshold.IssuePartial(set, setup.Shares[0], benchLabel)
	}
}

func BenchmarkE12_Combine3of5(b *testing.B) {
	set := tre.MustPreset("Test160")
	setup, err := threshold.Deal(set, nil, 3, 5)
	if err != nil {
		b.Fatal(err)
	}
	partials := make([]threshold.PartialUpdate, 3)
	for i := 0; i < 3; i++ {
		partials[i] = threshold.IssuePartial(set, setup.Shares[i], benchLabel)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := threshold.Combine(set, setup.GroupPub, partials, 3); err != nil {
			b.Fatal(err)
		}
	}
}

# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet cover bench experiments experiments-quick fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Per-package coverage summary.
cover:
	$(GO) test -cover ./...

# The full testing.B suite (mirrors the experiment workloads).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the EXPERIMENTS.md tables at full scope (~2-3 minutes).
experiments:
	$(GO) run ./cmd/trebench

experiments-quick:
	$(GO) run ./cmd/trebench -quick

# Short fuzz campaign over every wire decoder.
fuzz:
	$(GO) test -fuzz FuzzUnmarshalKeyUpdate -fuzztime 30s ./internal/wire
	$(GO) test -fuzz FuzzUnmarshalCCACiphertext -fuzztime 30s ./internal/wire
	$(GO) test -fuzz FuzzUnmarshalEnvelope -fuzztime 30s ./internal/wire

clean:
	$(GO) clean ./...

# Convenience targets; everything is plain `go` underneath.
# Run `make help` for the full list; `make ci` is the single gate —
# the CI pipeline (.github/workflows/ci.yml) runs exactly it, and
# `make check` (the historical pre-commit name) is an alias for it.

GO ?= go

# Fuzz budget per target; the nightly workflow shrinks it.
FUZZTIME ?= 30s

.PHONY: all help build test test-shuffle vet fmt-check lint ci check cover cover-ratchet bench bench-pairing bench-field bench-server bench-server-bls bench-catchup bench-stream bench-rounds bench-tokens race experiments experiments-quick fuzz fuzz-smoke docker clean

all: build vet test

help:
	@echo "Targets:"
	@echo "  all                build + vet + test (default)"
	@echo "  ci                 the CI gate: vet + gofmt -l + shuffled tests + race tests"
	@echo "  check              alias for ci (pre-commit habit)"
	@echo "  build              go build ./..."
	@echo "  test               go test ./..."
	@echo "  test-shuffle       go test -shuffle=on ./..."
	@echo "  vet                go vet ./..."
	@echo "  cover              per-package coverage summary"
	@echo "  cover-ratchet      fail if total coverage drops below the .covermin floor"
	@echo "  bench              the full testing.B suite"
	@echo "  bench-pairing      pairing backend/strategy ablation (incl. bls12381) -> BENCH_pairing.json"
	@echo "  bench-field        field backend micro-benchmark (incl. bls12381) -> BENCH_field.json"
	@echo "  bench-server       serving-path load harness -> BENCH_server.json"
	@echo "  bench-server-bls   serving-path cells on the BLS12-381 backend -> BENCH_server.json"
	@echo "  bench-catchup      cold-start catch-up (aggregate vs batch) -> BENCH_server.json"
	@echo "  bench-stream       stream/relay fan-out at 1k and 50k subscribers -> BENCH_server.json"
	@echo "  bench-rounds       quorum-combine latency on a 3-of-5 beacon network -> BENCH_server.json"
	@echo "  bench-tokens       access-token issue/redeem/double-spend cells (both backends) -> BENCH_server.json"
	@echo "  lint               staticcheck + govulncheck when installed (CI installs them)"
	@echo "  race               go test -race ./..."
	@echo "  experiments        regenerate the EXPERIMENTS.md tables (slow)"
	@echo "  experiments-quick  reduced sweeps at Test160"
	@echo "  fuzz               fuzz campaign, FUZZTIME=$(FUZZTIME) per target"
	@echo "  fuzz-smoke         PR-tier fuzz lane: the wire/armor/token decoders only"
	@echo "  docker             build the serving-tier images (treserver, trerelay)"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Shuffled run: catches hidden test-order dependencies.
test-shuffle:
	$(GO) test -shuffle=on ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Deep static analysis and known-vulnerability scan. Soft-gated on the
# tools being installed so a bare checkout still passes `make ci`; the
# CI pipeline installs both, so there they always run.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck skipped: tool not installed (CI enforces)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck skipped: tool not installed (CI enforces)"; \
	fi

# The CI gate: static checks, one shuffled test run, one race run —
# each pass exactly once (the race detector covers the WHOLE module;
# the concurrency reaches from the sharded scheme caches and pooled
# arenas up through the serving path, so nothing is exempt). This is
# what .github/workflows/ci.yml executes.
ci: vet fmt-check lint test-shuffle race

# Historical pre-commit name.
check: ci

# Per-package coverage summary.
cover:
	$(GO) test -cover ./...

# Coverage ratchet: total statement coverage must not drop below the
# checked-in floor in .covermin. Raise the floor when coverage durably
# improves; never lower it to make a PR pass.
cover-ratchet:
	@$(GO) test -count=1 -coverprofile=coverage.out ./... >/dev/null
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	min=$$(cat .covermin); \
	echo "total coverage $$total% (floor $$min%)"; \
	if awk -v t="$$total" -v m="$$min" 'BEGIN { exit !(t+0 < m+0) }'; then \
		echo "coverage ratchet FAILED: $$total% is below the $$min% floor in .covermin"; exit 1; \
	fi

# The full testing.B suite (mirrors the experiment workloads).
bench:
	$(GO) test -bench=. -benchmem ./...

# Pairing-strategy and backend comparison (affine vs projective vs
# prepared vs product, bigint vs montgomery) at Test160 and SS512,
# plus the Type-3 BLS12-381 optimal ate row, recorded as
# BENCH_pairing.json.
bench-pairing:
	$(GO) run ./cmd/trebench -pairing BENCH_pairing.json

# Field-backend micro-benchmark (Mul/Sqr/Inv; bigint vs montgomery,
# plus the BLS12-381 six-limb field), recorded as BENCH_field.json.
bench-field:
	$(GO) run ./cmd/trebench -field BENCH_field.json

# Serving-path load harness: concurrent verifying clients against a
# real HTTP time server, three workload mixes at two concurrency
# levels, recorded as BENCH_server.json (see docs/OBSERVABILITY.md).
bench-server:
	$(GO) run ./cmd/treload -out BENCH_server.json

# The same serving-path cells on the Type-3 BLS12-381 backend (fetch,
# catchup, mixed, encdec and the 3-of-5 beacon rounds), merged into
# BENCH_server.json alongside the symmetric presets' rows.
bench-server-bls:
	$(GO) run ./cmd/treload -preset BLS12-381 -mixes fetch,catchup,mixed,encdec,rounds -merge -out BENCH_server.json

# Cold-start catch-up comparison only: one receiver recovering 1k/10k
# missed epochs per op, aggregate range path vs per-label batch path,
# recorded into BENCH_server.json (pairings_per_op shows the O(1) claim).
bench-catchup:
	$(GO) run ./cmd/treload -preset Test160 -mixes coldstart,coldstart-batch -out BENCH_server.json

# Broadcast fan-out cells only: N concurrent /v1/stream subscribers on
# an origin server and on a stateless relay, publish→delivery wakeup
# latency per event. Counts past the FD limit run over an in-memory
# transport (transport=inmem in the row). -merge keeps the other mixes'
# rows in BENCH_server.json intact.
bench-stream:
	$(GO) run ./cmd/treload -preset Test160 -mixes stream,relay -subscribers 1000,50000 -merge -out BENCH_server.json

# Beacon-round quorum cells only: concurrent receivers combining 3-of-5
# partial updates per op (n parallel fetches + k pairing verifications
# + one Lagrange combine). -merge keeps the other mixes' rows intact.
bench-rounds:
	$(GO) run ./cmd/treload -preset Test160 -mixes rounds -merge -out BENCH_server.json

# Anonymous-access-token cells on both backends: per-batch blind
# issuance latency (p50/p95/p99), sustained redemptions/sec through the
# gated catch-up path, and deliberate double-spend rejects — merged
# into BENCH_server.json alongside the other mixes' rows.
bench-tokens:
	$(GO) run ./cmd/treload -preset Test160 -mixes tokens -merge -out BENCH_server.json
	$(GO) run ./cmd/treload -preset BLS12-381 -mixes tokens -merge -out BENCH_server.json

# Race detector across the whole module (exercises the parallel pairing
# products, the batch verification pool and the chaos-test harness),
# shuffled so the storm scenarios also prove order-independence under
# the detector.
race:
	$(GO) test -race -shuffle=on ./...

# Regenerate the EXPERIMENTS.md tables at full scope (~2-3 minutes).
experiments:
	$(GO) run ./cmd/trebench

experiments-quick:
	$(GO) run ./cmd/trebench -quick

# Fuzz campaign over every wire decoder (including the armored round
# ciphertext format), the differential field-arithmetic targets
# (Montgomery backend vs big.Int reference, plus the BLS12-381 base
# field, Fp12 tower and compressed G2 decoder), the client's HTTP
# update parsing, the beacon round↔label mapping and the metrics JSON
# encoder.
# Checked-in seed corpora live under <pkg>/testdata/fuzz/<Target>/.
# Override the per-target budget with FUZZTIME=10s (nightly CI does).
fuzz:
	$(GO) test -fuzz FuzzUnmarshalKeyUpdate -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -fuzz FuzzUnmarshalCCACiphertext -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -fuzz FuzzUnmarshalEnvelope -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -fuzz FuzzCatchUpDecode -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -fuzz FuzzArmoredDecode -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -fuzz FuzzTokenRequestDecode -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -fuzz FuzzTokenDecode -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run XXX -fuzz FuzzRoundFromLabel -fuzztime $(FUZZTIME) ./internal/beacon
	$(GO) test -run XXX -fuzz FuzzFpArith -fuzztime $(FUZZTIME) ./internal/ff
	$(GO) test -run XXX -fuzz FuzzFp2Arith -fuzztime $(FUZZTIME) ./internal/ff
	$(GO) test -run XXX -fuzz FuzzFeArith -fuzztime $(FUZZTIME) ./internal/bls381
	$(GO) test -run XXX -fuzz FuzzFp12Arith -fuzztime $(FUZZTIME) ./internal/bls381
	$(GO) test -run XXX -fuzz FuzzG2Marshal -fuzztime $(FUZZTIME) ./internal/bls381
	$(GO) test -run XXX -fuzz FuzzClientDecodeUpdate -fuzztime $(FUZZTIME) ./internal/timeserver
	$(GO) test -run XXX -fuzz FuzzMetricsSnapshot -fuzztime $(FUZZTIME) ./internal/obs

# PR-tier fuzz smoke lane: only the attacker-reachable decoders (wire
# formats, the armored ciphertext container, the token formats), each
# for a short budget — CI runs `make fuzz-smoke FUZZTIME=5s` on every
# pull request; the full campaign stays nightly.
fuzz-smoke:
	$(GO) test -run XXX -fuzz FuzzUnmarshalKeyUpdate -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run XXX -fuzz FuzzUnmarshalCCACiphertext -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run XXX -fuzz FuzzUnmarshalEnvelope -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run XXX -fuzz FuzzCatchUpDecode -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run XXX -fuzz FuzzArmoredDecode -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run XXX -fuzz FuzzTokenRequestDecode -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run XXX -fuzz FuzzTokenDecode -fuzztime $(FUZZTIME) ./internal/wire

# Serving-tier container images: one multi-stage Dockerfile, two final
# stages (origin time server and stateless fan-out relay).
docker:
	docker build --target treserver -t timedrelease/treserver .
	docker build --target trerelay -t timedrelease/trerelay .

clean:
	$(GO) clean ./...

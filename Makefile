# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet cover bench bench-pairing race experiments experiments-quick fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Per-package coverage summary.
cover:
	$(GO) test -cover ./...

# The full testing.B suite (mirrors the experiment workloads).
bench:
	$(GO) test -bench=. -benchmem ./...

# Pairing-strategy comparison (affine vs projective vs prepared vs
# product) at Test160 and SS512, recorded as BENCH_pairing.json.
bench-pairing:
	$(GO) run ./cmd/trebench -pairing BENCH_pairing.json

# Race detector across the whole module (exercises the parallel pairing
# products and batch verification pool).
race:
	$(GO) test -race ./...

# Regenerate the EXPERIMENTS.md tables at full scope (~2-3 minutes).
experiments:
	$(GO) run ./cmd/trebench

experiments-quick:
	$(GO) run ./cmd/trebench -quick

# Short fuzz campaign over every wire decoder.
fuzz:
	$(GO) test -fuzz FuzzUnmarshalKeyUpdate -fuzztime 30s ./internal/wire
	$(GO) test -fuzz FuzzUnmarshalCCACiphertext -fuzztime 30s ./internal/wire
	$(GO) test -fuzz FuzzUnmarshalEnvelope -fuzztime 30s ./internal/wire

clean:
	$(GO) clean ./...

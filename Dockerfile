# Serving-tier images: one multi-stage build, two final targets.
#
#   docker build --target treserver -t timedrelease/treserver .
#   docker build --target trerelay  -t timedrelease/trerelay .
#
# (`make docker` builds both.) The binaries are static (CGO disabled;
# the module has no dependencies outside the standard library), so the
# final stages run from scratch-like distroless-static bases: no shell,
# no libc, nothing but the binary, a CA bundle and /etc/passwd for the
# nonroot user.
#
# treserver holds the signing key and must persist its archive — mount
# volumes over /data (the defaults below point there). trerelay is
# stateless by design: point -upstream at an origin (or another relay)
# and scale it horizontally; the pinned upstream key fingerprint lives
# under /data too so a restart cannot be fed a swapped key.

FROM golang:1.24 AS build
WORKDIR /src
# The module is self-contained (no external requirements), so go.mod
# alone primes the build cache.
COPY go.mod ./
RUN go mod download
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/treserver ./cmd/treserver \
 && CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/trerelay ./cmd/trerelay

# --- origin time server -------------------------------------------------
FROM gcr.io/distroless/static-debian12:nonroot AS treserver
COPY --from=build /out/treserver /usr/local/bin/treserver
WORKDIR /data
VOLUME /data
EXPOSE 8440
ENTRYPOINT ["/usr/local/bin/treserver"]
CMD ["-addr", ":8440", "-key", "/data/treserver.key", "-archive-dir", "/data/archive"]

# --- stateless fan-out relay --------------------------------------------
FROM gcr.io/distroless/static-debian12:nonroot AS trerelay
COPY --from=build /out/trerelay /usr/local/bin/trerelay
WORKDIR /data
VOLUME /data
EXPOSE 8441
ENTRYPOINT ["/usr/local/bin/trerelay"]
# -upstream is required; compose files override CMD, e.g.:
#   ["-addr", ":8441", "-upstream", "http://treserver:8440", "-pin", "/data/upstream.pin"]
CMD ["-addr", ":8441", "-pin", "/data/upstream.pin"]

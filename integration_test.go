// End-to-end integration tests: everything composed through the public
// facade against a LIVE time server running its real publication loop on
// the wall clock (500 ms epochs). These are the "whole system" checks —
// each subsystem's behaviour is pinned by its own package tests; here we
// assert the composition a deployment would actually run.
package timedrelease

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"timedrelease/tre"
)

// liveStack is a running server + verifying client on real time.
type liveStack struct {
	set    *tre.Params
	scheme *tre.Scheme
	key    *tre.ServerKeyPair
	sched  tre.Schedule
	server *tre.TimeServer
	client *tre.TimeClient
	url    string
	cancel context.CancelFunc
}

func startLiveStack(t *testing.T) *liveStack {
	t.Helper()
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)
	key, err := scheme.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := tre.MustSchedule(500 * time.Millisecond)
	srv := tre.NewTimeServer(set, key, sched)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("time server: %v", err)
		}
	}()
	t.Cleanup(func() { cancel(); <-done })

	return &liveStack{
		set:    set,
		scheme: scheme,
		key:    key,
		sched:  sched,
		server: srv,
		client: tre.NewTimeClient(ts.URL, set, key.Pub, tre.WithHTTPClient(ts.Client())),
		url:    ts.URL,
		cancel: cancel,
	}
}

func TestIntegrationFullLifecycleOnWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	st := startLiveStack(t)
	ctx, cancelCtx := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelCtx()

	alice, err := st.scheme.UserKeyGen(st.key.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Seal to an epoch two ticks ahead, then decrypt after release.
	releaseAt := st.sched.LabelAt(st.sched.Index(time.Now()) + 2)
	msg := []byte("integration: the full stack on real time")
	ct, err := st.scheme.EncryptCCA(nil, st.key.Pub, alice.Pub, releaseAt, msg)
	if err != nil {
		t.Fatal(err)
	}

	// Early fetch fails; long-poll wait succeeds once the server's Run
	// loop crosses the boundary.
	if _, err := st.client.Update(ctx, releaseAt); !errors.Is(err, tre.ErrNotYetPublished) {
		t.Fatalf("early fetch: %v", err)
	}
	upd, err := st.client.WaitForReleaseLongPoll(ctx, releaseAt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.scheme.DecryptCCA(st.key.Pub, alice, upd, ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("decrypt after live release: %q %v", got, err)
	}
}

func TestIntegrationManyReceiversOneUpdate(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	st := startLiveStack(t)
	ctx, cancelCtx := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelCtx()

	const nReceivers = 8
	type receiver struct {
		key *tre.UserKeyPair
		ct  *tre.CCACiphertext
	}
	releaseAt := st.sched.LabelAt(st.sched.Index(time.Now()) + 2)
	receivers := make([]receiver, nReceivers)
	for i := range receivers {
		key, err := st.scheme.UserKeyGen(st.key.Pub, nil)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := st.scheme.EncryptCCA(nil, st.key.Pub, key.Pub, releaseAt,
			[]byte(fmt.Sprintf("message for receiver %d", i)))
		if err != nil {
			t.Fatal(err)
		}
		receivers[i] = receiver{key: key, ct: ct}
	}

	// All receivers wait concurrently; all are released by ONE update.
	var wg sync.WaitGroup
	errs := make(chan error, nReceivers)
	for i, r := range receivers {
		wg.Add(1)
		go func(i int, r receiver) {
			defer wg.Done()
			upd, err := st.client.WaitForRelease(ctx, releaseAt, 50*time.Millisecond)
			if err != nil {
				errs <- fmt.Errorf("receiver %d wait: %w", i, err)
				return
			}
			got, err := st.scheme.DecryptCCA(st.key.Pub, r.key, upd, r.ct)
			if err != nil {
				errs <- fmt.Errorf("receiver %d decrypt: %w", i, err)
				return
			}
			if want := fmt.Sprintf("message for receiver %d", i); string(got) != want {
				errs <- fmt.Errorf("receiver %d got %q", i, got)
			}
		}(i, r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The headline property, observed live: the server signed each epoch
	// once, no matter how many receivers were waiting.
	if st.server.Published() > 30 { // generous bound: runtime/500ms + backfill
		t.Fatalf("server published %d updates — expected one per epoch, not per receiver", st.server.Published())
	}
}

// startRelayTier boots a relay fed from the origin at upURL and serves
// it on ln. It returns a stop func that tears down both the relay loop
// and its HTTP front end.
func startRelayTier(t *testing.T, st *liveStack, ln net.Listener) func() {
	t.Helper()
	up := tre.NewTimeClient(st.url, st.set, st.key.Pub)
	relay := tre.NewRelay(up, st.sched,
		tre.RelayWithRetry(tre.RetryPolicy{MaxAttempts: 1, BaseDelay: 25 * time.Millisecond, MaxDelay: 250 * time.Millisecond}))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); relay.Run(ctx) }()
	hs := &http.Server{Handler: relay.Handler()}
	go hs.Serve(ln)
	return func() {
		cancel()
		hs.Close()
		<-done
	}
}

// TestIntegrationRelayChainSurvivesRelayRestart is the acceptance check
// for the distribution tier: a three-deep chain (origin server → relay
// → client) releases a real ciphertext, and killing the relay mid-wait
// then restarting a FRESH one on the same address still converges —
// the replacement relay rebuilds its archive from the origin via
// catch-up and the client's stream reconnect picks the release up. At
// no point does any party besides the origin hold the master secret;
// the client verifies every update against the origin's public key, so
// the relay tier adds availability surface but zero trust surface.
func TestIntegrationRelayChainSurvivesRelayRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	st := startLiveStack(t)
	ctx, cancelCtx := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancelCtx()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	stopRelay := startRelayTier(t, st, ln)

	// Bootstrap THROUGH the relay: the downstream client learns
	// parameters, server key and schedule without ever talking to the
	// origin directly.
	bootSet, bootKey, _, err := tre.FetchBootstrap(ctx, "http://"+addr, nil)
	if err != nil {
		t.Fatalf("bootstrap via relay: %v", err)
	}
	if bootSet.Name != st.set.Name || !st.set.Curve.Equal(bootKey.SG, st.key.Pub.SG) {
		t.Fatal("relay served a different authority than the origin")
	}
	down := tre.NewTimeClient("http://"+addr, bootSet, bootKey,
		tre.WithRetry(tre.RetryPolicy{MaxAttempts: 60, BaseDelay: 50 * time.Millisecond, MaxDelay: 500 * time.Millisecond}))

	alice, err := st.scheme.UserKeyGen(st.key.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	releaseAt := st.sched.LabelAt(st.sched.Index(time.Now()) + 6) // ~3s out: room for the restart
	msg := []byte("released through a relay that died and came back")
	ct, err := st.scheme.EncryptCCA(nil, st.key.Pub, alice.Pub, releaseAt, msg)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		upd tre.KeyUpdate
		err error
	}
	waitDone := make(chan result, 1)
	go func() {
		upd, err := down.WaitFor(ctx, releaseAt)
		waitDone <- result{upd, err}
	}()

	// Kill the relay while the client is parked on its stream, hold the
	// address dark briefly, then start a replacement with an EMPTY
	// archive on the same address.
	time.Sleep(400 * time.Millisecond)
	stopRelay()
	time.Sleep(600 * time.Millisecond)
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	stopRelay2 := startRelayTier(t, st, ln2)
	defer stopRelay2()

	res := <-waitDone
	if res.err != nil {
		t.Fatalf("wait through restarted relay: %v", res.err)
	}
	if res.upd.Label != releaseAt {
		t.Fatalf("released %q, want %q", res.upd.Label, releaseAt)
	}
	got, err := st.scheme.DecryptCCA(st.key.Pub, alice, res.upd, ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("decrypt after relay restart: %q %v", got, err)
	}

	// The replacement converged from nothing: its archive was rebuilt
	// from the origin (catch-up) and/or live stream, never from local
	// state it no longer had.
	if _, err := down.Update(ctx, st.sched.LabelAt(st.sched.Index(time.Now())-2)); err != nil {
		t.Fatalf("restarted relay is missing backfilled history: %v", err)
	}
}

func TestIntegrationVariantsComposeOverOneServer(t *testing.T) {
	// The same server key simultaneously powers TRE, ID-TRE, policy
	// locks and epoch-key insulation — one authority, many schemes.
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)
	server, err := scheme.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	const label = "2026-07-05T12:00:00Z"
	upd := scheme.IssueUpdate(server, label)

	// TRE with insulated decryption.
	alice, err := scheme.UserKeyGen(server.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	treCT, err := scheme.Encrypt(nil, server.Pub, alice.Pub, label, []byte("tre"))
	if err != nil {
		t.Fatal(err)
	}
	ek := scheme.DeriveEpochKey(alice, upd)
	if got, err := scheme.DecryptWithEpochKey(ek, treCT); err != nil || string(got) != "tre" {
		t.Fatalf("insulated TRE: %q %v", got, err)
	}

	// ID-TRE sharing the same update stream.
	id := tre.NewIDScheme(set)
	idCT, err := id.Encrypt(nil, server.Pub, "bob", label, []byte("id-tre"))
	if err != nil {
		t.Fatal(err)
	}
	bobKey := id.ExtractUserKey(server, "bob")
	if got, err := id.Decrypt(bobKey, upd, idCT); err != nil || string(got) != "id-tre" {
		t.Fatalf("ID-TRE: %q %v", got, err)
	}

	// Policy lock with a threshold policy, CCA mode.
	pl := tre.NewPolicyScheme(set)
	policy, err := tre.ThresholdPolicy(2, []string{"legal", "finance", "security"})
	if err != nil {
		t.Fatal(err)
	}
	plCT, err := pl.EncryptCCA(nil, server.Pub, alice.Pub, policy, []byte("policy"))
	if err != nil {
		t.Fatal(err)
	}
	atts := []tre.Attestation{pl.Attest(server, "security"), pl.Attest(server, "legal")}
	if got, err := pl.DecryptCCA(server.Pub, alice, atts, plCT); err != nil || string(got) != "policy" {
		t.Fatalf("policy CCA: %q %v", got, err)
	}

	// Multi-recipient broadcast under the same label.
	carol, err := scheme.UserKeyGen(server.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := scheme.EncryptMulti(nil, server.Pub,
		[]tre.UserPublicKey{alice.Pub, carol.Pub}, label, []byte("press release"))
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range []*tre.UserKeyPair{alice, carol} {
		if got, err := scheme.DecryptMulti(u, upd, multi, i); err != nil || string(got) != "press release" {
			t.Fatalf("multi slot %d: %q %v", i, got, err)
		}
	}
}

// End-to-end integration tests: everything composed through the public
// facade against a LIVE time server running its real publication loop on
// the wall clock (500 ms epochs). These are the "whole system" checks —
// each subsystem's behaviour is pinned by its own package tests; here we
// assert the composition a deployment would actually run.
package timedrelease

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"timedrelease/tre"
)

// liveStack is a running server + verifying client on real time.
type liveStack struct {
	set    *tre.Params
	scheme *tre.Scheme
	key    *tre.ServerKeyPair
	sched  tre.Schedule
	server *tre.TimeServer
	client *tre.TimeClient
	cancel context.CancelFunc
}

func startLiveStack(t *testing.T) *liveStack {
	t.Helper()
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)
	key, err := scheme.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := tre.MustSchedule(500 * time.Millisecond)
	srv := tre.NewTimeServer(set, key, sched)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("time server: %v", err)
		}
	}()
	t.Cleanup(func() { cancel(); <-done })

	return &liveStack{
		set:    set,
		scheme: scheme,
		key:    key,
		sched:  sched,
		server: srv,
		client: tre.NewTimeClient(ts.URL, set, key.Pub, tre.WithHTTPClient(ts.Client())),
		cancel: cancel,
	}
}

func TestIntegrationFullLifecycleOnWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	st := startLiveStack(t)
	ctx, cancelCtx := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelCtx()

	alice, err := st.scheme.UserKeyGen(st.key.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Seal to an epoch two ticks ahead, then decrypt after release.
	releaseAt := st.sched.LabelAt(st.sched.Index(time.Now()) + 2)
	msg := []byte("integration: the full stack on real time")
	ct, err := st.scheme.EncryptCCA(nil, st.key.Pub, alice.Pub, releaseAt, msg)
	if err != nil {
		t.Fatal(err)
	}

	// Early fetch fails; long-poll wait succeeds once the server's Run
	// loop crosses the boundary.
	if _, err := st.client.Update(ctx, releaseAt); !errors.Is(err, tre.ErrNotYetPublished) {
		t.Fatalf("early fetch: %v", err)
	}
	upd, err := st.client.WaitForReleaseLongPoll(ctx, releaseAt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.scheme.DecryptCCA(st.key.Pub, alice, upd, ct)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("decrypt after live release: %q %v", got, err)
	}
}

func TestIntegrationManyReceiversOneUpdate(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	st := startLiveStack(t)
	ctx, cancelCtx := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelCtx()

	const nReceivers = 8
	type receiver struct {
		key *tre.UserKeyPair
		ct  *tre.CCACiphertext
	}
	releaseAt := st.sched.LabelAt(st.sched.Index(time.Now()) + 2)
	receivers := make([]receiver, nReceivers)
	for i := range receivers {
		key, err := st.scheme.UserKeyGen(st.key.Pub, nil)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := st.scheme.EncryptCCA(nil, st.key.Pub, key.Pub, releaseAt,
			[]byte(fmt.Sprintf("message for receiver %d", i)))
		if err != nil {
			t.Fatal(err)
		}
		receivers[i] = receiver{key: key, ct: ct}
	}

	// All receivers wait concurrently; all are released by ONE update.
	var wg sync.WaitGroup
	errs := make(chan error, nReceivers)
	for i, r := range receivers {
		wg.Add(1)
		go func(i int, r receiver) {
			defer wg.Done()
			upd, err := st.client.WaitForRelease(ctx, releaseAt, 50*time.Millisecond)
			if err != nil {
				errs <- fmt.Errorf("receiver %d wait: %w", i, err)
				return
			}
			got, err := st.scheme.DecryptCCA(st.key.Pub, r.key, upd, r.ct)
			if err != nil {
				errs <- fmt.Errorf("receiver %d decrypt: %w", i, err)
				return
			}
			if want := fmt.Sprintf("message for receiver %d", i); string(got) != want {
				errs <- fmt.Errorf("receiver %d got %q", i, got)
			}
		}(i, r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The headline property, observed live: the server signed each epoch
	// once, no matter how many receivers were waiting.
	if st.server.Published() > 30 { // generous bound: runtime/500ms + backfill
		t.Fatalf("server published %d updates — expected one per epoch, not per receiver", st.server.Published())
	}
}

func TestIntegrationVariantsComposeOverOneServer(t *testing.T) {
	// The same server key simultaneously powers TRE, ID-TRE, policy
	// locks and epoch-key insulation — one authority, many schemes.
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)
	server, err := scheme.ServerKeyGen(nil)
	if err != nil {
		t.Fatal(err)
	}
	const label = "2026-07-05T12:00:00Z"
	upd := scheme.IssueUpdate(server, label)

	// TRE with insulated decryption.
	alice, err := scheme.UserKeyGen(server.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	treCT, err := scheme.Encrypt(nil, server.Pub, alice.Pub, label, []byte("tre"))
	if err != nil {
		t.Fatal(err)
	}
	ek := scheme.DeriveEpochKey(alice, upd)
	if got, err := scheme.DecryptWithEpochKey(ek, treCT); err != nil || string(got) != "tre" {
		t.Fatalf("insulated TRE: %q %v", got, err)
	}

	// ID-TRE sharing the same update stream.
	id := tre.NewIDScheme(set)
	idCT, err := id.Encrypt(nil, server.Pub, "bob", label, []byte("id-tre"))
	if err != nil {
		t.Fatal(err)
	}
	bobKey := id.ExtractUserKey(server, "bob")
	if got, err := id.Decrypt(bobKey, upd, idCT); err != nil || string(got) != "id-tre" {
		t.Fatalf("ID-TRE: %q %v", got, err)
	}

	// Policy lock with a threshold policy, CCA mode.
	pl := tre.NewPolicyScheme(set)
	policy, err := tre.ThresholdPolicy(2, []string{"legal", "finance", "security"})
	if err != nil {
		t.Fatal(err)
	}
	plCT, err := pl.EncryptCCA(nil, server.Pub, alice.Pub, policy, []byte("policy"))
	if err != nil {
		t.Fatal(err)
	}
	atts := []tre.Attestation{pl.Attest(server, "security"), pl.Attest(server, "legal")}
	if got, err := pl.DecryptCCA(server.Pub, alice, atts, plCT); err != nil || string(got) != "policy" {
		t.Fatalf("policy CCA: %q %v", got, err)
	}

	// Multi-recipient broadcast under the same label.
	carol, err := scheme.UserKeyGen(server.Pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := scheme.EncryptMulti(nil, server.Pub,
		[]tre.UserPublicKey{alice.Pub, carol.Pub}, label, []byte("press release"))
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range []*tre.UserKeyPair{alice, carol} {
		if got, err := scheme.DecryptMulti(u, upd, multi, i); err != nil || string(got) != "press release" {
			t.Fatalf("multi slot %d: %q %v", i, got, err)
		}
	}
}

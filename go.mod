module timedrelease

go 1.22

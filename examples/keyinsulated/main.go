// Key insulation (paper §5.3.3): decrypt on an untrusted device without
// ever exposing the long-term private key.
//
// Alice keeps her private scalar a on a smart card (here: the `safeCard`
// value that never leaves this function's top half). Each epoch, the
// card combines a with the epoch's public key update into the epoch key
// a·I_T and hands ONLY that to her laptop. The laptop decrypts the
// epoch's traffic; if it is compromised, the attacker learns nothing
// about a and nothing about any other epoch.
package main

import (
	"fmt"
	"log"

	"timedrelease/tre"
)

func main() {
	set := tre.MustPreset("SS512")
	scheme := tre.NewScheme(set)

	server, err := scheme.ServerKeyGen(nil)
	if err != nil {
		log.Fatal(err)
	}

	// The paper suggests the long-term key may even come from a
	// human-memorable password, hashed (§5.1 User Key Generation).
	safeCard, err := scheme.UserKeyFromPassword(server.Pub,
		[]byte("correct horse battery staple"), []byte("alice@example.org"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("long-term key derived on the safe device (password + salt)")

	epochs := []string{"2026-07-05T12:00:00Z", "2026-07-05T13:00:00Z"}

	// Messages arrive for both epochs.
	var cts []*tre.Ciphertext
	for _, ep := range epochs {
		ct, err := scheme.Encrypt(nil, server.Pub, safeCard.Pub, ep, []byte("traffic for "+ep))
		if err != nil {
			log.Fatal(err)
		}
		cts = append(cts, ct)
	}

	// Epoch 1 begins: the server broadcasts the update; the card turns it
	// into this epoch's insulated key.
	upd0 := scheme.IssueUpdate(server, epochs[0])
	epochKey := scheme.DeriveEpochKey(safeCard, upd0)
	fmt.Println("smart card handed the laptop the epoch key a·I_T for", epochKey.Label)

	// ---- everything below runs on the "insecure laptop": it holds only
	// epochKey, never safeCard.A. ----

	// The laptop can sanity-check what it received using public data only.
	if !scheme.VerifyEpochKey(server.Pub, safeCard.Pub, upd0, epochKey) {
		log.Fatal("epoch key failed verification")
	}

	plain, err := scheme.DecryptWithEpochKey(epochKey, cts[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("laptop decrypted epoch-1 traffic: %q\n", plain)

	// Compromise scenario: the attacker exfiltrates epochKey. Epoch 2's
	// traffic is still safe — the stolen key produces garbage.
	leak, err := scheme.DecryptWithEpochKey(epochKey, cts[1])
	if err != nil {
		log.Fatal(err)
	}
	if string(leak) == "traffic for "+epochs[1] {
		log.Fatal("insulation failed!")
	}
	fmt.Println("stolen epoch-1 key cannot read epoch-2 traffic (key insulation holds)")

	// Epoch 2: the card issues a fresh epoch key; old compromises do not
	// accumulate.
	upd1 := scheme.IssueUpdate(server, epochs[1])
	epochKey2 := scheme.DeriveEpochKey(safeCard, upd1)
	plain2, err := scheme.DecryptWithEpochKey(epochKey2, cts[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("next epoch, fresh key: %q\n", plain2)
}

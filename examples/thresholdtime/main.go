// Threshold time servers: 3-of-5 availability for timed release.
//
// The paper's §5.3.5 multi-server mode needs EVERY chosen server alive
// at the release instant. This example shows the availability-oriented
// dual shipped as an extension: the time authority is five servers
// holding Shamir shares of one key; any THREE of them publishing their
// partial updates reconstruct the ordinary update s·H1(T). Two servers
// are down at release time — the message opens anyway — while two
// colluding servers can release nothing early.
package main

import (
	"fmt"
	"log"

	"timedrelease/tre"
)

func main() {
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)

	// One-time dealing ceremony: 3-of-5.
	setup, err := tre.ThresholdDeal(set, nil, 3, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dealt %d shares, threshold %d; group key published\n", setup.N, setup.K)

	// A receiver and a sealed message — completely ordinary TRE against
	// the GROUP public key: the receiver cannot even tell the time
	// authority is distributed.
	receiver, err := scheme.UserKeyGen(setup.GroupPub, nil)
	if err != nil {
		log.Fatal(err)
	}
	const release = "2027-01-01T00:00:00Z"
	msg := []byte("survives two crashed time servers")
	ct, err := scheme.EncryptCCA(nil, setup.GroupPub, receiver.Pub, release, msg)
	if err != nil {
		log.Fatal(err)
	}

	// Two colluding servers try to release early: their partials do not
	// verify as (or combine into) the group update.
	early := []tre.PartialUpdate{
		tre.IssuePartialUpdate(set, setup.Shares[0], release),
		tre.IssuePartialUpdate(set, setup.Shares[1], release),
	}
	if _, err := tre.CombinePartialUpdates(set, setup.GroupPub, early, setup.K); err != nil {
		fmt.Println("2 colluders cannot reconstruct the update:", err)
	}

	// Release time: servers 1 and 4 are DOWN. Servers 0, 2, 3 publish.
	alive := []int{0, 2, 3}
	var partials []tre.PartialUpdate
	for _, i := range alive {
		pu := tre.IssuePartialUpdate(set, setup.Shares[i], release)
		if !tre.VerifyPartialUpdate(set, setup.Shares[i].Pub, pu) {
			log.Fatalf("server %d's partial failed verification", i+1)
		}
		partials = append(partials, pu)
		fmt.Printf("  server %d published its verified partial update\n", i+1)
	}
	upd, err := tre.CombinePartialUpdates(set, setup.GroupPub, partials, setup.K)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("combined update verifies as the ordinary s·H1(T)")

	got, err := scheme.DecryptCCA(setup.GroupPub, receiver, upd, ct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened despite two dead servers: %q\n", got)
}

// Multiple time servers (paper §5.3.5): the sender distrusts any single
// time authority, so she locks her message under THREE independent
// servers — say NIST, PTB and NICT. The receiver needs his private key
// plus all three epoch updates; early release now requires colluding
// with every one of them.
package main

import (
	"fmt"
	"log"

	"timedrelease/tre"
)

func main() {
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)
	multi := tre.NewMultiScheme(set)

	// Three independent time servers, each with its own generator and
	// key — they need not know of each other's existence.
	names := []string{"NIST", "PTB", "NICT"}
	var (
		servers []*tre.ServerKeyPair
		group   tre.ServerGroup
	)
	for range names {
		g, err := set.Curve.RandomSubgroupPoint(nil)
		if err != nil {
			log.Fatal(err)
		}
		s, err := set.Curve.RandScalar(nil)
		if err != nil {
			log.Fatal(err)
		}
		kp := &tre.ServerKeyPair{S: s, Pub: tre.ServerPublicKey{G: g, SG: set.Curve.ScalarMult(s, g)}}
		servers = append(servers, kp)
		group = append(group, kp.Pub)
	}
	fmt.Printf("sender chose %d independent time servers\n", len(group))

	// The receiver derives a combined key a·Σ sᵢGᵢ for exactly this
	// group — same private scalar, no re-certification (the sender
	// verifies it against the certified aG inside Encrypt).
	receiver, err := multi.UserKeyGen(group, nil)
	if err != nil {
		log.Fatal(err)
	}

	const release = "2027-01-01T00:00:00Z"
	msg := []byte("released only when NIST, PTB and NICT all agree it is 2027")
	ct, err := multi.Encrypt(nil, group, receiver.Pub, release, msg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sealed with %d ciphertext headers, one per server\n", len(ct.Us))

	// Two of three updates are not enough: substitute one genuine update
	// with one for a different instant (as if that server refused).
	partial := make([]tre.KeyUpdate, len(servers))
	for i, s := range servers {
		partial[i] = scheme.IssueUpdate(s, release)
	}
	holdout := scheme.IssueUpdate(servers[2], "2026-12-31T23:00:00Z")
	holdout.Label = release // even relabelling the wrong update doesn't help
	partial[2] = holdout
	if got, err := multi.Decrypt(receiver, partial, ct); err != nil {
		fmt.Println("with 2/3 genuine updates: decryption error:", err)
	} else if string(got) != string(msg) {
		fmt.Println("with 2/3 genuine updates: output is garbage — message stays sealed")
	}

	// All three servers publish; the receiver combines them. The
	// implementation multiplies the three pairings under a single final
	// exponentiation.
	updates := make([]tre.KeyUpdate, len(servers))
	for i, s := range servers {
		updates[i] = scheme.IssueUpdate(s, release)
		fmt.Printf("  %s published its update for %s\n", names[i], release)
	}
	got, err := multi.Decrypt(receiver, updates, ct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened: %q\n", got)
}

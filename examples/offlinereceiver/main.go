// Missing-update resilience (paper §6, future work): a receiver comes
// back from three weeks offline.
//
// Two recovery paths are shown side by side:
//
//  1. the paper's own answer — the flat archive: download one update per
//     missed epoch (here via the batched catch-up verifier, one pairing
//     equation for the whole backlog);
//  2. the future-work construction built in this repository — the HIBE
//     time tree: download a single O(log N) cover of the past and derive
//     any missed epoch's key locally.
package main

import (
	"fmt"
	"log"

	"timedrelease/tre"
)

func main() {
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)

	// --- Path 1: flat updates + archive -------------------------------
	server, err := scheme.ServerKeyGen(nil)
	if err != nil {
		log.Fatal(err)
	}
	alice, err := scheme.UserKeyGen(server.Pub, nil)
	if err != nil {
		log.Fatal(err)
	}

	// While Alice was offline, messages were released at many epochs.
	const missed = 24
	labels := make([]string, missed)
	cts := make([]*tre.Ciphertext, missed)
	for i := range labels {
		labels[i] = fmt.Sprintf("2026-06-%02dT12:00:00Z", i+1)
		ct, err := scheme.Encrypt(nil, server.Pub, alice.Pub, labels[i],
			[]byte(fmt.Sprintf("daily briefing #%d", i+1)))
		if err != nil {
			log.Fatal(err)
		}
		cts[i] = ct
	}

	// Alice returns and pulls the backlog from the archive. (In the live
	// system this is client.CatchUp, which batch-verifies the lot with
	// one pairing equation; here we use the library directly.)
	updates := make([]tre.KeyUpdate, missed)
	for i, l := range labels {
		updates[i] = scheme.IssueUpdate(server, l)
	}
	opened := 0
	for i := range cts {
		if _, err := scheme.Decrypt(alice, updates[i], cts[i]); err == nil {
			opened++
		}
	}
	fmt.Printf("flat archive: downloaded %d updates (%d bytes) to open %d briefings\n",
		missed, missed*set.Curve.MarshalSize(), opened)

	// --- Path 2: HIBE time tree ----------------------------------------
	rs, err := tre.NewResilientScheme(set, 12) // 4096 epochs
	if err != nil {
		log.Fatal(err)
	}
	root, err := rs.H.RootKeyGen(nil)
	if err != nil {
		log.Fatal(err)
	}

	// A message released at epoch 1000; Alice reconnects at epoch 1021.
	sealed, err := rs.Encrypt(nil, root.Pub, 1000, []byte("tree-locked briefing"))
	if err != nil {
		log.Fatal(err)
	}
	cover, err := rs.PublishCover(root, 1021)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("time tree: the server's entire publication at epoch 1021 is %d key bundles (covers ALL %d past epochs)\n",
		len(cover), 1022)

	plain, err := rs.Decrypt(cover, 1000, sealed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived epoch-1000 key from the cover and opened: %q\n", plain)

	// Epoch 1030 is still the future — the cover cannot reach it.
	future, err := rs.Encrypt(nil, root.Pub, 1030, []byte("tomorrow's briefing"))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rs.Decrypt(cover, 1030, future); err != nil {
		fmt.Println("epoch 1030 stays locked:", err)
	}
}

// Quickstart: the complete TRE flow in one process — server key
// generation, user key generation, encrypting a message "into the
// future", the single broadcast key update, and decryption.
package main

import (
	"fmt"
	"log"

	"timedrelease/tre"
)

func main() {
	// The paper-era parameter size (512-bit field, 160-bit group).
	set := tre.MustPreset("SS512")
	scheme := tre.NewScheme(set)

	// 1. The time server generates its key pair once and publishes
	//    (G, sG). It will never talk to any user.
	server, err := scheme.ServerKeyGen(nil)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Alice generates her key pair bound to the server: (aG, a·sG).
	//    The aG half is what a CA would certify.
	alice, err := scheme.UserKeyGen(server.Pub, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Bob encrypts to Alice with a release label. He talks to NOBODY:
	//    the server's public key and Alice's public key are all he needs,
	//    and the well-formedness check ê(aG,sG)=ê(G,asG) runs inside
	//    Encrypt.
	const releaseAt = "2027-01-01T00:00:00Z"
	msg := []byte("happy new year, alice!")
	ct, err := scheme.EncryptCCA(nil, server.Pub, alice.Pub, releaseAt, msg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sealed %q until %s\n", msg, releaseAt)

	// 4. Before the release, Alice's private key alone is useless: the
	//    pairing value requires the update s·H1(T), which does not exist
	//    yet anywhere outside the server's head.
	wrongUpd := scheme.IssueUpdate(server, "2026-12-31T23:59:00Z")
	if _, err := scheme.DecryptCCA(server.Pub, alice, wrongUpd, ct); err != nil {
		fmt.Println("before release: decryption correctly fails:", err)
	}

	// 5. New Year arrives. The server broadcasts ONE update for all users
	//    — a BLS signature on the label, self-authenticating:
	upd := scheme.IssueUpdate(server, releaseAt)
	if !scheme.VerifyUpdate(server.Pub, upd) {
		log.Fatal("update failed verification")
	}
	fmt.Println("update published and verified: ê(G, I_T) = ê(sG, H1(T))")

	// 6. Alice decrypts with her private key + the public update.
	opened, err := scheme.DecryptCCA(server.Pub, alice, upd, ct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened: %q\n", opened)
}

// Internet programming contest — the paper's second §1 example.
//
// The organiser distributes the (large) problem set to every team well
// before the start so slow links cannot cause unfairness, encrypted with
// the hybrid AES-CTR+HMAC mode to the contest-start epoch. Teams all
// over the world hold the ciphertext but cannot open it; when the epoch
// arrives, the ONE broadcast update unlocks it for everyone
// simultaneously. Nobody registered anywhere: the time server does not
// know the contest, the organiser, or any team exists.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"
	"time"

	"timedrelease/tre"
)

func main() {
	set := tre.MustPreset("Test160")
	scheme := tre.NewScheme(set)
	sched := tre.MustSchedule(time.Second)

	timeServer, err := scheme.ServerKeyGen(nil)
	if err != nil {
		log.Fatal(err)
	}

	// Teams generate keys independently; the organiser collects their
	// public keys (certified by any CA — the time server is not involved).
	teamNames := []string{"Tokyo", "São Paulo", "Warsaw", "Nairobi", "Toronto"}
	teams := make(map[string]*tre.UserKeyPair, len(teamNames))
	for _, name := range teamNames {
		kp, err := scheme.UserKeyGen(timeServer.Pub, nil)
		if err != nil {
			log.Fatal(err)
		}
		teams[name] = kp
	}

	// A deliberately bulky problem set: the hybrid DEM handles it with
	// AES-CTR + HMAC instead of hashing the whole length.
	problemSet := []byte(strings.Repeat("Problem A: prove P != NP in O(1).\n", 4000))
	startLabel := sched.LabelAt(sched.Index(time.Now()) + 2)
	fmt.Printf("contest starts at %s; distributing %d KiB to %d teams early\n",
		startLabel, len(problemSet)/1024, len(teams))

	distributed := map[string]*tre.HybridCiphertext{}
	for name, team := range teams {
		ct, err := scheme.EncryptHybrid(nil, timeServer.Pub, team.Pub, startLabel, problemSet)
		if err != nil {
			log.Fatal(err)
		}
		distributed[name] = ct
	}
	fmt.Println("all teams hold the problems but none can read them")

	// Early decryption attempt with a stale update fails authentication.
	stale := scheme.IssueUpdate(timeServer, sched.LabelAt(sched.Index(time.Now())-100))
	if _, err := scheme.DecryptHybrid(teams["Tokyo"], stale, distributed["Tokyo"]); err != nil {
		fmt.Println("Tokyo tried a stale update:", err)
	}

	// The contest-start epoch arrives: one update for the whole planet.
	waitUntil(sched, startLabel)
	upd := scheme.IssueUpdate(timeServer, startLabel)
	fmt.Printf("update for %s broadcast (%d bytes, identical for every team)\n",
		upd.Label, set.Curve.MarshalSize())

	for name, team := range teams {
		plain, err := scheme.DecryptHybrid(team, upd, distributed[name])
		if err != nil {
			log.Fatalf("%s failed to open the problems: %v", name, err)
		}
		if !bytes.Equal(plain, problemSet) {
			log.Fatalf("%s got a corrupted problem set", name)
		}
		fmt.Printf("  %-10s opened the problem set at the same instant\n", name)
	}
}

// waitUntil sleeps until the labelled epoch has begun.
func waitUntil(sched tre.Schedule, label string) {
	start, err := sched.ParseLabel(label)
	if err != nil {
		log.Fatal(err)
	}
	if d := time.Until(start); d > 0 {
		time.Sleep(d)
	}
}

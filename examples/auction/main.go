// Sealed-bid auction — the paper's §1 motivating example, run end-to-end
// over a real HTTP time server on localhost.
//
// Bidders seal their bids to the bid-opening epoch and submit the
// ciphertexts to the auctioneer IMMEDIATELY — so network delay cannot
// disadvantage anyone — but the auctioneer (who holds the decryption
// key) cannot open any bid until the time server, which knows nothing of
// the auction, publishes the epoch's key update. No government agent can
// leak a bid early, because before the update nobody on earth can read
// it.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"timedrelease/tre"
)

func main() {
	set := tre.MustPreset("Test160") // fast demo parameters
	scheme := tre.NewScheme(set)
	sched := tre.MustSchedule(time.Second)

	// --- The passive time server, oblivious to the auction -------------
	serverKey, err := scheme.ServerKeyGen(nil)
	if err != nil {
		log.Fatal(err)
	}
	ts := tre.NewTimeServer(set, serverKey, sched)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: ts.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		if err := ts.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			log.Println("time server:", err)
		}
	}()
	baseURL := "http://" + ln.Addr().String()
	fmt.Println("time server running at", baseURL, "— it will never learn an auction exists")

	// --- The auctioneer -------------------------------------------------
	auctioneer, err := scheme.UserKeyGen(serverKey.Pub, nil)
	if err != nil {
		log.Fatal(err)
	}
	// Bids open two epochs from now.
	bidOpening := sched.LabelAt(sched.Index(time.Now()) + 2)
	fmt.Println("bids will open at", bidOpening)

	// --- Bidders seal and submit immediately ----------------------------
	bids := map[string]int{"ACME Corp": 1_250_000, "Globex": 1_190_000, "Initech": 1_320_000}
	sealed := map[string]*tre.CCACiphertext{}
	for bidder, amount := range bids {
		// Each bidder verifies the auctioneer's key is honestly bound to
		// the time server (done inside EncryptCCA) and seals the bid.
		ct, err := scheme.EncryptCCA(nil, serverKey.Pub, auctioneer.Pub,
			bidOpening, []byte(fmt.Sprintf("%s bids $%d", bidder, amount)))
		if err != nil {
			log.Fatal(err)
		}
		sealed[bidder] = ct
		fmt.Printf("  %s submitted a sealed bid (%d bytes, opens %s)\n", bidder, len(ct.V)+len(ct.W), bidOpening)
	}

	// --- The auctioneer tries to peek early ------------------------------
	client := tre.NewTimeClient(baseURL, set, serverKey.Pub)
	if _, err := client.Update(ctx, bidOpening); errors.Is(err, tre.ErrNotYetPublished) {
		fmt.Println("auctioneer tried to peek: update not published — bids stay sealed")
	}

	// --- Bid opening ------------------------------------------------------
	fmt.Println("waiting for the bid-opening epoch ...")
	upd, err := client.WaitForRelease(ctx, bidOpening, 100*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("update", upd.Label, "released; opening bids:")
	for bidder, ct := range sealed {
		plain, err := scheme.DecryptCCA(serverKey.Pub, auctioneer, upd, ct)
		if err != nil {
			log.Fatalf("opening %s's bid: %v", bidder, err)
		}
		fmt.Printf("  %s\n", plain)
	}
	fmt.Println("server served", ts.Served(), "requests and published", ts.Published(), "updates — independent of the number of bidders")
}
